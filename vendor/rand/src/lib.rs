//! Minimal vendored stand-in for `rand` 0.8, written for offline builds.
//!
//! Implements the slice of the rand 0.8 API this workspace uses:
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), [`SeedableRng`]
//! with `seed_from_u64`, [`Rng`] with `gen`, `gen_range`, `gen_bool` and
//! `sample`, and [`distributions`] with [`Distribution`](distributions::Distribution),
//! `Standard` and [`WeightedIndex`](distributions::WeightedIndex).
//!
//! The generator is *not* stream-compatible with the real `StdRng` (which is
//! ChaCha12); everything in this workspace only relies on determinism per
//! seed and reasonable statistical quality, both of which xoshiro256++
//! provides.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value API, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A random value of `T` from the `Standard` distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// A random value uniform over `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }

    /// A random value drawn from `distr`.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Marker for types with a uniform-range sampler. Mirrors the real crate's
/// `SampleUniform`: the bound on `gen_range`'s return type is what lets
/// inference pick `f64` in expressions like `x * rng.gen_range(0.75..1.25)`
/// (it rules out the `&f64` candidates `Mul` would otherwise admit).
pub trait SampleUniform {}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draw one uniform value from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64 per
                // draw, far below anything these workloads can observe.
                let x = rng.next_u64() as u128;
                self.start.wrapping_add(((x * span) >> 64) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as u128).wrapping_sub(start as u128) + 1;
                let x = rng.next_u64() as u128;
                start.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {}

        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let f: f64 = rng.gen();
                self.start + (f as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman/Vigna),
    /// seeded through SplitMix64 exactly as its authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions over values.
pub mod distributions {
    use super::Rng;
    use std::borrow::Borrow;
    use std::marker::PhantomData;

    /// A source of random values of `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            (**self).sample(rng)
        }
    }

    /// The "natural" distribution per type: uniform over the value space for
    /// integers and `bool`, uniform in `[0, 1)` for floats.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Weights accepted by [`WeightedIndex`].
    pub trait Weight: Copy {
        /// The weight as an `f64`.
        fn to_f64(self) -> f64;
    }

    macro_rules! impl_weight {
        ($($t:ty),*) => {$(
            impl Weight for $t {
                fn to_f64(self) -> f64 {
                    self as f64
                }
            }
        )*};
    }
    impl_weight!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Error from invalid weights.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were supplied.
        NoItem,
        /// A weight was negative or non-finite.
        InvalidWeight,
        /// Every weight was zero.
        AllWeightsZero,
    }

    /// Sampling of indices `0..n` proportional to a weight per index.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex<X> {
        cumulative: Vec<f64>,
        total: f64,
        _weights: PhantomData<X>,
    }

    impl<X: Weight> WeightedIndex<X> {
        /// Build from an iterator of weights.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: Borrow<X>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = w.borrow().to_f64();
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(WeightedIndex {
                cumulative,
                total,
                _weights: PhantomData,
            })
        }
    }

    impl<X> Distribution<usize> for WeightedIndex<X> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
            let x: f64 = rng.gen::<f64>() * self.total;
            // First cumulative weight strictly greater than x; zero-weight
            // items are never selected.
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&x).expect("finite"))
            {
                Ok(i) => (i + 1).min(self.cumulative.len() - 1),
                Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u16 = rng.gen_range(3..9);
            assert!((3..9).contains(&x));
            let y = rng.gen_range(0..=4usize);
            assert!(y <= 4);
            let f = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_floats_are_uniform_ish() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_respects_p() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn weighted_index_proportions() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = WeightedIndex::new([1.0f64, 0.0, 3.0]).unwrap();
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[w.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight never drawn");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        use super::distributions::WeightedError;
        assert_eq!(
            WeightedIndex::<f64>::new(std::iter::empty::<f64>()).unwrap_err(),
            WeightedError::NoItem
        );
        assert_eq!(
            WeightedIndex::new([1.0, -2.0]).unwrap_err(),
            WeightedError::InvalidWeight
        );
        assert_eq!(
            WeightedIndex::new([0.0, 0.0]).unwrap_err(),
            WeightedError::AllWeightsZero
        );
    }
}
