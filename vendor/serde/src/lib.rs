//! Minimal vendored stand-in for `serde`, written for offline builds.
//!
//! The real crates.io `serde` is unavailable in this environment, so this
//! crate provides the small slice the workspace actually uses: a
//! [`Serialize`]/[`Deserialize`] trait pair over a JSON-like [`Value`] tree,
//! plus `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//! stub. The derive understands named structs, tuple structs, enums with
//! unit/tuple/struct variants, and `#[serde(skip)]` fields (restored with
//! `Default::default()` on deserialization), which covers every type the
//! workspace derives.

use std::fmt;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the intermediate representation between typed
/// data and any concrete format (see the vendored `serde_json`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, as an ordered key → value list.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError(format!("{x} out of range for {}", stringify!($t)))),
                    _ => Err(DeError(format!("expected unsigned integer, got {v:?}"))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x < 0 { Value::I64(x) } else { Value::U64(x as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i64 = match v {
                    Value::I64(x) => *x,
                    Value::U64(x) => i64::try_from(*x)
                        .map_err(|_| DeError(format!("{x} out of range for i64")))?,
                    _ => return Err(DeError(format!("expected integer, got {v:?}"))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(x) => Ok(*x as $t),
                    Value::I64(x) => Ok(*x as $t),
                    _ => Err(DeError(format!("expected number, got {v:?}"))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError(format!("expected string, got {v:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(Deserialize::from_value).collect(),
            _ => Err(DeError(format!("expected sequence, got {v:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Box<[T]> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(Vec::into_boxed_slice)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(DeError(format!("expected 2-tuple, got {v:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u16::from_value(&42u16.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        assert_eq!(
            Option::<u64>::from_value(&None::<u64>.to_value()).unwrap(),
            None
        );
        assert_eq!(
            Option::<u64>::from_value(&Some(9u64).to_value()).unwrap(),
            Some(9)
        );
    }
}
