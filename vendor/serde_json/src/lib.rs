//! Minimal vendored stand-in for `serde_json`, written for offline builds.
//!
//! Serializes the vendored `serde` stub's [`serde::Value`] tree to JSON text
//! and parses it back. Covers `to_string`, `to_string_pretty`, and
//! `from_str` — the only entry points this workspace uses.

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize `value` to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0)?;
    Ok(out)
}

/// Serialize `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parse JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(
    v: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite float {x} is not valid JSON")));
            }
            // Rust's Debug for f64 is the shortest roundtrip form and is
            // always JSON-legal for finite values.
            out.push_str(&format!("{x:?}"));
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    entries.push((key, self.parse_value()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error("unterminated string".into()));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    let esc = rest
                        .get(1)
                        .copied()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 2;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                let hex2 = self
                                    .bytes
                                    .get(self.pos + 2..self.pos + 6)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| Error("bad \\u escape".into()))?;
                                let low = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| Error("bad \\u escape".into()))?;
                                self.pos += 6;
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error("bad surrogate pair".into()))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?
                            };
                            s.push(c);
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let text =
                        std::str::from_utf8(rest).map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = text.chars().next().expect("nonempty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("1e-7").unwrap(), 1e-7);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn roundtrip_collections() {
        let v: Vec<u32> = vec![1, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
        let none: Option<u64> = None;
        assert_eq!(to_string(&none).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_is_parseable() {
        let v: Vec<Vec<u32>> = vec![vec![1], vec![2, 3]];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
        let s = "控\u{1}".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }
}
