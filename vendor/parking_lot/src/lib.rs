//! Minimal vendored stand-in for `parking_lot`, written for offline builds.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (`read()` / `write()` / `lock()` return guards directly). Poisoned locks
//! are recovered transparently — parking_lot has no poisoning, so neither
//! does this shim.

use std::fmt;
use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with parking_lot's panic-free guard API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// Mutex with parking_lot's panic-free guard API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }

    #[test]
    fn shared_across_threads() {
        let l = std::sync::Arc::new(RwLock::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = std::sync::Arc::clone(&l);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *l.write() += 1;
                    }
                });
            }
        });
        assert_eq!(*l.read(), 4000);
    }
}
