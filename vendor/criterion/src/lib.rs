//! Minimal vendored stand-in for `criterion`, written for offline builds.
//!
//! Implements the API surface this workspace's benches use: `Criterion`
//! with `sample_size` / `measurement_time` / `warm_up_time`,
//! `bench_function`, `benchmark_group`, `Bencher::iter` /
//! `Bencher::iter_batched`, `BatchSize`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros (both plain and
//! `name = ...; config = ...; targets = ...` forms).
//!
//! Timing model: per sample, the routine runs in a batch sized so one batch
//! takes roughly `measurement_time / sample_size`; the reported estimate is
//! the median of per-iteration batch means, printed in a criterion-like
//! `time: [low mid high]` line.

use std::time::{Duration, Instant};

/// Re-exported opaque-value helper.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stub sizes batches itself;
/// the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs (batched aggressively).
    SmallInput,
    /// Large per-iteration inputs (small batches).
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Per-function measurement driver.
pub struct Bencher {
    samples: usize,
    target_sample_time: Duration,
    warm_up_time: Duration,
    /// Collected per-iteration nanosecond estimates (one per sample).
    results: Vec<f64>,
}

impl Bencher {
    fn new(samples: usize, measurement_time: Duration, warm_up_time: Duration) -> Self {
        Bencher {
            samples,
            target_sample_time: measurement_time / samples.max(1) as u32,
            warm_up_time,
            results: Vec::new(),
        }
    }

    /// Measure `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget elapses, measuring a rough
        // per-iteration cost to size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let batch = ((self.target_sample_time.as_nanos() as f64 / per_iter.max(1.0)).ceil() as u64)
            .clamp(1, 10_000_000);

        self.results.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t0.elapsed().as_nanos() as f64;
            self.results.push(elapsed / batch as f64);
        }
    }

    /// Measure `routine` over fresh inputs from `setup`, excluding setup
    /// cost per batch (the stub runs one setup per measured iteration).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warm-up.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            let input = setup();
            black_box(routine(input));
            warm_iters += 1;
            if warm_iters >= 100_000 {
                break;
            }
        }

        self.results.clear();
        let per_sample = ((self.target_sample_time.as_nanos() as f64
            / (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0))
        .ceil() as u64)
            .clamp(1, 100_000);
        for _ in 0..self.samples {
            let inputs: Vec<I> = (0..per_sample).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = t0.elapsed().as_nanos() as f64;
            self.results.push(elapsed / per_sample as f64);
        }
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, results: &mut [f64]) {
    if results.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    results.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let lo = results[results.len() / 10];
    let mid = results[results.len() / 2];
    let hi = results[results.len() - 1 - results.len() / 10];
    println!(
        "{name:<40} time: [{} {} {}]",
        format_time(lo),
        format_time(mid),
        format_time(hi)
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size, self.measurement_time, self.warm_up_time);
        f(&mut b);
        report(name, &mut b.results);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl<'c> BenchmarkGroup<'c> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Override the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Override the group's measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Declare a benchmark group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(5));
        // Should not panic and should print a report line.
        c.bench_function("smoke/add", |b| b.iter(|| black_box(2u64) + 2));
        let mut g = c.benchmark_group("group");
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 16],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(12.3456), "12.35 ns");
        assert_eq!(format_time(1_234.0), "1.23 µs");
        assert_eq!(format_time(12_345_678.0), "12.35 ms");
    }
}
