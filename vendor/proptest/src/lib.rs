//! Minimal vendored stand-in for `proptest`, written for offline builds.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`), range and
//! tuple strategies, `prop::collection::vec`, `prop::option::of`,
//! `any::<T>()`, string strategies (any printable string, regardless of the
//! regex supplied), and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate: cases are generated from a fixed
//! per-test seed (deterministic across runs), failures panic immediately
//! like plain `assert!`, and there is **no shrinking** — a failing case
//! prints its inputs via the panic message's `Debug` formatting of
//! assertion operands instead.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let x = rng.next_u64() as u128;
                    self.start.wrapping_add(((x * span) >> 64) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u128).wrapping_sub(start as u128) + 1;
                    let x = rng.next_u64() as u128;
                    start.wrapping_add(((x * span) >> 64) as $t)
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    /// String strategies: the real crate interprets these as regexes; the
    /// stub generates arbitrary printable strings, which is what every
    /// `"\\PC*"`-style use in this workspace wants. The character pool
    /// over-weights URL/HTML metacharacters (`&`, `=`, `%`, `<`, `"`) and
    /// multi-byte UTF-8 (2-, 3- and 4-byte sequences) because this
    /// workspace's round-trip properties live or die on exactly those.
    impl Strategy for str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let len = (rng.next_u64() % 12) as usize;
            (0..len)
                .map(|_| match rng.next_u64() % 16 {
                    0 => '&',
                    1 => '=',
                    2 => '%',
                    3 => '<',
                    4 => '"',
                    5 => 'é',         // 2-byte UTF-8
                    6 => 'λ',         // 2-byte UTF-8
                    7 => '–',         // 3-byte UTF-8 (en dash, "$5k–$10k")
                    8 => '日',        // 3-byte UTF-8
                    9 => '\u{1F697}', // 4-byte UTF-8 (🚗)
                    _ => (0x20 + (rng.next_u64() % 0x5f) as u8) as char,
                })
                .collect()
        }
    }

    macro_rules! impl_tuple {
        ($($name:ident : $ix:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$ix.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple!(A: 0);
    impl_tuple!(A: 0, B: 1);
    impl_tuple!(A: 0, B: 1, C: 2);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Mix small values (edge-heavy) with full-width ones.
                    match rng.next_u64() % 4 {
                        0 => (rng.next_u64() % 16) as $t,
                        1 => <$t>::MAX - (rng.next_u64() % 16) as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    /// Strategy for `any::<T>()`.
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec`]: an exact count or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    (rng.next_u64() % span) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, size)`: a vector of `size` elements drawn from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option`s of an inner strategy's values.
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `of(element)`: `None` a quarter of the time, otherwise `Some`.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

pub mod test_runner {
    /// Per-test PRNG (SplitMix64): deterministic across runs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded constructor.
        pub fn seeded(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits.
        #[allow(clippy::should_implement_trait)]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Stable hash of a test name, used to give every test its own seed.
    pub fn seed_of(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        h
    }

    /// Result of running one generated case's body.
    pub enum CaseOutcome {
        /// The body ran to completion (assertions passed).
        Pass,
        /// A `prop_assume!` rejected the inputs; the case is not counted.
        Reject,
    }

    /// Runner configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 48 }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Define property tests. Supports the common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(40))]
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(0u16..4, 0..30)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::seeded(
                $crate::test_runner::seed_of(stringify!($name)),
            );
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(20).max(100);
            while __accepted < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __max_attempts,
                    "prop_assume! rejected too many cases in {}",
                    stringify!($name),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                #[allow(clippy::redundant_closure_call)]
                let __outcome = (|| -> $crate::test_runner::CaseOutcome {
                    $body
                    $crate::test_runner::CaseOutcome::Pass
                })();
                if let $crate::test_runner::CaseOutcome::Pass = __outcome {
                    __accepted += 1;
                }
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
}

/// Assert inside a property test (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Reject the current generated case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::test_runner::CaseOutcome::Reject;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return $crate::test_runner::CaseOutcome::Reject;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u16..9, y in -5i32..5, f in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u16..4, 2..6), exact in prop::collection::vec(any::<bool>(), 3)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(exact.len(), 3);
            prop_assert!(v.iter().all(|&x| x < 4));
        }

        #[test]
        fn assume_filters(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn tuples_and_options(pair in (0u16..6, 0u16..4), opt in prop::option::of(0u64..10)) {
            prop_assert!(pair.0 < 6 && pair.1 < 4);
            if let Some(x) = opt {
                prop_assert!(x < 10);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::seeded(1);
        let mut b = crate::test_runner::TestRng::seeded(1);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
