//! `#[derive(Serialize, Deserialize)]` for the vendored `serde` stub.
//!
//! Parses the item's token stream by hand (no `syn`/`quote` available
//! offline) and emits `to_value`/`from_value` impls over `serde::Value`.
//! Supported shapes — the ones this workspace uses:
//!
//! * named structs (with `#[serde(skip)]` fields → `Default::default()`);
//! * tuple structs (newtypes serialize as their inner value);
//! * enums with unit / tuple / struct variants, externally tagged like
//!   real serde: `"Variant"`, `{"Variant": value}`, `{"Variant": {…}}`.
//!
//! Generic items are intentionally unsupported and panic with a clear
//! message at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Does an attribute group (the `[...]` after `#`) spell `serde(skip)`?
fn attr_is_serde_skip(g: &proc_macro::Group) -> bool {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Skip leading attributes at `i`, reporting whether any was `serde(skip)`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while let Some(TokenTree::Punct(p)) = toks.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
            if attr_is_serde_skip(g) {
                skip = true;
            }
            *i += 2;
        } else {
            break;
        }
    }
    skip
}

/// Skip a `pub` / `pub(...)` visibility marker at `i`.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Advance past a type expression, stopping at a top-level `,`.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => break,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Parse `{ field: Ty, ... }` contents into fields.
fn parse_named_fields(g: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let skip = skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let Some(name) = toks.get(i).and_then(ident_of) else {
            break;
        };
        i += 1;
        // ':'
        i += 1;
        skip_type(&toks, &mut i);
        // ','
        i += 1;
        fields.push(Field { name, skip });
    }
    fields
}

/// Count fields of a tuple payload `( Ty, Ty, ... )`.
fn count_tuple_fields(g: &proc_macro::Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut n = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        skip_type(&toks, &mut i);
        i += 1; // ','
        n += 1;
    }
    n
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw = toks.get(i).and_then(ident_of).expect("struct/enum keyword");
    i += 1;
    let name = toks.get(i).and_then(ident_of).expect("item name");
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic types (item `{name}`)");
    }
    match kw.as_str() {
        "struct" => {
            let shape = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g))
                }
                _ => Shape::Unit,
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let Some(TokenTree::Group(body)) = toks.get(i) else {
                panic!("enum body")
            };
            let vt: Vec<TokenTree> = body.stream().into_iter().collect();
            let mut j = 0;
            let mut variants = Vec::new();
            while j < vt.len() {
                skip_attrs(&vt, &mut j);
                let Some(vname) = vt.get(j).and_then(ident_of) else {
                    break;
                };
                j += 1;
                let shape = match vt.get(j) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        j += 1;
                        Shape::Tuple(count_tuple_fields(g))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        j += 1;
                        Shape::Named(parse_named_fields(g))
                    }
                    _ => Shape::Unit,
                };
                // ','
                j += 1;
                variants.push(Variant { name: vname, shape });
            }
            Item::Enum { name, variants }
        }
        other => panic!("cannot derive serde impls for `{other}` items"),
    }
}

fn map_push(out: &mut String, key: &str, value_expr: &str) {
    out.push_str(&format!("__m.push(({key:?}.to_string(), {value_expr}));\n"));
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => {
                    let mut b =
                        String::from("let mut __m: Vec<(String, serde::Value)> = Vec::new();\n");
                    for f in fields.iter().filter(|f| !f.skip) {
                        map_push(
                            &mut b,
                            &f.name,
                            &format!("serde::Serialize::to_value(&self.{})", f.name),
                        );
                    }
                    b.push_str("serde::Value::Map(__m)");
                    b
                }
                Shape::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Shape::Unit => "serde::Value::Null".to_string(),
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> serde::Value {{\n{body}\n}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::Str({vn:?}.to_string()),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let inner = if *n == 1 {
                            "serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => serde::Value::Map(vec![({vn:?}.to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<&str> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| f.name.as_str())
                            .collect();
                        let mut inner = String::from(
                            "{ let mut __m: Vec<(String, serde::Value)> = Vec::new();\n",
                        );
                        for f in fields.iter().filter(|f| !f.skip) {
                            map_push(
                                &mut inner,
                                &f.name,
                                &format!("serde::Serialize::to_value({})", f.name),
                            );
                        }
                        inner.push_str("serde::Value::Map(__m) }");
                        let pat = if binds.is_empty() {
                            "..".to_string()
                        } else {
                            format!("{}, ..", binds.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {pat} }} => serde::Value::Map(vec![({vn:?}.to_string(), {inner})]),\n"
                        ));
                    }
                }
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                   fn to_value(&self) -> serde::Value {{\n\
                     match self {{\n{arms}}}\n}}\n\
                 }}"
            )
        }
    }
}

/// Expression rebuilding one named-field set from a map value `__v`.
fn named_fields_ctor(fields: &[Field]) -> String {
    let mut parts = Vec::new();
    for f in fields {
        if f.skip {
            parts.push(format!("{}: Default::default()", f.name));
        } else {
            parts.push(format!(
                "{0}: serde::Deserialize::from_value(__v.get({0:?}).ok_or_else(|| serde::DeError(format!(\"missing field `{0}`\")))?)?",
                f.name
            ));
        }
    }
    parts.join(",\n")
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => {
                    format!("Ok({name} {{\n{}\n}})", named_fields_ctor(fields))
                }
                Shape::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(__v)?))")
                }
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Deserialize::from_value(&__items[{k}])?"))
                        .collect();
                    format!(
                        "match __v {{\n\
                           serde::Value::Seq(__items) if __items.len() == {n} => Ok({name}({})),\n\
                           _ => Err(serde::DeError(format!(\"expected {n}-element sequence for {name}\"))),\n\
                         }}",
                        items.join(", ")
                    )
                }
                Shape::Unit => format!("Ok({name})"),
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                   fn from_value(__v: &serde::Value) -> Result<Self, serde::DeError> {{\n{body}\n}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "{vn:?} => return Ok({name}::{vn}),\n"
                    )),
                    Shape::Tuple(1) => tagged_arms.push_str(&format!(
                        "{vn:?} => return Ok({name}::{vn}(serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| {
                                format!("serde::Deserialize::from_value(&__items[{k}])?")
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                               let serde::Value::Seq(__items) = __inner else {{\n\
                                 return Err(serde::DeError(format!(\"expected sequence payload for {name}::{vn}\")));\n\
                               }};\n\
                               if __items.len() != {n} {{\n\
                                 return Err(serde::DeError(format!(\"wrong payload arity for {name}::{vn}\")));\n\
                               }}\n\
                               return Ok({name}::{vn}({}));\n\
                             }}\n",
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let ctor = {
                            let mut parts = Vec::new();
                            for f in fields {
                                if f.skip {
                                    parts.push(format!("{}: Default::default()", f.name));
                                } else {
                                    parts.push(format!(
                                        "{0}: serde::Deserialize::from_value(__inner.get({0:?}).ok_or_else(|| serde::DeError(format!(\"missing field `{0}`\")))?)?",
                                        f.name
                                    ));
                                }
                            }
                            parts.join(",\n")
                        };
                        tagged_arms.push_str(&format!(
                            "{vn:?} => return Ok({name}::{vn} {{\n{ctor}\n}}),\n"
                        ));
                    }
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                   fn from_value(__v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                     if let serde::Value::Str(__tag) = __v {{\n\
                       match __tag.as_str() {{\n{unit_arms}_ => {{}}\n}}\n\
                     }}\n\
                     if let serde::Value::Map(__m) = __v {{\n\
                       if __m.len() == 1 {{\n\
                         let (__tag, __inner) = &__m[0];\n\
                         let _ = &__inner;\n\
                         match __tag.as_str() {{\n{tagged_arms}_ => {{}}\n}}\n\
                       }}\n\
                     }}\n\
                     Err(serde::DeError(format!(\"no variant of {name} matches {{:?}}\", __v)))\n\
                   }}\n\
                 }}"
            )
        }
    }
}
