//! Minimal vendored stand-in for `crossbeam`, written for offline builds.
//!
//! Provides the two pieces this workspace uses: `channel::unbounded` (backed
//! by `std::sync::mpsc`) and `thread::scope` (backed by `std::thread::scope`,
//! with crossbeam's closure-takes-scope calling convention and `Result`
//! return).

/// Multi-producer channels.
pub mod channel {
    use std::sync::mpsc;

    pub use mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a message; errors iff every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives; errors iff every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// The scope handle passed to [`scope`]'s closure and to every spawned
    /// thread's closure (crossbeam convention).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope, enabling
        /// nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before returning.
    ///
    /// Unlike crossbeam, a panicking child propagates through
    /// `std::thread::scope` and unwinds here rather than surfacing in the
    /// returned `Result` — callers that `.expect()` the result (the only
    /// pattern in this workspace) behave identically.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_fan_in() {
        let (tx, rx) = channel::unbounded::<u32>();
        thread::scope(|scope| {
            for i in 0..4u32 {
                let tx = tx.clone();
                scope.spawn(move |_| tx.send(i).unwrap());
            }
            drop(tx);
            let mut got: Vec<u32> = (0..4).map(|_| rx.recv().unwrap()).collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
            assert!(rx.recv().is_err(), "all senders dropped");
        })
        .unwrap();
    }

    #[test]
    fn scoped_threads_borrow() {
        let data = [1, 2, 3];
        let sum = thread::scope(|scope| {
            let h = scope.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }
}
