//! The literal example database of the paper's Figure 1.
//!
//! Four tuples over three Boolean attributes:
//!
//! ```text
//!      a1  a2  a3
//! t1    0   0   1
//! t2    0   1   0
//! t3    0   1   1
//! t4    1   1   0
//! ```
//!
//! With `k = 1`, the random drill-down of §2 reaches t4 at depth 1 (prob
//! 1/2), t1 at depth 2 (prob 1/4), and t2/t3 at depth 3 (prob 1/8 each) —
//! the exact numbers the Figure 1 experiment (`exp_fig1_query_tree`)
//! verifies analytically and empirically.

use std::sync::Arc;

use hdsampler_hidden_db::{HiddenDb, RankSpec};
use hdsampler_model::{Schema, Tuple};

use crate::boolean::boolean_schema;

/// The Figure 1 value matrix.
pub const FIGURE1_TUPLES: [[u16; 3]; 4] = [[0, 0, 1], [0, 1, 0], [0, 1, 1], [1, 1, 0]];

/// Analytic reach probabilities of the four tuples under the fixed-order
/// `a1, a2, a3` random walk with `k = 1` (paper §2 walk-through).
pub const FIGURE1_REACH_PROBS: [f64; 4] = [0.25, 0.125, 0.125, 0.5];

/// The Figure 1 schema (`a1`, `a2`, `a3`, all Boolean).
pub fn figure1_schema() -> Arc<Schema> {
    boolean_schema(3)
}

/// Build the Figure 1 database behind a top-`k` interface.
pub fn figure1_db(k: usize) -> HiddenDb {
    let schema = figure1_schema();
    let mut b = HiddenDb::builder(Arc::clone(&schema))
        .result_limit(k)
        .ranking(RankSpec::InsertionOrder);
    for vals in FIGURE1_TUPLES {
        b.push(&Tuple::new(&schema, vals.to_vec(), vec![]).unwrap())
            .unwrap();
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_model::{AttrId, ConjunctiveQuery, FormInterface};

    #[test]
    fn figure1_db_has_four_tuples() {
        let db = figure1_db(1);
        assert_eq!(db.n_tuples(), 4);
        assert_eq!(db.result_limit(), 1);
    }

    #[test]
    fn reach_probs_are_a_distribution_times_overall_success() {
        // The walk succeeds with probability 1 on this database (every
        // branch of a1 leads somewhere, but a1=1,a2=0 dead-ends);
        // probabilities sum to 1 because the dead end contributes 0 and
        // restarts are not counted here — the four listed probabilities are
        // per-walk reach probabilities and sum to 1 exactly because the only
        // dead end (a1=1 → a2=0) has probability 0 of *selection* but 1/4 of
        // occurrence. Their sum being 1 reflects that failures restart.
        let s: f64 = FIGURE1_REACH_PROBS.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn marginals_match_matrix() {
        let db = figure1_db(1);
        let o = db.oracle();
        assert_eq!(o.marginal(AttrId(0)), vec![0.75, 0.25]);
        assert_eq!(o.marginal(AttrId(1)), vec![0.25, 0.75]);
        assert_eq!(o.marginal(AttrId(2)), vec![0.5, 0.5]);
    }

    #[test]
    fn paper_walkthrough_query_classes() {
        let db = figure1_db(1);
        let o = db.oracle();
        // Paper §2: "SELECT * FROM D WHERE a1 = 0" overflows (3 tuples).
        let q = ConjunctiveQuery::from_pairs([(AttrId(0), 0)]).unwrap();
        assert_eq!(o.count(&q), 3);
        // a1=1 isolates t4.
        let q = ConjunctiveQuery::from_pairs([(AttrId(0), 1)]).unwrap();
        assert_eq!(o.count(&q), 1);
        // a1=1, a2=0 is the dead-end branch.
        let q = ConjunctiveQuery::from_pairs([(AttrId(0), 1), (AttrId(1), 0)]).unwrap();
        assert_eq!(o.count(&q), 0);
    }
}
