//! Serializable workload specifications.
//!
//! A [`WorkloadSpec`] fully determines a simulated hidden database — data
//! generator, interface parameters, ranking, count reporting, budget — from
//! a seed, so experiments are reproducible from a single JSON document.

use serde::{Deserialize, Serialize};

use hdsampler_hidden_db::{CountMode, HiddenDb, RankSpec};
use hdsampler_model::MeasureId;

use crate::vehicles::VehiclesSpec;

/// Data-generator choice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DataSpec {
    /// iid Boolean bits (see [`boolean_iid`](crate::boolean::boolean_iid)).
    BooleanIid {
        /// Attribute count.
        m: usize,
        /// Tuple count.
        n: usize,
        /// P(bit = 1).
        p: f64,
    },
    /// Cluster-correlated Boolean data
    /// (see [`boolean_correlated`](crate::boolean::boolean_correlated)).
    BooleanCorrelated {
        /// Attribute count.
        m: usize,
        /// Tuple count.
        n: usize,
        /// Number of cluster centres.
        clusters: usize,
        /// Per-bit flip probability.
        noise: f64,
    },
    /// Independent Zipfian categorical attributes
    /// (see [`zipf_categorical`](crate::categorical::zipf_categorical)).
    ZipfCategorical {
        /// Domain size per attribute.
        domain_sizes: Vec<usize>,
        /// Tuple count.
        n: usize,
        /// Zipf exponent.
        theta: f64,
    },
    /// The Google-Base-like vehicle inventory.
    Vehicles(VehiclesSpec),
}

/// Interface-side configuration of the simulated site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbConfig {
    /// Top-k display limit.
    pub k: usize,
    /// Ranking function.
    pub rank: RankSpec,
    /// Count-banner behaviour.
    pub count_mode: CountMode,
    /// Per-session query cap, if metered.
    pub budget: Option<u64>,
    /// Listing-key scramble seed.
    pub key_seed: u64,
}

impl Default for DbConfig {
    /// Google-Base-like defaults: `k = 1000`, freshness ranking is set by
    /// [`WorkloadSpec::build`] for vehicle data (hash order otherwise), a
    /// noisy count banner, no metering.
    fn default() -> Self {
        DbConfig {
            k: 1000,
            rank: RankSpec::HashOrder { seed: 0x5EED },
            count_mode: CountMode::Noisy {
                sigma: 0.15,
                seed: 0xBA5E,
            },
            budget: None,
            #[allow(clippy::unusual_byte_groupings)] // coffee pun, again
            key_seed: 0xC0FF_EE,
        }
    }
}

impl DbConfig {
    /// Same defaults but with an exact count banner.
    pub fn exact_counts() -> Self {
        DbConfig {
            count_mode: CountMode::Exact,
            ..Default::default()
        }
    }

    /// Same defaults but without any count banner.
    pub fn no_counts() -> Self {
        DbConfig {
            count_mode: CountMode::Absent,
            ..Default::default()
        }
    }

    /// Override the top-k limit.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Override the query budget.
    pub fn with_budget(mut self, limit: u64) -> Self {
        self.budget = Some(limit);
        self
    }
}

/// A complete simulated-site description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// What data the site holds.
    pub data: DataSpec,
    /// How the site serves it.
    pub db: DbConfig,
    /// Seed for data generation.
    pub seed: u64,
}

impl WorkloadSpec {
    /// Vehicles site with the given size and interface config.
    pub fn vehicles(spec: VehiclesSpec, db: DbConfig) -> Self {
        WorkloadSpec {
            seed: spec.seed,
            data: DataSpec::Vehicles(spec),
            db,
        }
    }

    /// Materialize the hidden database.
    pub fn build(&self) -> HiddenDb {
        let (schema, tuples) = match &self.data {
            DataSpec::BooleanIid { m, n, p } => crate::boolean::boolean_iid(*m, *n, *p, self.seed),
            DataSpec::BooleanCorrelated {
                m,
                n,
                clusters,
                noise,
            } => crate::boolean::boolean_correlated(*m, *n, *clusters, *noise, self.seed),
            DataSpec::ZipfCategorical {
                domain_sizes,
                n,
                theta,
            } => crate::categorical::zipf_categorical(domain_sizes, *n, *theta, self.seed),
            DataSpec::Vehicles(spec) => spec.generate(),
        };
        // Vehicle sites rank by freshness score unless the caller overrode
        // the ranking; data without measures cannot rank by measure.
        let rank = match (&self.data, &self.db.rank) {
            (DataSpec::Vehicles(_), RankSpec::HashOrder { seed: 0x5EED }) => {
                RankSpec::ByMeasureDesc(MeasureId(2))
            }
            (_, r) => r.clone(),
        };
        let mut b = HiddenDb::builder(schema)
            .result_limit(self.db.k)
            .ranking(rank)
            .count_mode(self.db.count_mode)
            .key_seed(self.db.key_seed)
            .reserve(tuples.len());
        if let Some(limit) = self.db.budget {
            b = b.query_budget(limit);
        }
        b.extend(tuples.iter())
            .expect("generated tuples are schema-valid");
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_model::{ConjunctiveQuery, FormInterface};

    #[test]
    fn boolean_spec_builds() {
        let spec = WorkloadSpec {
            data: DataSpec::BooleanIid {
                m: 6,
                n: 200,
                p: 0.5,
            },
            db: DbConfig::no_counts().with_k(10),
            seed: 5,
        };
        let db = spec.build();
        assert_eq!(db.n_tuples(), 200);
        assert_eq!(db.result_limit(), 10);
        assert!(!db.supports_count());
    }

    #[test]
    fn vehicles_spec_ranks_by_freshness() {
        let spec = WorkloadSpec::vehicles(VehiclesSpec::compact(500, 3), DbConfig::exact_counts());
        let db = spec.build();
        let resp = db.execute(&ConjunctiveQuery::empty()).unwrap();
        assert!(!resp.overflow, "500 < k = 1000");
        // First row must have the maximum score measure.
        let max_score = resp
            .rows
            .iter()
            .map(|r| r.measures[2])
            .fold(f64::MIN, f64::max);
        assert_eq!(resp.rows[0].measures[2], max_score);
    }

    #[test]
    fn budget_flows_through() {
        let spec = WorkloadSpec {
            data: DataSpec::BooleanIid {
                m: 4,
                n: 50,
                p: 0.5,
            },
            db: DbConfig::no_counts().with_budget(1),
            seed: 1,
        };
        let db = spec.build();
        assert!(db.execute(&ConjunctiveQuery::empty()).is_ok());
        assert!(db.execute(&ConjunctiveQuery::empty()).is_err());
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = WorkloadSpec::vehicles(VehiclesSpec::full(1000, 9), DbConfig::default());
        let json = serde_json::to_string(&spec).unwrap();
        let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn same_spec_same_database() {
        let spec = WorkloadSpec {
            data: DataSpec::ZipfCategorical {
                domain_sizes: vec![4, 4, 4],
                n: 100,
                theta: 1.0,
            },
            db: DbConfig::exact_counts(),
            seed: 77,
        };
        let a = spec.build();
        let b = spec.build();
        let q = ConjunctiveQuery::empty();
        assert_eq!(a.execute(&q).unwrap(), b.execute(&q).unwrap());
    }
}
