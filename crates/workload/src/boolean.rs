//! Boolean hidden databases — the data model of the SIGMOD 2007 analysis
//! that HIDDEN-DB-SAMPLER was designed on (paper §2, Figure 1).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hdsampler_model::{Attribute, Schema, SchemaBuilder, Tuple};

/// Build the Boolean schema `a1..am` (no measures).
pub fn boolean_schema(m: usize) -> Arc<Schema> {
    let mut b = SchemaBuilder::new();
    for i in 1..=m {
        b = b.attribute(Attribute::boolean(format!("a{i}")));
    }
    b.finish()
        .expect("generated names are unique")
        .into_shared()
}

/// `n` tuples over `m` Boolean attributes, each bit set independently with
/// probability `p`.
///
/// Duplicates are possible (and realistic); the drill-down walk's behaviour
/// on duplicate-heavy data is measured by the data-shape experiment.
pub fn boolean_iid(m: usize, n: usize, p: f64, seed: u64) -> (Arc<Schema>, Vec<Tuple>) {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let schema = boolean_schema(m);
    let mut rng = StdRng::seed_from_u64(seed);
    let tuples = (0..n)
        .map(|_| {
            let values = (0..m).map(|_| u16::from(rng.gen_bool(p))).collect();
            Tuple::new_unchecked(values, vec![])
        })
        .collect();
    (schema, tuples)
}

/// Cluster-correlated Boolean data: `clusters` random centres, each tuple
/// copies a centre and flips every bit independently with probability
/// `noise`.
///
/// Correlation concentrates tuples in a few subtrees of the query tree,
/// which deepens walks and stresses the skew-reduction machinery — the
/// regime where random attribute scrambling pays off.
pub fn boolean_correlated(
    m: usize,
    n: usize,
    clusters: usize,
    noise: f64,
    seed: u64,
) -> (Arc<Schema>, Vec<Tuple>) {
    assert!(clusters > 0, "need at least one cluster");
    assert!(
        (0.0..=0.5).contains(&noise),
        "noise beyond 0.5 destroys correlation"
    );
    let schema = boolean_schema(m);
    let mut rng = StdRng::seed_from_u64(seed);
    let centres: Vec<Vec<bool>> = (0..clusters)
        .map(|_| (0..m).map(|_| rng.gen_bool(0.5)).collect())
        .collect();
    let tuples = (0..n)
        .map(|_| {
            let centre = &centres[rng.gen_range(0..clusters)];
            let values = centre
                .iter()
                .map(|&bit| u16::from(bit ^ rng.gen_bool(noise)))
                .collect();
            Tuple::new_unchecked(values, vec![])
        })
        .collect();
    (schema, tuples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iid_respects_shape_and_seed() {
        let (schema, tuples) = boolean_iid(8, 100, 0.5, 1);
        assert_eq!(schema.arity(), 8);
        assert_eq!(tuples.len(), 100);
        let (_, again) = boolean_iid(8, 100, 0.5, 1);
        assert_eq!(tuples, again, "deterministic per seed");
        let (_, other) = boolean_iid(8, 100, 0.5, 2);
        assert_ne!(tuples, other, "seed changes data");
    }

    #[test]
    fn iid_bit_frequency_tracks_p() {
        let (_, tuples) = boolean_iid(4, 20_000, 0.3, 9);
        let ones: usize = tuples
            .iter()
            .map(|t| t.values().iter().filter(|&&v| v == 1).count())
            .sum();
        let freq = ones as f64 / (4.0 * 20_000.0);
        assert!((freq - 0.3).abs() < 0.01, "one-bit frequency {freq}");
    }

    #[test]
    fn extreme_p_degenerates() {
        let (_, zeros) = boolean_iid(5, 50, 0.0, 3);
        assert!(zeros.iter().all(|t| t.values().iter().all(|&v| v == 0)));
        let (_, ones) = boolean_iid(5, 50, 1.0, 3);
        assert!(ones.iter().all(|t| t.values().iter().all(|&v| v == 1)));
    }

    #[test]
    fn correlated_tuples_cluster() {
        // With zero noise every tuple equals one of the centres.
        let (_, tuples) = boolean_correlated(10, 500, 4, 0.0, 5);
        let distinct: std::collections::HashSet<_> =
            tuples.iter().map(|t| t.values().to_vec()).collect();
        assert!(distinct.len() <= 4, "{} distinct patterns", distinct.len());

        // With noise, tuples stay near centres: mean Hamming distance to the
        // closest of the 4 patterns above should be ≈ noise · m.
        let (_, noisy) = boolean_correlated(10, 500, 4, 0.1, 5);
        let mean_dist: f64 = noisy
            .iter()
            .map(|t| {
                distinct
                    .iter()
                    .map(|c| c.iter().zip(t.values()).filter(|(a, b)| a != b).count())
                    .min()
                    .unwrap() as f64
            })
            .sum::<f64>()
            / 500.0;
        assert!(mean_dist < 2.0, "mean distance to centres {mean_dist}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_p_panics() {
        let _ = boolean_iid(3, 10, 1.5, 0);
    }
}
