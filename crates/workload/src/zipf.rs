//! Zipf distribution over ranks `0..n`.
//!
//! Value skew in real hidden databases (popular makes, popular colours) is
//! heavy-tailed; the Zipf family parameterizes that skew with a single
//! exponent θ (θ = 0 is uniform, θ = 1 classic Zipf).

use rand::distributions::Distribution;
use rand::Rng;

/// A Zipf(θ) distribution over `0..n` using inverse-CDF sampling on the
/// precomputed cumulative weights (exact, O(log n) per draw).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Create a Zipf distribution over `n` items with exponent `theta ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over zero items");
        assert!(theta >= 0.0, "negative Zipf exponent");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(theta);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution is over zero items (never true).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Exact probability of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        (self.cumulative[i] - prev) / total
    }
}

impl Distribution<usize> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x: f64 = rng.gen::<f64>() * total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for i in 0..4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one_and_decreases() {
        let z = Zipf::new(50, 1.2);
        let total: f64 = (0..50).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for i in 1..50 {
            assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-15, "monotone non-increasing");
        }
    }

    #[test]
    fn empirical_matches_pmf() {
        let z = Zipf::new(6, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut counts = [0u64; 6];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let emp = c as f64 / n as f64;
            assert!(
                (emp - z.pmf(i)).abs() < 0.005,
                "rank {i}: empirical {emp} vs pmf {}",
                z.pmf(i)
            );
        }
    }

    #[test]
    #[should_panic(expected = "zero items")]
    fn zero_items_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
