//! Independent categorical databases with Zipfian value skew.

use std::sync::Arc;

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

use hdsampler_model::{Attribute, Schema, SchemaBuilder, Tuple};

use crate::zipf::Zipf;

/// `n` tuples over attributes with the given `domain_sizes`; attribute `i`'s
/// values are drawn Zipf(θ) over its domain (θ = 0 ⇒ uniform).
///
/// Generic categorical data lets experiments vary branching factor and value
/// skew independently of the vehicles scenario.
pub fn zipf_categorical(
    domain_sizes: &[usize],
    n: usize,
    theta: f64,
    seed: u64,
) -> (Arc<Schema>, Vec<Tuple>) {
    assert!(!domain_sizes.is_empty(), "need at least one attribute");
    let mut b = SchemaBuilder::new();
    for (i, &d) in domain_sizes.iter().enumerate() {
        let labels: Vec<String> = (0..d).map(|v| format!("c{i}_{v}")).collect();
        b = b.attribute(Attribute::categorical(format!("c{i}"), labels).expect("valid domain"));
    }
    let schema = b.finish().expect("unique names").into_shared();

    let dists: Vec<Zipf> = domain_sizes.iter().map(|&d| Zipf::new(d, theta)).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let tuples = (0..n)
        .map(|_| {
            let values = dists.iter().map(|z| z.sample(&mut rng) as u16).collect();
            Tuple::new_unchecked(values, vec![])
        })
        .collect();
    (schema, tuples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        use hdsampler_model::AttrId;
        let (schema, tuples) = zipf_categorical(&[3, 5, 2], 200, 1.0, 11);
        assert_eq!(schema.arity(), 3);
        assert_eq!(schema.domain_size(AttrId(1)), 5);
        assert_eq!(tuples.len(), 200);
        let (_, again) = zipf_categorical(&[3, 5, 2], 200, 1.0, 11);
        assert_eq!(tuples, again);
    }

    #[test]
    fn values_stay_in_domain() {
        let (schema, tuples) = zipf_categorical(&[4, 7], 500, 1.5, 3);
        for t in &tuples {
            for (id, attr) in schema.iter() {
                assert!((t.values()[id.index()] as usize) < attr.domain_size());
            }
        }
    }

    #[test]
    fn high_theta_concentrates_mass() {
        let (_, tuples) = zipf_categorical(&[10], 10_000, 2.0, 5);
        let zero_share = tuples.iter().filter(|t| t.values()[0] == 0).count() as f64 / 10_000.0;
        assert!(zero_share > 0.5, "rank-0 share {zero_share} under Zipf(2)");
    }
}
