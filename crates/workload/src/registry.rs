//! The named dataset registry.
//!
//! Every surface that accepts a dataset name — the CLI's `--source` /
//! `--dataset` flags, `local:` site locators, serve — resolves it here, so
//! the set of valid names lives in exactly one table and an unknown name
//! fails *early* with the full list (plus a nearest-match hint) instead of
//! deep inside dispatch.

use crate::spec::DataSpec;
use crate::vehicles::VehiclesSpec;

/// One named dataset: a recipe turning `(n, seed)` into a [`DataSpec`].
#[derive(Debug, Clone, Copy)]
pub struct DatasetDef {
    /// The registry name (what `--source` / `local:<name>` accept).
    pub name: &'static str,
    /// One-line description for listings and error messages.
    pub summary: &'static str,
    build: fn(n: usize, seed: u64) -> DataSpec,
}

impl DatasetDef {
    /// Instantiate the dataset's [`DataSpec`] at `n` tuples under `seed`.
    pub fn data_spec(&self, n: usize, seed: u64) -> DataSpec {
        (self.build)(n, seed)
    }
}

/// The registry table. Order is the order listings print in.
pub fn registry() -> &'static [DatasetDef] {
    const DEFS: &[DatasetDef] = &[
        DatasetDef {
            name: "vehicles-compact",
            summary: "6-attribute vehicle inventory (small domain product)",
            build: |n, seed| DataSpec::Vehicles(VehiclesSpec::compact(n, seed)),
        },
        DatasetDef {
            name: "vehicles-full",
            summary: "12-attribute Google-Base-like vehicle inventory",
            build: |n, seed| DataSpec::Vehicles(VehiclesSpec::full(n, seed)),
        },
        DatasetDef {
            name: "boolean",
            summary: "iid Boolean bits, m = 14, p = 0.5",
            build: |n, _| DataSpec::BooleanIid { m: 14, n, p: 0.5 },
        },
        DatasetDef {
            name: "boolean-correlated",
            summary: "cluster-correlated Boolean bits, m = 14, 4 clusters",
            build: |n, _| DataSpec::BooleanCorrelated {
                m: 14,
                n,
                clusters: 4,
                noise: 0.05,
            },
        },
    ];
    DEFS
}

/// All valid dataset names, in listing order.
pub fn dataset_names() -> Vec<&'static str> {
    registry().iter().map(|d| d.name).collect()
}

/// Resolve `name` to its definition.
///
/// # Errors
/// An unknown name fails with the full list of valid names and, when some
/// registered name is plausibly what the user meant (edit distance ≤ 3),
/// a `did you mean` hint.
pub fn resolve(name: &str) -> Result<&'static DatasetDef, String> {
    if let Some(def) = registry().iter().find(|d| d.name == name) {
        return Ok(def);
    }
    let valid = dataset_names().join(", ");
    let hint = registry()
        .iter()
        .map(|d| (edit_distance(name, d.name), d.name))
        .min()
        .filter(|(dist, _)| *dist <= 3)
        .map(|(_, near)| format!(" — did you mean `{near}`?"))
        .unwrap_or_default();
    Err(format!("unknown dataset `{name}` (valid: {valid}){hint}"))
}

/// Levenshtein distance, case-insensitive (two rolling rows).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.to_ascii_lowercase().chars().collect();
    let b: Vec<char> = b.to_ascii_lowercase().chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let subst = prev[j] + usize::from(ca != cb);
            cur[j + 1] = subst.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DbConfig, WorkloadSpec};

    #[test]
    fn every_registered_dataset_builds() {
        for def in registry() {
            let db = WorkloadSpec {
                data: def.data_spec(200, 7),
                db: DbConfig::no_counts().with_k(50),
                seed: 7,
            }
            .build();
            assert_eq!(db.n_tuples(), 200, "{} must honor n", def.name);
        }
    }

    #[test]
    fn resolve_finds_exact_names() {
        assert_eq!(
            resolve("vehicles-compact").unwrap().name,
            "vehicles-compact"
        );
        assert_eq!(resolve("boolean").unwrap().name, "boolean");
    }

    #[test]
    fn unknown_names_list_valid_ones_with_a_hint() {
        let err = resolve("vehicles-compat").unwrap_err();
        assert!(err.contains("unknown dataset `vehicles-compat`"), "{err}");
        for def in registry() {
            assert!(err.contains(def.name), "{err} must list {}", def.name);
        }
        assert!(err.contains("did you mean `vehicles-compact`?"), "{err}");

        // Nothing nearby: no misleading hint, just the list.
        let err = resolve("zzzzzzzzzzzz").unwrap_err();
        assert!(!err.contains("did you mean"), "{err}");
        assert!(err.contains("valid:"), "{err}");
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("boolean", "boolean"), 0);
        assert_eq!(edit_distance("bolean", "boolean"), 1);
        assert_eq!(edit_distance("Boolean", "boolean"), 0, "case-insensitive");
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }
}
