//! # hdsampler-workload
//!
//! Synthetic hidden databases for experiments and demos.
//!
//! The demo paper drives HDSampler with two data sources: the live Google
//! Base Vehicles database and "a locally simulated hidden database" (§4).
//! This crate provides the simulated sources:
//!
//! * [`vehicles`] — a Google-Base-Vehicles-like inventory with correlated
//!   attributes (make → model → body style, year → mileage/price/condition,
//!   …) and a freshness-based ranking score, in both a *full* (12-attribute)
//!   and a *compact* (6-attribute) variant — the compact one keeps the
//!   domain product small enough for BRUTE-FORCE-SAMPLER validation;
//! * [`boolean`] — iid and cluster-correlated Boolean databases, the data
//!   model of the underlying SIGMOD 2007 analysis;
//! * [`categorical`] — independent categorical attributes with Zipfian
//!   value skew;
//! * [`zipf`] — the Zipf distribution used throughout;
//! * [`paper`] — the literal 4-tuple database of the paper's Figure 1;
//! * [`spec`] — serializable workload descriptions that build complete
//!   [`HiddenDb`](hdsampler_hidden_db::HiddenDb) instances reproducibly
//!   from a seed;
//! * [`registry`] — the named dataset table every surface (CLI flags,
//!   `local:` site locators) resolves through, with early rejection and
//!   nearest-match hints for unknown names.

pub mod boolean;
pub mod categorical;
pub mod paper;
pub mod registry;
pub mod spec;
pub mod vehicles;
pub mod zipf;

pub use boolean::{boolean_correlated, boolean_iid};
pub use categorical::zipf_categorical;
pub use paper::figure1_db;
pub use registry::{dataset_names, resolve as resolve_dataset, DatasetDef};
pub use spec::{DataSpec, DbConfig, WorkloadSpec};
pub use vehicles::{vehicles_compact, vehicles_full, VehiclesSpec};
pub use zipf::Zipf;
