//! The Google Base *Vehicles* scenario: a synthetic used-car inventory with
//! realistic, correlated attributes.
//!
//! The demo customizes HDSampler to the Google Base Vehicles database —
//! "a large online database formed and maintained by Google by integrating
//! numerous vehicle-market data sources" (§3.1). We cannot query the
//! long-gone live service, so this module generates an inventory with the
//! same *statistical texture*:
//!
//! * heavy-tailed make shares with a ~38 % Japanese segment (the paper's §1
//!   example aggregate is "the percentage of Japanese cars");
//! * models conditioned on make, body style conditioned on model;
//! * year-skewed inventory with price/mileage/condition all correlated
//!   with age;
//! * a *freshness + dealer-rating* ranking score, so the site's top-k page
//!   is strongly biased toward new listings — exactly the bias that makes
//!   naive top-k scraping useless for statistics and motivates HDSampler.

use std::sync::Arc;

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use hdsampler_model::{Attribute, Bucket, Measure, Schema, SchemaBuilder, Tuple};

/// Vehicle makes with inventory shares. Japanese makes are grouped first so
/// that [`is_japanese_make`] is a range check.
pub const MAKES: [(&str, f64); 18] = [
    ("Toyota", 0.14),
    ("Honda", 0.11),
    ("Nissan", 0.07),
    ("Mazda", 0.03),
    ("Subaru", 0.025),
    ("Mitsubishi", 0.015),
    ("Ford", 0.12),
    ("Chevrolet", 0.12),
    ("Dodge", 0.05),
    ("Chrysler", 0.03),
    ("Jeep", 0.035),
    ("Cadillac", 0.02),
    ("Volkswagen", 0.04),
    ("BMW", 0.035),
    ("Mercedes-Benz", 0.03),
    ("Audi", 0.02),
    ("Hyundai", 0.06),
    ("Kia", 0.05),
];

/// Number of Japanese makes at the head of [`MAKES`].
pub const N_JAPANESE_MAKES: usize = 6;

/// Whether make index `m` denotes a Japanese manufacturer.
#[inline]
pub fn is_japanese_make(m: usize) -> bool {
    m < N_JAPANESE_MAKES
}

/// Body styles (domain of the `body` attribute).
pub const BODY_STYLES: [&str; 8] = [
    "sedan",
    "coupe",
    "hatchback",
    "SUV",
    "truck",
    "minivan",
    "wagon",
    "convertible",
];

const SEDAN: usize = 0;
const COUPE: usize = 1;
const HATCH: usize = 2;
const SUV: usize = 3;
const TRUCK: usize = 4;
const MINIVAN: usize = 5;
const WAGON: usize = 6;
const CONVERTIBLE: usize = 7;

/// Five models per make: `(name, body style, base price in $1000)`.
/// In-make popularity weights are [`MODEL_WEIGHTS`].
pub const MODELS: [[(&str, usize, f64); 5]; 18] = [
    [
        ("Camry", SEDAN, 24.0),
        ("Corolla", SEDAN, 17.0),
        ("RAV4", SUV, 23.0),
        ("Tacoma", TRUCK, 22.0),
        ("Prius", HATCH, 23.5),
    ],
    [
        ("Accord", SEDAN, 23.0),
        ("Civic", SEDAN, 17.5),
        ("CR-V", SUV, 22.5),
        ("Odyssey", MINIVAN, 27.0),
        ("Pilot", SUV, 29.0),
    ],
    [
        ("Altima", SEDAN, 21.5),
        ("Sentra", SEDAN, 16.0),
        ("Maxima", SEDAN, 28.5),
        ("Pathfinder", SUV, 27.5),
        ("Frontier", TRUCK, 19.5),
    ],
    [
        ("Mazda3", SEDAN, 17.0),
        ("Mazda6", SEDAN, 20.5),
        ("CX-7", SUV, 24.5),
        ("MX-5", CONVERTIBLE, 23.0),
        ("Tribute", SUV, 20.0),
    ],
    [
        ("Outback", WAGON, 23.0),
        ("Forester", SUV, 21.5),
        ("Impreza", SEDAN, 17.5),
        ("Legacy", SEDAN, 20.5),
        ("Tribeca", SUV, 30.5),
    ],
    [
        ("Lancer", SEDAN, 15.5),
        ("Outlander", SUV, 21.0),
        ("Eclipse", COUPE, 20.0),
        ("Galant", SEDAN, 19.5),
        ("Endeavor", SUV, 26.0),
    ],
    [
        ("F-150", TRUCK, 24.0),
        ("Focus", SEDAN, 15.0),
        ("Escape", SUV, 20.5),
        ("Explorer", SUV, 26.5),
        ("Mustang", COUPE, 21.0),
    ],
    [
        ("Silverado", TRUCK, 23.5),
        ("Impala", SEDAN, 22.0),
        ("Malibu", SEDAN, 19.0),
        ("Tahoe", SUV, 34.5),
        ("Cobalt", COUPE, 14.5),
    ],
    [
        ("Ram", TRUCK, 22.5),
        ("Charger", SEDAN, 23.0),
        ("Grand Caravan", MINIVAN, 22.0),
        ("Durango", SUV, 27.0),
        ("Avenger", SEDAN, 18.5),
    ],
    [
        ("300", SEDAN, 26.0),
        ("Town & Country", MINIVAN, 25.0),
        ("Sebring", SEDAN, 19.0),
        ("PT Cruiser", WAGON, 15.5),
        ("Pacifica", WAGON, 25.5),
    ],
    [
        ("Grand Cherokee", SUV, 28.5),
        ("Wrangler", SUV, 20.5),
        ("Liberty", SUV, 21.0),
        ("Compass", SUV, 17.0),
        ("Patriot", SUV, 16.5),
    ],
    [
        ("Escalade", SUV, 57.0),
        ("CTS", SEDAN, 33.0),
        ("DTS", SEDAN, 42.0),
        ("SRX", SUV, 37.0),
        ("STS", SEDAN, 46.0),
    ],
    [
        ("Jetta", SEDAN, 17.5),
        ("Passat", SEDAN, 24.0),
        ("Golf", HATCH, 16.5),
        ("New Beetle", HATCH, 18.0),
        ("Touareg", SUV, 39.5),
    ],
    [
        ("3 Series", SEDAN, 33.0),
        ("5 Series", SEDAN, 45.0),
        ("X5", SUV, 47.0),
        ("X3", SUV, 38.5),
        ("7 Series", SEDAN, 72.0),
    ],
    [
        ("C-Class", SEDAN, 32.0),
        ("E-Class", SEDAN, 51.0),
        ("M-Class", SUV, 44.5),
        ("S-Class", SEDAN, 86.0),
        ("GL-Class", SUV, 55.0),
    ],
    [
        ("A4", SEDAN, 30.5),
        ("A6", SEDAN, 42.0),
        ("Q7", SUV, 43.0),
        ("A3", HATCH, 26.0),
        ("TT", COUPE, 35.0),
    ],
    [
        ("Sonata", SEDAN, 18.5),
        ("Elantra", SEDAN, 14.5),
        ("Santa Fe", SUV, 21.5),
        ("Accent", HATCH, 11.0),
        ("Tucson", SUV, 18.0),
    ],
    [
        ("Optima", SEDAN, 17.0),
        ("Spectra", SEDAN, 13.5),
        ("Sorento", SUV, 22.0),
        ("Sportage", SUV, 17.5),
        ("Rio", SEDAN, 11.5),
    ],
];

/// In-make model popularity.
pub const MODEL_WEIGHTS: [f64; 5] = [0.35, 0.25, 0.18, 0.12, 0.10];

/// Model years covered by the inventory (2009 is "this year" — the paper's
/// publication year).
pub const YEARS: std::ops::RangeInclusive<u16> = 1995..=2009;

/// Exterior colours with shares.
pub const COLORS: [(&str, f64); 12] = [
    ("Silver", 0.18),
    ("Black", 0.16),
    ("White", 0.15),
    ("Gray", 0.12),
    ("Blue", 0.10),
    ("Red", 0.09),
    ("Green", 0.05),
    ("Gold", 0.04),
    ("Beige", 0.03),
    ("Brown", 0.03),
    ("Orange", 0.025),
    ("Yellow", 0.025),
];

/// Sale conditions.
pub const CONDITIONS: [&str; 3] = ["new", "used", "certified"];

/// Transmission kinds.
pub const TRANSMISSIONS: [&str; 2] = ["automatic", "manual"];

/// Fuel kinds.
pub const FUELS: [&str; 4] = ["gasoline", "diesel", "hybrid", "electric"];

/// Door counts exposed by the form.
pub const DOORS: [&str; 3] = ["2", "4", "5"];

/// US census regions (coarse location attribute).
pub const REGIONS: [(&str, f64); 9] = [
    ("New England", 0.05),
    ("Mid-Atlantic", 0.13),
    ("East North Central", 0.15),
    ("West North Central", 0.07),
    ("South Atlantic", 0.19),
    ("East South Central", 0.06),
    ("West South Central", 0.12),
    ("Mountain", 0.07),
    ("Pacific", 0.16),
];

/// Price buckets as the search form exposes them.
fn price_buckets() -> Vec<Bucket> {
    let edges: [(f64, f64, &str); 10] = [
        (0.0, 2_500.0, "under $2.5k"),
        (2_500.0, 5_000.0, "$2.5k–$5k"),
        (5_000.0, 8_000.0, "$5k–$8k"),
        (8_000.0, 12_000.0, "$8k–$12k"),
        (12_000.0, 16_000.0, "$12k–$16k"),
        (16_000.0, 20_000.0, "$16k–$20k"),
        (20_000.0, 25_000.0, "$20k–$25k"),
        (25_000.0, 32_000.0, "$25k–$32k"),
        (32_000.0, 45_000.0, "$32k–$45k"),
        (45_000.0, f64::INFINITY, "over $45k"),
    ];
    edges
        .iter()
        .map(|&(lo, hi, l)| Bucket::new(lo, hi, l))
        .collect()
}

/// Mileage buckets as the search form exposes them.
fn mileage_buckets() -> Vec<Bucket> {
    let edges: [(f64, f64, &str); 7] = [
        (0.0, 1_000.0, "under 1k mi"),
        (1_000.0, 15_000.0, "1k–15k mi"),
        (15_000.0, 40_000.0, "15k–40k mi"),
        (40_000.0, 70_000.0, "40k–70k mi"),
        (70_000.0, 100_000.0, "70k–100k mi"),
        (100_000.0, 140_000.0, "100k–140k mi"),
        (140_000.0, f64::INFINITY, "over 140k mi"),
    ];
    edges
        .iter()
        .map(|&(lo, hi, l)| Bucket::new(lo, hi, l))
        .collect()
}

/// Which attributes the generated form exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VehiclesVariant {
    /// All 12 attributes — the realistic Google Base configuration
    /// (domain product ≈ 1.3 · 10¹¹; brute-force sampling is hopeless).
    Full,
    /// Six attributes (make, year, price, condition, transmission, body) —
    /// small enough (product = 77 760) for brute-force validation, the
    /// paper's §3.4 methodology.
    Compact,
}

/// Parameters of the synthetic inventory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehiclesSpec {
    /// Number of listings.
    pub n: usize,
    /// RNG seed (same seed ⇒ identical inventory).
    pub seed: u64,
    /// Attribute subset.
    pub variant: VehiclesVariant,
}

impl VehiclesSpec {
    /// Full-schema inventory of `n` listings.
    pub fn full(n: usize, seed: u64) -> Self {
        VehiclesSpec {
            n,
            seed,
            variant: VehiclesVariant::Full,
        }
    }

    /// Compact-schema inventory of `n` listings.
    pub fn compact(n: usize, seed: u64) -> Self {
        VehiclesSpec {
            n,
            seed,
            variant: VehiclesVariant::Compact,
        }
    }

    /// Generate the schema and tuples.
    pub fn generate(&self) -> (Arc<Schema>, Vec<Tuple>) {
        match self.variant {
            VehiclesVariant::Full => vehicles_full(self.n, self.seed),
            VehiclesVariant::Compact => vehicles_compact(self.n, self.seed),
        }
    }
}

/// One fully-specified listing before projection onto a schema.
struct Listing {
    make: usize,
    model_global: usize,
    year_ix: usize,
    price: f64,
    mileage: f64,
    color: usize,
    condition: usize,
    transmission: usize,
    fuel: usize,
    body: usize,
    doors_ix: usize,
    region: usize,
    score: f64,
}

fn sample_listing(
    rng: &mut StdRng,
    make_dist: &WeightedIndex<f64>,
    model_dist: &WeightedIndex<f64>,
    color_dist: &WeightedIndex<f64>,
    region_dist: &WeightedIndex<f64>,
    year_dist: &WeightedIndex<f64>,
) -> Listing {
    let make = make_dist.sample(rng);
    let model_local = model_dist.sample(rng);
    let model_global = make * 5 + model_local;
    let (model_name, body, base_price_k) = MODELS[make][model_local];

    let year_ix = year_dist.sample(rng);
    let year = *YEARS.start() + year_ix as u16;
    let age = (*YEARS.end() - year) as f64;

    // Condition correlates with age.
    let condition = if age == 0.0 {
        let r: f64 = rng.gen();
        if r < 0.85 {
            0
        } else if r < 0.95 {
            2
        } else {
            1
        }
    } else if age <= 3.0 {
        let r: f64 = rng.gen();
        if r < 0.03 {
            0
        } else if r < 0.30 {
            2
        } else {
            1
        }
    } else {
        let r: f64 = rng.gen();
        if r < 0.08 {
            2
        } else {
            1
        }
    };

    // Price: base price depreciated by age with log-normal dispersion;
    // certified listings command a small premium.
    let depreciation = 0.865f64.powf(age);
    let noise = (rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>() - 1.5) * 0.16;
    let premium = if condition == 2 { 1.06 } else { 1.0 };
    let price = (base_price_k * 1000.0 * depreciation * premium * (1.0 + noise)).max(500.0);

    // Mileage grows ~12k/year with dispersion; new cars have delivery miles.
    let mileage = if condition == 0 {
        rng.gen_range(5.0..250.0)
    } else {
        let per_year: f64 = rng.gen_range(8_000.0..16_000.0);
        let dispersion: f64 = rng.gen_range(0.75..1.25);
        (age.max(0.3) * per_year * dispersion).max(30.0)
    };

    // Fuel: Prius is always hybrid; other recent Toyota/Honda occasionally;
    // German sedans/SUVs and trucks see some diesel; electric is exotic.
    let fuel = if model_name == "Prius" {
        2
    } else {
        let r: f64 = rng.gen();
        if make <= 1 && age <= 4.0 && r < 0.05 {
            2
        } else if ((12..=15).contains(&make) && r < 0.10) || (body == TRUCK && r < 0.15) {
            1
        } else if age <= 1.0 && r < 0.002 {
            3
        } else {
            0
        }
    };

    // Manual transmissions skew toward coupes/hatches and older cars.
    let manual_p: f64 = match body {
        COUPE | CONVERTIBLE => 0.35,
        HATCH => 0.25,
        TRUCK => 0.12,
        _ => 0.06,
    } * if age > 8.0 { 1.5 } else { 1.0 };
    let transmission = usize::from(rng.gen_bool(manual_p.min(0.9)));

    let doors_ix = match body {
        COUPE | CONVERTIBLE => 0,
        TRUCK => {
            if rng.gen_bool(0.55) {
                0
            } else {
                1
            }
        }
        SEDAN => 1,
        SUV | WAGON if rng.gen_bool(0.6) => 1,
        _ => 2,
    };

    // Ranking score: freshness dominates, dealer rating breaks ties. The
    // site sorts by score descending, so its first page is nearly all new
    // listings — useless as a random sample.
    let score = (year as f64 - 1990.0) * 10.0 + rng.gen_range(0.0..10.0);

    Listing {
        make,
        model_global,
        year_ix,
        price,
        mileage,
        color: color_dist.sample(rng),
        condition,
        transmission,
        fuel,
        body,
        doors_ix,
        region: region_dist.sample(rng),
        score,
    }
}

fn listings(n: usize, seed: u64) -> Vec<Listing> {
    let mut rng = StdRng::seed_from_u64(seed);
    let make_dist = WeightedIndex::new(MAKES.iter().map(|&(_, w)| w)).expect("valid weights");
    let model_dist = WeightedIndex::new(MODEL_WEIGHTS).expect("valid weights");
    let color_dist = WeightedIndex::new(COLORS.iter().map(|&(_, w)| w)).expect("valid weights");
    let region_dist = WeightedIndex::new(REGIONS.iter().map(|&(_, w)| w)).expect("valid weights");
    // Inventory age profile: lots of 2–6 year old cars, a new-car spike,
    // a long tail of old listings.
    let year_weights: Vec<f64> = YEARS
        .map(|y| {
            let age = (*YEARS.end() - y) as f64;
            if age == 0.0 {
                0.12
            } else {
                (-((age - 4.0) * (age - 4.0)) / 22.0).exp() * 0.115 + 0.012
            }
        })
        .collect();
    let year_dist = WeightedIndex::new(&year_weights).expect("valid weights");

    (0..n)
        .map(|_| {
            sample_listing(
                &mut rng,
                &make_dist,
                &model_dist,
                &color_dist,
                &region_dist,
                &year_dist,
            )
        })
        .collect()
}

/// Build the full 12-attribute vehicles schema.
pub fn vehicles_full_schema() -> Arc<Schema> {
    let year_labels: Vec<String> = YEARS.map(|y| y.to_string()).collect();
    let model_labels: Vec<String> = MODELS
        .iter()
        .enumerate()
        .flat_map(|(mk, models)| {
            models
                .iter()
                .map(move |(name, _, _)| format!("{} {}", MAKES[mk].0, name))
        })
        .collect();
    SchemaBuilder::new()
        .attribute(Attribute::categorical("make", MAKES.iter().map(|&(n, _)| n)).unwrap())
        .attribute(Attribute::categorical("model", model_labels).unwrap())
        .attribute(Attribute::categorical("year", year_labels).unwrap())
        .attribute(Attribute::numeric("price", price_buckets()).unwrap())
        .attribute(Attribute::numeric("mileage", mileage_buckets()).unwrap())
        .attribute(Attribute::categorical("color", COLORS.iter().map(|&(n, _)| n)).unwrap())
        .attribute(Attribute::categorical("condition", CONDITIONS).unwrap())
        .attribute(Attribute::categorical("transmission", TRANSMISSIONS).unwrap())
        .attribute(Attribute::categorical("fuel", FUELS).unwrap())
        .attribute(Attribute::categorical("body", BODY_STYLES).unwrap())
        .attribute(Attribute::categorical("doors", DOORS).unwrap())
        .attribute(Attribute::categorical("region", REGIONS.iter().map(|&(n, _)| n)).unwrap())
        .measure(Measure::new("price_usd"))
        .measure(Measure::new("mileage_mi"))
        .measure(Measure::new("score"))
        .finish()
        .expect("static schema is valid")
        .into_shared()
}

/// Build the compact 6-attribute vehicles schema (for brute-force
/// validation).
pub fn vehicles_compact_schema() -> Arc<Schema> {
    let year_labels: Vec<String> = YEARS.map(|y| y.to_string()).collect();
    let compact_prices: Vec<Bucket> = [
        (0.0, 5_000.0, "under $5k"),
        (5_000.0, 10_000.0, "$5k–$10k"),
        (10_000.0, 16_000.0, "$10k–$16k"),
        (16_000.0, 24_000.0, "$16k–$24k"),
        (24_000.0, 36_000.0, "$24k–$36k"),
        (36_000.0, f64::INFINITY, "over $36k"),
    ]
    .iter()
    .map(|&(lo, hi, l)| Bucket::new(lo, hi, l))
    .collect();
    SchemaBuilder::new()
        .attribute(Attribute::categorical("make", MAKES.iter().map(|&(n, _)| n)).unwrap())
        .attribute(Attribute::categorical("year", year_labels).unwrap())
        .attribute(Attribute::numeric("price", compact_prices).unwrap())
        .attribute(Attribute::categorical("condition", CONDITIONS).unwrap())
        .attribute(Attribute::categorical("transmission", TRANSMISSIONS).unwrap())
        .attribute(Attribute::categorical("body", BODY_STYLES).unwrap())
        .measure(Measure::new("price_usd"))
        .measure(Measure::new("mileage_mi"))
        .measure(Measure::new("score"))
        .finish()
        .expect("static schema is valid")
        .into_shared()
}

/// Generate `n` listings projected onto the full schema.
pub fn vehicles_full(n: usize, seed: u64) -> (Arc<Schema>, Vec<Tuple>) {
    let schema = vehicles_full_schema();
    let price_attr = schema.attr_by_name("price").unwrap();
    let mileage_attr = schema.attr_by_name("mileage").unwrap();
    let tuples = listings(n, seed)
        .into_iter()
        .map(|l| {
            let values = vec![
                l.make as u16,
                l.model_global as u16,
                l.year_ix as u16,
                schema
                    .attr_unchecked(price_attr)
                    .bucket_of(l.price)
                    .expect("in range"),
                schema
                    .attr_unchecked(mileage_attr)
                    .bucket_of(l.mileage)
                    .expect("in range"),
                l.color as u16,
                l.condition as u16,
                l.transmission as u16,
                l.fuel as u16,
                l.body as u16,
                l.doors_ix as u16,
                l.region as u16,
            ];
            Tuple::new_unchecked(values, vec![l.price, l.mileage, l.score])
        })
        .collect();
    (schema, tuples)
}

/// Generate `n` listings projected onto the compact schema.
pub fn vehicles_compact(n: usize, seed: u64) -> (Arc<Schema>, Vec<Tuple>) {
    let schema = vehicles_compact_schema();
    let price_attr = schema.attr_by_name("price").unwrap();
    let tuples = listings(n, seed)
        .into_iter()
        .map(|l| {
            let values = vec![
                l.make as u16,
                l.year_ix as u16,
                schema
                    .attr_unchecked(price_attr)
                    .bucket_of(l.price)
                    .expect("in range"),
                l.condition as u16,
                l.transmission as u16,
                l.body as u16,
            ];
            Tuple::new_unchecked(values, vec![l.price, l.mileage, l.score])
        })
        .collect();
    (schema, tuples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn make_shares_sum_to_one() {
        let total: f64 = MAKES.iter().map(|&(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9, "make shares sum to {total}");
        let colors: f64 = COLORS.iter().map(|&(_, w)| w).sum();
        assert!((colors - 1.0).abs() < 1e-9);
        let regions: f64 = REGIONS.iter().map(|&(_, w)| w).sum();
        assert!((regions - 1.0).abs() < 1e-9);
    }

    #[test]
    fn full_generation_is_valid_and_deterministic() {
        let (schema, tuples) = vehicles_full(2_000, 42);
        assert_eq!(schema.arity(), 12);
        assert_eq!(tuples.len(), 2_000);
        for t in &tuples {
            for (id, attr) in schema.iter() {
                assert!((t.values()[id.index()] as usize) < attr.domain_size());
            }
        }
        let (_, again) = vehicles_full(2_000, 42);
        assert_eq!(tuples, again);
    }

    #[test]
    fn japanese_share_is_near_nominal() {
        let (_, tuples) = vehicles_full(50_000, 7);
        let nominal: f64 = MAKES[..N_JAPANESE_MAKES].iter().map(|&(_, w)| w).sum();
        let actual = tuples
            .iter()
            .filter(|t| is_japanese_make(t.values()[0] as usize))
            .count() as f64
            / 50_000.0;
        assert!(
            (actual - nominal).abs() < 0.01,
            "Japanese share {actual} vs nominal {nominal}"
        );
    }

    #[test]
    fn model_is_consistent_with_make() {
        let (_, tuples) = vehicles_full(5_000, 3);
        for t in &tuples {
            let make = t.values()[0] as usize;
            let model = t.values()[1] as usize;
            assert_eq!(model / 5, make, "model {model} belongs to make {make}");
        }
    }

    #[test]
    fn price_bucket_matches_measure() {
        let (schema, tuples) = vehicles_full(3_000, 9);
        let price_attr = schema.attr_by_name("price").unwrap();
        for t in &tuples {
            let bucket = schema
                .attr_unchecked(price_attr)
                .bucket_of(t.measures()[0])
                .unwrap();
            assert_eq!(t.values()[price_attr.index()], bucket);
        }
    }

    #[test]
    fn mileage_correlates_with_age() {
        let (schema, tuples) = vehicles_full(20_000, 5);
        let year_attr = schema.attr_by_name("year").unwrap();
        let mut old = (0.0, 0u32);
        let mut newish = (0.0, 0u32);
        for t in &tuples {
            let year_ix = t.values()[year_attr.index()];
            let mileage = t.measures()[1];
            if year_ix <= 4 {
                old = (old.0 + mileage, old.1 + 1);
            } else if year_ix >= 13 {
                newish = (newish.0 + mileage, newish.1 + 1);
            }
        }
        let old_avg = old.0 / old.1 as f64;
        let new_avg = newish.0 / newish.1 as f64;
        assert!(
            old_avg > 3.0 * new_avg,
            "old cars should have much higher mileage: {old_avg} vs {new_avg}"
        );
    }

    #[test]
    fn new_cars_rank_ahead_by_score() {
        let (schema, tuples) = vehicles_full(10_000, 11);
        let year_attr = schema.attr_by_name("year").unwrap();
        let mut scored: Vec<(f64, u16)> = tuples
            .iter()
            .map(|t| (t.measures()[2], t.values()[year_attr.index()]))
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
        let top_years: f64 = scored[..100].iter().map(|&(_, y)| y as f64).sum::<f64>() / 100.0;
        let all_years: f64 =
            scored.iter().map(|&(_, y)| y as f64).sum::<f64>() / scored.len() as f64;
        assert!(
            top_years > all_years + 2.0,
            "top-ranked listings skew recent: top {top_years}, all {all_years}"
        );
    }

    #[test]
    fn compact_domain_product_is_brute_forceable() {
        let schema = vehicles_compact_schema();
        assert!(
            schema.domain_product() < 100_000.0,
            "B = {}",
            schema.domain_product()
        );
        let (schema, tuples) = vehicles_compact(1_000, 1);
        assert_eq!(schema.arity(), 6);
        for t in &tuples {
            assert_eq!(t.measures().len(), 3);
        }
    }

    #[test]
    fn full_domain_product_is_hopeless_for_brute_force() {
        let schema = vehicles_full_schema();
        assert!(
            schema.domain_product() > 1e10,
            "B = {}",
            schema.domain_product()
        );
    }

    #[test]
    fn prius_is_always_hybrid() {
        let (schema, tuples) = vehicles_full(20_000, 13);
        let model_attr = schema.attr_by_name("model").unwrap();
        let fuel_attr = schema.attr_by_name("fuel").unwrap();
        let prius_ix = schema
            .attr_unchecked(model_attr)
            .parse_label("Toyota Prius")
            .expect("Prius exists");
        let mut n_prius = 0;
        for t in &tuples {
            if t.values()[model_attr.index()] == prius_ix {
                n_prius += 1;
                assert_eq!(t.values()[fuel_attr.index()], 2, "Prius must be hybrid");
            }
        }
        assert!(
            n_prius > 50,
            "expected a reasonable Prius population, got {n_prius}"
        );
    }

    #[test]
    fn spec_builds_both_variants() {
        let (s1, t1) = VehiclesSpec::full(100, 2).generate();
        assert_eq!(s1.arity(), 12);
        assert_eq!(t1.len(), 100);
        let (s2, t2) = VehiclesSpec::compact(100, 2).generate();
        assert_eq!(s2.arity(), 6);
        assert_eq!(t2.len(), 100);
    }
}
