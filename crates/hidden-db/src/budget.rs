//! Query budgets: the per-IP/session limits real data providers enforce.
//!
//! "Crawling a very large hidden database can be extremely expensive, and
//! could be impossible when data providers limits the maximum number of
//! queries that can be issued by an IP address" (§1). The budget is charged
//! *per submitted form*, successful or not, exactly like a rate-limited
//! site counts page fetches.

use std::sync::atomic::{AtomicU64, Ordering};

use hdsampler_model::InterfaceError;

/// A concurrent query budget.
///
/// `limit = None` means unmetered. Charging is wait-free; once exhausted
/// every further charge fails with [`InterfaceError::BudgetExhausted`].
#[derive(Debug)]
pub struct QueryBudget {
    limit: Option<u64>,
    used: AtomicU64,
}

impl QueryBudget {
    /// Budget of `limit` queries.
    pub fn limited(limit: u64) -> Self {
        QueryBudget {
            limit: Some(limit),
            used: AtomicU64::new(0),
        }
    }

    /// No limit (charges are still counted).
    pub fn unlimited() -> Self {
        QueryBudget {
            limit: None,
            used: AtomicU64::new(0),
        }
    }

    /// Charge one query.
    ///
    /// Returns the total charged so far (including this one) on success.
    pub fn charge(&self) -> Result<u64, InterfaceError> {
        match self.limit {
            None => Ok(self.used.fetch_add(1, Ordering::Relaxed) + 1),
            Some(limit) => {
                // Optimistically increment, then roll back on overshoot so
                // concurrent chargers cannot exceed the limit.
                let prev = self.used.fetch_add(1, Ordering::Relaxed);
                if prev >= limit {
                    self.used.fetch_sub(1, Ordering::Relaxed);
                    Err(InterfaceError::BudgetExhausted { issued: limit })
                } else {
                    Ok(prev + 1)
                }
            }
        }
    }

    /// Queries charged so far.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Remaining queries, if limited.
    pub fn remaining(&self) -> Option<u64> {
        self.limit.map(|l| l.saturating_sub(self.used()))
    }

    /// The configured limit, if any.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }
}

impl Default for QueryBudget {
    fn default() -> Self {
        QueryBudget::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn unlimited_counts_forever() {
        let b = QueryBudget::unlimited();
        for i in 1..=100 {
            assert_eq!(b.charge().unwrap(), i);
        }
        assert_eq!(b.used(), 100);
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn limited_stops_exactly_at_limit() {
        let b = QueryBudget::limited(3);
        assert!(b.charge().is_ok());
        assert!(b.charge().is_ok());
        assert!(b.charge().is_ok());
        assert_eq!(
            b.charge(),
            Err(InterfaceError::BudgetExhausted { issued: 3 })
        );
        assert_eq!(b.used(), 3, "failed charge does not count");
        assert_eq!(b.remaining(), Some(0));
    }

    #[test]
    fn concurrent_charges_never_exceed_limit() {
        let b = Arc::new(QueryBudget::limited(1000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let mut ok = 0u64;
                for _ in 0..500 {
                    if b.charge().is_ok() {
                        ok += 1;
                    }
                }
                ok
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000);
        assert_eq!(b.used(), 1000);
    }
}
