//! Deterministic ranking functions.
//!
//! The paper's key observation (§2): "the ranking function does not select
//! tuples randomly, a tuple returned by an overflowing query thus cannot be
//! used as a random sample". We provide several deterministic rankings so
//! experiments can show that HDSampler's correctness is independent of which
//! proprietary ranking the site uses — while a naive "take the top results"
//! scraper is badly biased by every one of them.

use serde::{Deserialize, Serialize};

use hdsampler_model::{MeasureId, TupleId};

use crate::table::{splitmix64, Table};

/// Declarative specification of a site's ranking function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RankSpec {
    /// Rank by a measure, highest first (e.g. "newest listings first" when
    /// the measure is a freshness score).
    ByMeasureDesc(MeasureId),
    /// Rank by a measure, lowest first (e.g. "cheapest first").
    ByMeasureAsc(MeasureId),
    /// Pseudo-random but *fixed* order derived by hashing tuple ids with a
    /// seed — deterministic per site, uncorrelated with any attribute.
    HashOrder {
        /// Site-specific seed.
        seed: u64,
    },
    /// Insertion order (oldest first) — what a naive LIMIT-k SQL backend
    /// does.
    InsertionOrder,
}

/// Materialized ranking: one comparable sort key per tuple (*smaller key =
/// shown earlier*) plus the precomputed best-first permutation of all
/// tuples, which lets broad overflowing queries find their page by scanning
/// tuples in display order instead of ranking the whole match set.
#[derive(Debug)]
pub struct Ranking {
    sort_keys: Vec<u64>,
    /// Tuple ids ordered best-first by `(sort_key, id)`.
    rank_order: Vec<u32>,
}

impl Ranking {
    /// Precompute sort keys for every tuple of `table` under `spec`.
    pub fn build(spec: &RankSpec, table: &Table) -> Ranking {
        let n = table.len();
        let sort_keys: Vec<u64> = match spec {
            RankSpec::InsertionOrder => (0..n as u64).collect(),
            RankSpec::HashOrder { seed } => (0..n as u64)
                .map(|i| splitmix64(i ^ seed.rotate_left(17)))
                .collect(),
            RankSpec::ByMeasureAsc(m) => {
                let col = table.measure_column(m.index());
                col.iter()
                    .enumerate()
                    .map(|(i, &x)| measure_key(x, i, n))
                    .collect()
            }
            RankSpec::ByMeasureDesc(m) => {
                let col = table.measure_column(m.index());
                col.iter()
                    .enumerate()
                    .map(|(i, &x)| measure_key(-x, i, n))
                    .collect()
            }
        };
        let mut rank_order: Vec<u32> = (0..n as u32).collect();
        rank_order.sort_unstable_by_key(|&t| (sort_keys[t as usize], t));
        Ranking {
            sort_keys,
            rank_order,
        }
    }

    /// The sort key of tuple `t` (smaller = ranked higher).
    #[inline]
    pub fn sort_key(&self, t: TupleId) -> u64 {
        self.sort_keys[t.index()]
    }

    /// All tuple ids, best-ranked first (ties broken by id, matching the
    /// order both top-k paths emit).
    #[inline]
    pub fn by_rank(&self) -> &[u32] {
        &self.rank_order
    }
}

/// Map an `f64` measure to a totally ordered `u64` key with the tuple id as a
/// deterministic tiebreak (ranking functions on real sites are total orders —
/// pages are stable across reloads).
fn measure_key(x: f64, id: usize, n: usize) -> u64 {
    // Order-preserving f64→u64 transform (IEEE-754 trick): flip sign bit for
    // positives, all bits for negatives.
    let bits = x.to_bits();
    let ordered = if bits >> 63 == 0 {
        bits ^ (1 << 63)
    } else {
        !bits
    };
    // Reserve the low bits for the tiebreak. n <= u32::MAX.
    let shift = 64 - (usize::BITS - n.leading_zeros()).max(1);
    (ordered >> (64 - shift)) << (64 - shift) | (id as u64 & ((1u64 << (64 - shift)) - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use hdsampler_model::{Attribute, Measure, Schema, SchemaBuilder, Tuple};
    use std::sync::Arc;

    fn table(prices: &[f64]) -> Table {
        let schema: Arc<Schema> = SchemaBuilder::new()
            .attribute(Attribute::boolean("a"))
            .measure(Measure::new("price"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = TableBuilder::new(Arc::clone(&schema), 0);
        for &p in prices {
            b.push(&Tuple::new(&schema, vec![0], vec![p]).unwrap())
                .unwrap();
        }
        b.finish()
    }

    fn order_of(r: &Ranking, n: usize) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..n).collect();
        ids.sort_by_key(|&i| r.sort_key(TupleId(i as u32)));
        ids
    }

    #[test]
    fn insertion_order_is_identity() {
        let t = table(&[5.0, 1.0, 3.0]);
        let r = Ranking::build(&RankSpec::InsertionOrder, &t);
        assert_eq!(order_of(&r, 3), vec![0, 1, 2]);
    }

    #[test]
    fn measure_asc_ranks_cheapest_first() {
        let t = table(&[5.0, 1.0, 3.0, -2.0]);
        let r = Ranking::build(&RankSpec::ByMeasureAsc(MeasureId(0)), &t);
        assert_eq!(order_of(&r, 4), vec![3, 1, 2, 0]);
    }

    #[test]
    fn measure_desc_ranks_priciest_first() {
        let t = table(&[5.0, 1.0, 3.0, -2.0]);
        let r = Ranking::build(&RankSpec::ByMeasureDesc(MeasureId(0)), &t);
        assert_eq!(order_of(&r, 4), vec![0, 2, 1, 3]);
    }

    #[test]
    fn ties_break_deterministically() {
        let t = table(&[7.0, 7.0, 7.0]);
        let r1 = Ranking::build(&RankSpec::ByMeasureAsc(MeasureId(0)), &t);
        let r2 = Ranking::build(&RankSpec::ByMeasureAsc(MeasureId(0)), &t);
        assert_eq!(order_of(&r1, 3), order_of(&r2, 3), "stable across rebuilds");
        let keys: Vec<u64> = (0..3).map(|i| r1.sort_key(TupleId(i))).collect();
        assert!(keys[0] != keys[1] && keys[1] != keys[2], "total order");
    }

    #[test]
    fn hash_order_depends_on_seed_not_data() {
        let t = table(&[5.0, 1.0, 3.0, 9.0, 0.5]);
        let ra = Ranking::build(&RankSpec::HashOrder { seed: 1 }, &t);
        let rb = Ranking::build(&RankSpec::HashOrder { seed: 2 }, &t);
        assert_ne!(order_of(&ra, 5), order_of(&rb, 5));
        let ra2 = Ranking::build(&RankSpec::HashOrder { seed: 1 }, &t);
        assert_eq!(
            order_of(&ra, 5),
            order_of(&ra2, 5),
            "deterministic per seed"
        );
    }
}
