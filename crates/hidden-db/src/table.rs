//! Column-oriented tuple storage.
//!
//! Attribute values are stored as one dense `Vec<DomIx>` per attribute and
//! measures as one `Vec<f64>` per measure, which keeps the memory footprint
//! of a few hundred thousand tuples in the tens of megabytes and makes
//! marginal scans cache-friendly.

use std::sync::Arc;

use hdsampler_model::{DomIx, ModelError, Row, Schema, Tuple, TupleId};

/// Immutable columnar table over a shared schema.
#[derive(Debug)]
pub struct Table {
    schema: Arc<Schema>,
    /// `columns[a][t]` = domain index of attribute `a` in tuple `t`.
    columns: Vec<Vec<DomIx>>,
    /// `measure_cols[m][t]` = raw measure value.
    measure_cols: Vec<Vec<f64>>,
    /// Opaque listing keys exposed through the interface, one per tuple.
    keys: Vec<u64>,
    /// Tuple ids sorted by key, enabling `O(log n)` key resolution.
    key_order: Vec<u32>,
}

/// SplitMix64 — used to derive opaque listing keys from tuple ids so the
/// interface never leaks storage positions.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Table {
    /// The table's schema.
    #[inline]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of stored tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the table holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The full column of attribute `a` (one value per tuple).
    #[inline]
    pub fn column(&self, a: usize) -> &[DomIx] {
        &self.columns[a]
    }

    /// The full column of measure `m`.
    #[inline]
    pub fn measure_column(&self, m: usize) -> &[f64] {
        &self.measure_cols[m]
    }

    /// Value of attribute `a` in tuple `t`.
    #[inline]
    pub fn value(&self, t: TupleId, a: usize) -> DomIx {
        self.columns[a][t.index()]
    }

    /// Opaque listing key of tuple `t`.
    #[inline]
    pub fn key(&self, t: TupleId) -> u64 {
        self.keys[t.index()]
    }

    /// Materialize the externally visible [`Row`] for tuple `t`.
    pub fn row(&self, t: TupleId) -> Row {
        let values: Vec<DomIx> = self.columns.iter().map(|c| c[t.index()]).collect();
        let measures: Vec<f64> = self.measure_cols.iter().map(|c| c[t.index()]).collect();
        Row::new(self.keys[t.index()], values, measures)
    }

    /// Resolve a listing key back to its internal tuple id (oracle-side
    /// only; a real site never exposes this mapping).
    pub fn tuple_by_key(&self, key: u64) -> Option<TupleId> {
        // Keys are only needed for validation paths; linear probe is fine
        // for tests, but a sorted permutation keeps it O(log n).
        let idx = self
            .key_order
            .binary_search_by_key(&key, |&i| self.keys[i as usize])
            .ok()?;
        Some(TupleId(self.key_order[idx]))
    }

    /// All tuple ids.
    pub fn ids(&self) -> impl Iterator<Item = TupleId> {
        (0..self.len() as u32).map(TupleId)
    }

    fn build(
        schema: Arc<Schema>,
        columns: Vec<Vec<DomIx>>,
        measure_cols: Vec<Vec<f64>>,
        keys: Vec<u64>,
    ) -> Self {
        let mut key_order: Vec<u32> = (0..keys.len() as u32).collect();
        key_order.sort_unstable_by_key(|&i| keys[i as usize]);
        Table {
            schema,
            columns,
            measure_cols,
            keys,
            key_order,
        }
    }
}

/// Builder accumulating tuples row-wise before freezing into a [`Table`].
#[derive(Debug)]
pub struct TableBuilder {
    schema: Arc<Schema>,
    columns: Vec<Vec<DomIx>>,
    measure_cols: Vec<Vec<f64>>,
    key_seed: u64,
}

impl TableBuilder {
    /// Start building a table for `schema`. `key_seed` scrambles listing
    /// keys so different simulated sites expose unrelated key spaces.
    pub fn new(schema: Arc<Schema>, key_seed: u64) -> Self {
        let columns = vec![Vec::new(); schema.arity()];
        let measure_cols = vec![Vec::new(); schema.measure_arity()];
        TableBuilder {
            schema,
            columns,
            measure_cols,
            key_seed,
        }
    }

    /// Replace the listing-key seed (takes effect at [`TableBuilder::finish`]).
    pub fn set_key_seed(&mut self, seed: u64) {
        self.key_seed = seed;
    }

    /// The schema this builder targets.
    pub fn schema_ref(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Reserve capacity for `n` tuples.
    pub fn reserve(&mut self, n: usize) {
        for c in &mut self.columns {
            c.reserve(n);
        }
        for c in &mut self.measure_cols {
            c.reserve(n);
        }
    }

    /// Append a validated tuple.
    pub fn push(&mut self, tuple: &Tuple) -> Result<TupleId, ModelError> {
        if tuple.values().len() != self.schema.arity()
            || tuple.measures().len() != self.schema.measure_arity()
        {
            return Err(ModelError::ArityMismatch {
                expected: self.schema.arity(),
                got: tuple.values().len(),
            });
        }
        for (id, attr) in self.schema.iter() {
            attr.check(tuple.values()[id.index()])?;
        }
        let id = TupleId(
            self.columns
                .first()
                .map_or(self.measure_cols.first().map_or(0, |c| c.len()), |c| {
                    c.len()
                }) as u32,
        );
        for (a, c) in self.columns.iter_mut().enumerate() {
            c.push(tuple.values()[a]);
        }
        for (m, c) in self.measure_cols.iter_mut().enumerate() {
            c.push(tuple.measures()[m]);
        }
        Ok(id)
    }

    /// Number of tuples pushed so far.
    pub fn len(&self) -> usize {
        self.columns.first().map_or_else(
            || self.measure_cols.first().map_or(0, |c| c.len()),
            |c| c.len(),
        )
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freeze into an immutable [`Table`], assigning opaque listing keys.
    pub fn finish(self) -> Table {
        let n = self.len();
        let keys = (0..n as u64)
            .map(|i| splitmix64(i ^ self.key_seed))
            .collect();
        Table::build(self.schema, self.columns, self.measure_cols, keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_model::{Attribute, Measure, SchemaBuilder};

    fn schema() -> Arc<Schema> {
        SchemaBuilder::new()
            .attribute(Attribute::boolean("used"))
            .attribute(Attribute::categorical("make", ["Toyota", "Honda", "Ford"]).unwrap())
            .measure(Measure::new("price"))
            .finish()
            .unwrap()
            .into_shared()
    }

    fn build_small() -> Table {
        let s = schema();
        let mut b = TableBuilder::new(Arc::clone(&s), 42);
        b.reserve(3);
        b.push(&Tuple::new(&s, vec![0, 0], vec![10_000.0]).unwrap())
            .unwrap();
        b.push(&Tuple::new(&s, vec![1, 1], vec![8_000.0]).unwrap())
            .unwrap();
        b.push(&Tuple::new(&s, vec![1, 2], vec![15_000.0]).unwrap())
            .unwrap();
        b.finish()
    }

    #[test]
    fn columnar_layout_roundtrips() {
        let t = build_small();
        assert_eq!(t.len(), 3);
        assert_eq!(t.column(0), &[0, 1, 1]);
        assert_eq!(t.column(1), &[0, 1, 2]);
        assert_eq!(t.measure_column(0), &[10_000.0, 8_000.0, 15_000.0]);
        assert_eq!(t.value(TupleId(2), 1), 2);
    }

    #[test]
    fn rows_carry_opaque_keys() {
        let t = build_small();
        let r = t.row(TupleId(1));
        assert_eq!(r.values.as_ref(), &[1, 1]);
        assert_eq!(r.measures.as_ref(), &[8_000.0]);
        assert_eq!(r.key, t.key(TupleId(1)));
        assert_ne!(r.key, 1, "keys are scrambled, not storage offsets");
    }

    #[test]
    fn keys_are_unique_and_resolvable() {
        let t = build_small();
        let mut keys: Vec<u64> = t.ids().map(|i| t.key(i)).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 3);
        for id in t.ids() {
            assert_eq!(t.tuple_by_key(t.key(id)), Some(id));
        }
        assert_eq!(t.tuple_by_key(0xDEAD_BEEF), None);
    }

    #[test]
    fn different_seeds_give_different_keyspaces() {
        let s = schema();
        let mk = |seed| {
            let mut b = TableBuilder::new(Arc::clone(&s), seed);
            b.push(&Tuple::new(&s, vec![0, 0], vec![1.0]).unwrap())
                .unwrap();
            b.finish()
        };
        assert_ne!(mk(1).key(TupleId(0)), mk(2).key(TupleId(0)));
    }

    #[test]
    fn push_validates() {
        let s = schema();
        let mut b = TableBuilder::new(Arc::clone(&s), 0);
        let bad = Tuple::new_unchecked(vec![0, 9], vec![1.0]);
        assert!(b.push(&bad).is_err());
        let bad_arity = Tuple::new_unchecked(vec![0], vec![1.0]);
        assert!(b.push(&bad_arity).is_err());
        assert!(b.is_empty());
    }
}
