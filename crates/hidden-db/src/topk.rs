//! Top-k selection under a precomputed ranking.

use crate::ranking::Ranking;
use hdsampler_model::TupleId;

/// Select the `k` best-ranked ids from `matching` and return them in rank
/// order, together with the overflow flag.
///
/// When `matching.len() <= k` this is just a rank-sort of the whole result
/// set (result pages present rows rank-ordered even when they all fit).
pub fn top_k(matching: &[u32], ranking: &Ranking, k: usize) -> (Vec<TupleId>, bool) {
    let overflow = matching.len() > k;
    let mut ids: Vec<u32> = matching.to_vec();
    if overflow && k > 0 {
        // Partial selection: k best by sort key, then order just those k.
        ids.select_nth_unstable_by_key(k - 1, |&t| ranking.sort_key(TupleId(t)));
        ids.truncate(k);
    }
    ids.sort_unstable_by_key(|&t| ranking.sort_key(TupleId(t)));
    if overflow {
        ids.truncate(k);
    }
    (ids.into_iter().map(TupleId).collect(), overflow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::RankSpec;
    use crate::table::TableBuilder;
    use hdsampler_model::{Attribute, Measure, MeasureId, Schema, SchemaBuilder, Tuple};
    use std::sync::Arc;

    fn ranking(prices: &[f64]) -> Ranking {
        let schema: Arc<Schema> = SchemaBuilder::new()
            .attribute(Attribute::boolean("a"))
            .measure(Measure::new("p"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = TableBuilder::new(Arc::clone(&schema), 0);
        for &p in prices {
            b.push(&Tuple::new(&schema, vec![0], vec![p]).unwrap()).unwrap();
        }
        Ranking::build(&RankSpec::ByMeasureAsc(MeasureId(0)), &b.finish())
    }

    #[test]
    fn under_k_returns_all_rank_ordered() {
        let r = ranking(&[30.0, 10.0, 20.0]);
        let (ids, overflow) = top_k(&[0, 1, 2], &r, 10);
        assert!(!overflow);
        assert_eq!(ids, vec![TupleId(1), TupleId(2), TupleId(0)]);
    }

    #[test]
    fn over_k_truncates_to_best() {
        let r = ranking(&[30.0, 10.0, 20.0, 5.0, 40.0]);
        let (ids, overflow) = top_k(&[0, 1, 2, 3, 4], &r, 2);
        assert!(overflow);
        assert_eq!(ids, vec![TupleId(3), TupleId(1)]);
    }

    #[test]
    fn exactly_k_is_not_overflow() {
        let r = ranking(&[30.0, 10.0]);
        let (ids, overflow) = top_k(&[0, 1], &r, 2);
        assert!(!overflow);
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn empty_matching() {
        let r = ranking(&[1.0]);
        let (ids, overflow) = top_k(&[], &r, 5);
        assert!(ids.is_empty());
        assert!(!overflow);
    }

    #[test]
    fn subset_of_matching_only() {
        let r = ranking(&[30.0, 10.0, 20.0, 5.0]);
        // Only tuples 0 and 2 match the (hypothetical) query.
        let (ids, overflow) = top_k(&[0, 2], &r, 1);
        assert!(overflow);
        assert_eq!(ids, vec![TupleId(2)], "best among the matching set only");
    }
}
