//! Top-k selection under a precomputed ranking.
//!
//! Two paths produce identical pages:
//!
//! * [`top_k`] — the materialized path: rank-sort a full id list (kept for
//!   validation and for callers that already hold the list);
//! * [`top_k_streamed`] — the bounded path: a k-bounded tournament buffer
//!   consumes a streamed intersection, keeping at most `2k` candidates
//!   alive and counting the true cardinality as a side effect. Memory is
//!   `O(k)` regardless of how many tuples match.
//!
//! Both order by `(sort_key, tuple id)`, a total order even if a ranking
//! produced colliding keys, so the two paths agree row-for-row.

use crate::ranking::Ranking;
use hdsampler_model::TupleId;

/// Select the `k` best-ranked ids from `matching` and return them in rank
/// order, together with the overflow flag.
///
/// When `matching.len() <= k` this is just a rank-sort of the whole result
/// set (result pages present rows rank-ordered even when they all fit).
pub fn top_k(matching: &[u32], ranking: &Ranking, k: usize) -> (Vec<TupleId>, bool) {
    let overflow = matching.len() > k;
    let mut ids: Vec<u32> = matching.to_vec();
    if overflow && k > 0 {
        // Partial selection: k best by sort key, then order just those k.
        ids.select_nth_unstable_by_key(k - 1, |&t| (ranking.sort_key(TupleId(t)), t));
        ids.truncate(k);
    }
    ids.sort_unstable_by_key(|&t| (ranking.sort_key(TupleId(t)), t));
    if overflow {
        ids.truncate(k);
    }
    (ids.into_iter().map(TupleId).collect(), overflow)
}

/// Streamed top-k: consume `matching` (ascending ids) through a k-bounded
/// tournament buffer, returning the `k` best-ranked ids in rank order, the
/// overflow flag, and the exact number of ids the stream produced.
///
/// The tournament keeps a buffer of at most `2k` candidates and a running
/// *cut*: the worst key that could still make the page. Entries at or above
/// the cut are rejected with a single comparison; when the buffer fills, a
/// partial select keeps the best `k` and tightens the cut. Each round
/// admits `k` fresh candidates, so at most `O(k · log(n/k))` entries are
/// ever buffered — the common case per streamed id is one key lookup and
/// one branch, with no per-id allocation or heap sifting. The exact count
/// comes for free because the stream is consumed to exhaustion; callers
/// that only need the classification should bound the stream with
/// [`PostingIndex::count_at_most`](crate::index::PostingIndex::count_at_most)
/// instead.
pub fn top_k_streamed(
    matching: impl Iterator<Item = u32>,
    ranking: &Ranking,
    k: usize,
) -> (Vec<TupleId>, bool, u64) {
    if k == 0 {
        // Degenerate page size: count-only (mirrors `top_k`'s k = 0
        // behavior — any match at all is an overflow).
        let total = matching.count() as u64;
        return (Vec::new(), total > 0, total);
    }
    let mut total: u64 = 0;
    let cap = 2 * k.max(1);
    let mut buf: Vec<(u64, u32)> = Vec::with_capacity(cap);
    let mut cut = (u64::MAX, u32::MAX);
    for t in matching {
        total += 1;
        let entry = (ranking.sort_key(TupleId(t)), t);
        if entry < cut {
            buf.push(entry);
            if buf.len() == cap {
                // Keep the best k, discard the rest, tighten the cut.
                let (_, kth, _) = buf.select_nth_unstable(k - 1);
                cut = *kth;
                buf.truncate(k);
            }
        }
    }
    let overflow = total > k as u64;
    buf.sort_unstable();
    buf.truncate(k);
    (
        buf.into_iter().map(|(_, t)| TupleId(t)).collect(),
        overflow,
        total,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::RankSpec;
    use crate::table::TableBuilder;
    use hdsampler_model::{Attribute, Measure, MeasureId, Schema, SchemaBuilder, Tuple};
    use std::sync::Arc;

    fn ranking(prices: &[f64]) -> Ranking {
        let schema: Arc<Schema> = SchemaBuilder::new()
            .attribute(Attribute::boolean("a"))
            .measure(Measure::new("p"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = TableBuilder::new(Arc::clone(&schema), 0);
        for &p in prices {
            b.push(&Tuple::new(&schema, vec![0], vec![p]).unwrap())
                .unwrap();
        }
        Ranking::build(&RankSpec::ByMeasureAsc(MeasureId(0)), &b.finish())
    }

    #[test]
    fn under_k_returns_all_rank_ordered() {
        let r = ranking(&[30.0, 10.0, 20.0]);
        let (ids, overflow) = top_k(&[0, 1, 2], &r, 10);
        assert!(!overflow);
        assert_eq!(ids, vec![TupleId(1), TupleId(2), TupleId(0)]);
    }

    #[test]
    fn over_k_truncates_to_best() {
        let r = ranking(&[30.0, 10.0, 20.0, 5.0, 40.0]);
        let (ids, overflow) = top_k(&[0, 1, 2, 3, 4], &r, 2);
        assert!(overflow);
        assert_eq!(ids, vec![TupleId(3), TupleId(1)]);
    }

    #[test]
    fn exactly_k_is_not_overflow() {
        let r = ranking(&[30.0, 10.0]);
        let (ids, overflow) = top_k(&[0, 1], &r, 2);
        assert!(!overflow);
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn empty_matching() {
        let r = ranking(&[1.0]);
        let (ids, overflow) = top_k(&[], &r, 5);
        assert!(ids.is_empty());
        assert!(!overflow);
    }

    #[test]
    fn subset_of_matching_only() {
        let r = ranking(&[30.0, 10.0, 20.0, 5.0]);
        // Only tuples 0 and 2 match the (hypothetical) query.
        let (ids, overflow) = top_k(&[0, 2], &r, 1);
        assert!(overflow);
        assert_eq!(ids, vec![TupleId(2)], "best among the matching set only");
    }

    #[test]
    fn streamed_agrees_with_materialized() {
        let prices: Vec<f64> = (0..200).map(|i| ((i * 73) % 101) as f64).collect();
        let r = ranking(&prices);
        let matching: Vec<u32> = (0..200).filter(|i| i % 3 != 1).collect();
        for k in [1usize, 2, 7, 50, 132, 133, 200] {
            let (a, overflow_a) = top_k(&matching, &r, k);
            let (b, overflow_b, total) = top_k_streamed(matching.iter().copied(), &r, k);
            assert_eq!(a, b, "k={k}");
            assert_eq!(overflow_a, overflow_b, "k={k}");
            assert_eq!(total, matching.len() as u64);
        }
    }

    #[test]
    fn streamed_k_zero_counts_without_panicking() {
        let r = ranking(&[1.0, 2.0, 3.0]);
        let (ids, overflow, total) = top_k_streamed([0u32, 1, 2].into_iter(), &r, 0);
        assert!(ids.is_empty());
        assert!(overflow);
        assert_eq!(total, 3);
        let (ids, overflow, total) = top_k_streamed(std::iter::empty(), &r, 0);
        assert!(ids.is_empty());
        assert!(!overflow);
        assert_eq!(total, 0);
    }

    #[test]
    fn streamed_empty_stream() {
        let r = ranking(&[1.0]);
        let (ids, overflow, total) = top_k_streamed(std::iter::empty(), &r, 4);
        assert!(ids.is_empty());
        assert!(!overflow);
        assert_eq!(total, 0);
    }

    #[test]
    fn streamed_ties_break_by_id() {
        let r = ranking(&[7.0, 7.0, 7.0, 7.0]);
        let (ids, overflow, _) = top_k_streamed([0u32, 1, 2, 3].into_iter(), &r, 2);
        assert!(overflow);
        let (ids_mat, _) = top_k(&[0, 1, 2, 3], &r, 2);
        assert_eq!(ids, ids_mat, "identical pages under key ties");
    }
}
