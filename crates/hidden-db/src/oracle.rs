//! Ground-truth oracle over a locally simulated hidden database.
//!
//! The paper validates HDSampler in two ways: against the (slow but
//! provably uniform) BRUTE-FORCE-SAMPLER when the data is remote (§3.4),
//! and against the *entire dataset* when the data source is the locally
//! simulated database of the §4 backup plan. `Oracle` is that second path:
//! exact marginals, exact aggregates, and per-tuple access for skew
//! measurements. Samplers never see it.

use std::collections::HashMap;

use hdsampler_model::{AttrId, ConjunctiveQuery, DomIx, MeasureId, Row, TupleId};

use crate::index::PostingIndex;
use crate::table::Table;

/// Read-only ground-truth view of a [`Table`].
#[derive(Debug, Clone, Copy)]
pub struct Oracle<'a> {
    table: &'a Table,
    index: &'a PostingIndex,
}

impl<'a> Oracle<'a> {
    pub(crate) fn new(table: &'a Table, index: &'a PostingIndex) -> Self {
        Oracle { table, index }
    }

    /// Exact number of tuples.
    pub fn size(&self) -> usize {
        self.table.len()
    }

    /// Exact marginal distribution of attribute `a`: for each domain value,
    /// the fraction of tuples holding it. Sums to 1 for non-empty tables.
    pub fn marginal(&self, a: AttrId) -> Vec<f64> {
        let n = self.table.len().max(1) as f64;
        let dom = self.table.schema().domain_size(a);
        (0..dom as DomIx)
            .map(|v| self.index.frequency(a.index(), v) as f64 / n)
            .collect()
    }

    /// Exact marginal counts of attribute `a`.
    pub fn marginal_counts(&self, a: AttrId) -> Vec<u64> {
        let dom = self.table.schema().domain_size(a);
        (0..dom as DomIx)
            .map(|v| self.index.frequency(a.index(), v) as u64)
            .collect()
    }

    /// Exact COUNT of tuples matching `q`.
    pub fn count(&self, q: &ConjunctiveQuery) -> u64 {
        self.index.count(q) as u64
    }

    /// Exact SUM and COUNT of measure `m` over tuples matching `q`, folded
    /// in a single streamed pass — no id list is ever materialized, so
    /// validating aggregates over huge scopes stays allocation-free.
    pub fn sum_count(&self, q: &ConjunctiveQuery, m: MeasureId) -> (f64, u64) {
        let col = self.table.measure_column(m.index());
        self.index
            .intersection(q)
            .fold((0.0, 0), |(sum, count), t| {
                (sum + col[t as usize], count + 1)
            })
    }

    /// Exact SUM of measure `m` over tuples matching `q`.
    pub fn sum(&self, q: &ConjunctiveQuery, m: MeasureId) -> f64 {
        self.sum_count(q, m).0
    }

    /// Exact AVG of measure `m` over tuples matching `q` (`None` on empty
    /// selections).
    pub fn avg(&self, q: &ConjunctiveQuery, m: MeasureId) -> Option<f64> {
        match self.sum_count(q, m) {
            (_, 0) => None,
            (sum, count) => Some(sum / count as f64),
        }
    }

    /// Exact proportion of tuples matching `q`.
    pub fn proportion(&self, q: &ConjunctiveQuery) -> f64 {
        if self.table.is_empty() {
            0.0
        } else {
            self.count(q) as f64 / self.table.len() as f64
        }
    }

    /// Resolve a listing key (as seen by a sampler) back to the internal
    /// tuple id — validation only.
    pub fn tuple_by_key(&self, key: u64) -> Option<TupleId> {
        self.table.tuple_by_key(key)
    }

    /// Materialize the row of an internal tuple id.
    pub fn row(&self, t: TupleId) -> Row {
        self.table.row(t)
    }

    /// Empirical per-tuple frequency map from a list of sampled listing
    /// keys; the basis of tuple-level skew metrics. Keys that resolve to no
    /// tuple are counted under `None` (should never happen for honest
    /// interfaces).
    pub fn frequency_by_tuple(&self, sampled_keys: &[u64]) -> HashMap<Option<TupleId>, u64> {
        let mut freq: HashMap<Option<TupleId>, u64> = HashMap::new();
        for &k in sampled_keys {
            *freq.entry(self.tuple_by_key(k)).or_insert(0) += 1;
        }
        freq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::HiddenDb;
    use hdsampler_model::{Attribute, Measure, SchemaBuilder, Tuple};
    use std::sync::Arc;

    fn db() -> HiddenDb {
        let schema = SchemaBuilder::new()
            .attribute(Attribute::categorical("make", ["Toyota", "Honda", "Ford"]).unwrap())
            .attribute(Attribute::boolean("used"))
            .measure(Measure::new("price"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(Arc::clone(&schema));
        for (mk, used, price) in [(0u16, 1u16, 10.0), (0, 0, 20.0), (1, 1, 30.0), (2, 1, 40.0)] {
            b.push(&Tuple::new(&schema, vec![mk, used], vec![price]).unwrap())
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn marginals_are_exact() {
        let db = db();
        let o = db.oracle();
        assert_eq!(o.size(), 4);
        assert_eq!(o.marginal(AttrId(0)), vec![0.5, 0.25, 0.25]);
        assert_eq!(o.marginal_counts(AttrId(1)), vec![1, 3]);
        let m = o.marginal(AttrId(0));
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn aggregates_are_exact() {
        let db = db();
        let o = db.oracle();
        let toyota = ConjunctiveQuery::from_pairs([(AttrId(0), 0)]).unwrap();
        assert_eq!(o.count(&toyota), 2);
        assert_eq!(o.sum(&toyota, MeasureId(0)), 30.0);
        assert_eq!(o.avg(&toyota, MeasureId(0)), Some(15.0));
        assert_eq!(o.proportion(&toyota), 0.5);

        let nothing = ConjunctiveQuery::from_pairs([(AttrId(0), 1), (AttrId(1), 0)]).unwrap();
        assert_eq!(o.avg(&nothing, MeasureId(0)), None);
    }

    #[test]
    fn key_resolution_roundtrip() {
        let db = db();
        let o = db.oracle();
        for t in 0..4u32 {
            let row = o.row(TupleId(t));
            assert_eq!(o.tuple_by_key(row.key), Some(TupleId(t)));
        }
        assert_eq!(o.tuple_by_key(0x1234_5678), None);
    }

    #[test]
    fn frequency_map_counts_keys() {
        let db = db();
        let o = db.oracle();
        let k0 = o.row(TupleId(0)).key;
        let k1 = o.row(TupleId(1)).key;
        let freq = o.frequency_by_tuple(&[k0, k0, k1]);
        assert_eq!(freq[&Some(TupleId(0))], 2);
        assert_eq!(freq[&Some(TupleId(1))], 1);
    }
}
