//! Per-(attribute, value) posting lists and conjunctive intersection.
//!
//! A conjunctive equality query is evaluated by intersecting the sorted
//! posting lists of its predicates, smallest first, with galloping (doubling)
//! search — the classic approach for selective conjunctions. The evaluator
//! also offers a count-only path so that count probes do not materialize id
//! lists beyond the intersection itself.

use hdsampler_model::{ConjunctiveQuery, DomIx, TupleId};

use crate::table::Table;

/// Inverted index: for every attribute, for every domain value, the sorted
/// list of tuple ids holding that value.
#[derive(Debug)]
pub struct PostingIndex {
    /// `lists[a][v]` = sorted tuple ids with `attr a = v`.
    lists: Vec<Vec<Vec<u32>>>,
    n_tuples: usize,
}

impl PostingIndex {
    /// Build the index with one pass over each column.
    pub fn build(table: &Table) -> Self {
        let schema = table.schema();
        let mut lists: Vec<Vec<Vec<u32>>> = schema
            .attributes()
            .iter()
            .map(|a| vec![Vec::new(); a.domain_size()])
            .collect();
        for (a, per_attr) in lists.iter_mut().enumerate() {
            // First pass: counts, to size allocations exactly.
            let col = table.column(a);
            let mut counts = vec![0usize; per_attr.len()];
            for &v in col {
                counts[v as usize] += 1;
            }
            for (v, list) in per_attr.iter_mut().enumerate() {
                list.reserve_exact(counts[v]);
            }
            for (t, &v) in col.iter().enumerate() {
                per_attr[v as usize].push(t as u32);
            }
        }
        PostingIndex { lists, n_tuples: table.len() }
    }

    /// The posting list for `attr = value`.
    #[inline]
    pub fn posting(&self, attr: usize, value: DomIx) -> &[u32] {
        &self.lists[attr][value as usize]
    }

    /// Frequency of `attr = value` (exact marginal count).
    #[inline]
    pub fn frequency(&self, attr: usize, value: DomIx) -> usize {
        self.lists[attr][value as usize].len()
    }

    /// Number of tuples in the indexed table.
    #[inline]
    pub fn n_tuples(&self) -> usize {
        self.n_tuples
    }

    /// Evaluate a query to its full (sorted) matching id list.
    ///
    /// The empty query matches every tuple.
    pub fn evaluate(&self, query: &ConjunctiveQuery) -> Vec<u32> {
        let preds = query.predicates();
        match preds.len() {
            0 => (0..self.n_tuples as u32).collect(),
            1 => self.posting(preds[0].attr.index(), preds[0].value).to_vec(),
            _ => {
                // Intersect smallest-first to bound intermediate sizes.
                let mut ordered: Vec<&[u32]> = preds
                    .iter()
                    .map(|p| self.posting(p.attr.index(), p.value))
                    .collect();
                ordered.sort_unstable_by_key(|l| l.len());
                if ordered[0].is_empty() {
                    return Vec::new();
                }
                let mut acc: Vec<u32> = ordered[0].to_vec();
                for list in &ordered[1..] {
                    intersect_into(&mut acc, list);
                    if acc.is_empty() {
                        break;
                    }
                }
                acc
            }
        }
    }

    /// Count-only evaluation (no output list survives the call).
    pub fn count(&self, query: &ConjunctiveQuery) -> usize {
        match query.predicates().len() {
            0 => self.n_tuples,
            1 => {
                let p = &query.predicates()[0];
                self.frequency(p.attr.index(), p.value)
            }
            _ => self.evaluate(query).len(),
        }
    }

    /// Ids of matching tuples as [`TupleId`]s.
    pub fn evaluate_ids(&self, query: &ConjunctiveQuery) -> Vec<TupleId> {
        self.evaluate(query).into_iter().map(TupleId).collect()
    }
}

/// Galloping (exponential) search: smallest index `i ≥ from` with
/// `list[i] >= needle`, or `list.len()`.
#[inline]
fn gallop(list: &[u32], from: usize, needle: u32) -> usize {
    let mut lo = from;
    let mut step = 1;
    // Find an upper bound by doubling.
    while lo + step < list.len() && list[lo + step] < needle {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step + 1).min(list.len());
    // Binary search inside [lo, hi).
    match list[lo..hi].binary_search(&needle) {
        Ok(i) => lo + i,
        Err(i) => lo + i,
    }
}

/// Intersect `acc` (small) with `other` (sorted), in place, galloping through
/// `other`.
fn intersect_into(acc: &mut Vec<u32>, other: &[u32]) {
    let mut write = 0;
    let mut pos = 0;
    for read in 0..acc.len() {
        let needle = acc[read];
        pos = gallop(other, pos, needle);
        if pos >= other.len() {
            break;
        }
        if other[pos] == needle {
            acc[write] = needle;
            write += 1;
            pos += 1;
        }
    }
    acc.truncate(write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use hdsampler_model::{Attribute, AttrId, Schema, SchemaBuilder, Tuple};
    use std::sync::Arc;

    fn table_from(values: &[[DomIx; 3]]) -> Table {
        let schema: Arc<Schema> = SchemaBuilder::new()
            .attribute(Attribute::boolean("a"))
            .attribute(Attribute::categorical("b", ["x", "y", "z"]).unwrap())
            .attribute(Attribute::boolean("c"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = TableBuilder::new(Arc::clone(&schema), 7);
        for row in values {
            b.push(&Tuple::new(&schema, row.to_vec(), vec![]).unwrap()).unwrap();
        }
        b.finish()
    }

    #[test]
    fn empty_query_matches_all() {
        let t = table_from(&[[0, 0, 0], [1, 1, 1], [1, 2, 0]]);
        let idx = PostingIndex::build(&t);
        assert_eq!(idx.evaluate(&ConjunctiveQuery::empty()), vec![0, 1, 2]);
        assert_eq!(idx.count(&ConjunctiveQuery::empty()), 3);
    }

    #[test]
    fn single_predicate_uses_posting_list() {
        let t = table_from(&[[0, 0, 0], [1, 1, 1], [1, 2, 0], [1, 1, 0]]);
        let idx = PostingIndex::build(&t);
        let q = ConjunctiveQuery::from_pairs([(AttrId(1), 1)]).unwrap();
        assert_eq!(idx.evaluate(&q), vec![1, 3]);
        assert_eq!(idx.count(&q), 2);
        assert_eq!(idx.frequency(1, 1), 2);
    }

    #[test]
    fn conjunction_intersects() {
        let t = table_from(&[[0, 0, 0], [1, 1, 1], [1, 2, 0], [1, 1, 0], [1, 1, 0]]);
        let idx = PostingIndex::build(&t);
        let q = ConjunctiveQuery::from_pairs([(AttrId(0), 1), (AttrId(1), 1), (AttrId(2), 0)])
            .unwrap();
        assert_eq!(idx.evaluate(&q), vec![3, 4]);
    }

    #[test]
    fn disjoint_predicates_yield_empty() {
        let t = table_from(&[[0, 0, 0], [1, 1, 1]]);
        let idx = PostingIndex::build(&t);
        let q = ConjunctiveQuery::from_pairs([(AttrId(0), 0), (AttrId(1), 1)]).unwrap();
        assert!(idx.evaluate(&q).is_empty());
        assert_eq!(idx.count(&q), 0);
    }

    #[test]
    fn intersection_matches_naive_scan() {
        // Deterministic pseudo-random table, then compare index evaluation
        // against a naive full scan for a battery of queries.
        let mut rows = Vec::new();
        let mut state = 0xABCDu64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            rows.push([
                (next() % 2) as DomIx,
                (next() % 3) as DomIx,
                (next() % 2) as DomIx,
            ]);
        }
        let t = table_from(&rows);
        let idx = PostingIndex::build(&t);
        for a in 0..2u16 {
            for b in 0..3u16 {
                for c in 0..2u16 {
                    let q = ConjunctiveQuery::from_pairs([
                        (AttrId(0), a),
                        (AttrId(1), b),
                        (AttrId(2), c),
                    ])
                    .unwrap();
                    let naive: Vec<u32> = rows
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| q.matches(&r[..]))
                        .map(|(i, _)| i as u32)
                        .collect();
                    assert_eq!(idx.evaluate(&q), naive);
                    assert_eq!(idx.count(&q), naive.len());
                }
            }
        }
    }

    #[test]
    fn gallop_finds_lower_bound() {
        let list = [2u32, 4, 6, 8, 10, 50, 51, 52, 100];
        assert_eq!(gallop(&list, 0, 1), 0);
        assert_eq!(gallop(&list, 0, 2), 0);
        assert_eq!(gallop(&list, 0, 7), 3);
        assert_eq!(gallop(&list, 2, 51), 6);
        assert_eq!(gallop(&list, 0, 101), list.len());
    }
}
