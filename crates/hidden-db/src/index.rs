//! Per-(attribute, value) posting lists and conjunctive intersection.
//!
//! A conjunctive equality query is evaluated by intersecting the sorted
//! posting lists of its predicates, smallest first. The index offers three
//! access paths, all allocation-free until a caller materializes:
//!
//! * [`PostingIndex::intersection`] — a streaming iterator over matching
//!   ids, driven by the smallest posting list, with the remaining
//!   predicates probed either through a **precomputed dense bitmap**
//!   (`O(1)` per candidate, built at index time for values whose posting
//!   list exceeds a density threshold) or by **galloping** (doubling)
//!   search through the sorted list;
//! * [`PostingIndex::count_at_most`] — bounded counting that early-exits
//!   the moment `limit` matches are seen, which is all a top-k interface
//!   needs to classify a query as overflow/valid/empty;
//! * [`PostingIndex::count`] — exact counting without materializing ids:
//!   `O(1)` for at most one predicate, a word-AND popcount when every
//!   predicate is dense, and a streamed count otherwise.

use hdsampler_model::{ConjunctiveQuery, DomIx, TupleId};

use crate::table::Table;

/// A posting list denser than one in [`DENSITY_DIVISOR`] tuples gets a
/// precomputed bitmap; probing it then costs one shift-and-mask instead of
/// a galloping search.
const DENSITY_DIVISOR: usize = 16;

/// Tables smaller than this skip bitmap construction entirely — galloping
/// through short lists is already cheap and the fixed cost of bitmaps would
/// dominate.
const MIN_TUPLES_FOR_BITMAPS: usize = 1024;

/// Inverted index: for every attribute, for every domain value, the sorted
/// list of tuple ids holding that value.
#[derive(Debug)]
pub struct PostingIndex {
    /// `lists[a][v]` = sorted tuple ids with `attr a = v`.
    lists: Vec<Vec<Vec<u32>>>,
    /// `bitmaps[a][v]` = one bit per tuple for dense (attr, value) pairs,
    /// empty for sparse ones. Word `i` holds tuples `64 i .. 64 i + 63`,
    /// least-significant bit first.
    bitmaps: Vec<Vec<Vec<u64>>>,
    n_tuples: usize,
}

impl PostingIndex {
    /// Build the index with one pass over each column.
    pub fn build(table: &Table) -> Self {
        let schema = table.schema();
        let n = table.len();
        let mut lists: Vec<Vec<Vec<u32>>> = schema
            .attributes()
            .iter()
            .map(|a| vec![Vec::new(); a.domain_size()])
            .collect();
        for (a, per_attr) in lists.iter_mut().enumerate() {
            // First pass: counts, to size allocations exactly.
            let col = table.column(a);
            let mut counts = vec![0usize; per_attr.len()];
            for &v in col {
                counts[v as usize] += 1;
            }
            for (v, list) in per_attr.iter_mut().enumerate() {
                list.reserve_exact(counts[v]);
            }
            for (t, &v) in col.iter().enumerate() {
                per_attr[v as usize].push(t as u32);
            }
        }
        // Second pass: bitmaps for dense values only.
        let dense_floor = (n / DENSITY_DIVISOR).max(1);
        let words = n.div_ceil(64);
        let bitmaps: Vec<Vec<Vec<u64>>> = lists
            .iter()
            .map(|per_attr| {
                per_attr
                    .iter()
                    .map(|list| {
                        if n < MIN_TUPLES_FOR_BITMAPS || list.len() < dense_floor {
                            return Vec::new();
                        }
                        let mut bits = vec![0u64; words];
                        for &t in list {
                            bits[(t >> 6) as usize] |= 1u64 << (t & 63);
                        }
                        bits
                    })
                    .collect()
            })
            .collect();
        PostingIndex {
            lists,
            bitmaps,
            n_tuples: n,
        }
    }

    /// The posting list for `attr = value`.
    #[inline]
    pub fn posting(&self, attr: usize, value: DomIx) -> &[u32] {
        &self.lists[attr][value as usize]
    }

    /// Frequency of `attr = value` (exact marginal count).
    #[inline]
    pub fn frequency(&self, attr: usize, value: DomIx) -> usize {
        self.lists[attr][value as usize].len()
    }

    /// Number of tuples in the indexed table.
    #[inline]
    pub fn n_tuples(&self) -> usize {
        self.n_tuples
    }

    /// The dense bitmap for `attr = value`, when one was built.
    #[inline]
    fn bitmap(&self, attr: usize, value: DomIx) -> Option<&[u64]> {
        let bits = &self.bitmaps[attr][value as usize];
        if bits.is_empty() {
            None
        } else {
            Some(bits)
        }
    }

    /// A streaming iterator over the ids matching `query`, ascending.
    ///
    /// Nothing is materialized. Two adaptive plans:
    ///
    /// * **dense** — every predicate is bitmap-backed and the smallest
    ///   posting list is longer than the word count: AND the bitmaps word
    ///   by word and emit set bits (`n/64` word operations regardless of
    ///   how many predicates conjoin);
    /// * **probe** — the smallest posting list drives and every other
    ///   predicate is probed per candidate (bitmap test or gallop).
    ///
    /// The empty query streams every id.
    pub fn intersection(&self, query: &ConjunctiveQuery) -> IntersectionIter<'_> {
        let preds = query.predicates();
        if preds.is_empty() {
            return IntersectionIter {
                kind: IterKind::Range(0..self.n_tuples as u32),
            };
        }
        let mut ordered: Vec<(usize, DomIx)> =
            preds.iter().map(|p| (p.attr.index(), p.value)).collect();
        ordered.sort_unstable_by_key(|&(a, v)| self.frequency(a, v));
        let (lead_attr, lead_value) = ordered[0];
        let lead = self.posting(lead_attr, lead_value);
        if lead.is_empty() {
            return IntersectionIter {
                kind: IterKind::Empty,
            };
        }
        // Dense plan: word-AND streaming when every predicate has a bitmap
        // and the lead list is long enough that per-candidate probing would
        // cost more than scanning the words.
        if ordered.len() >= 2 {
            let words = self.n_tuples.div_ceil(64);
            if lead.len() > words {
                if let Some(maps) = ordered
                    .iter()
                    .map(|&(a, v)| self.bitmap(a, v))
                    .collect::<Option<Vec<&[u64]>>>()
                {
                    return IntersectionIter {
                        kind: IterKind::Dense {
                            maps,
                            word_ix: 0,
                            current: 0,
                            base: 0,
                        },
                    };
                }
            }
        }
        let probes: Vec<Probe<'_>> = ordered[1..]
            .iter()
            .map(|&(a, v)| match self.bitmap(a, v) {
                Some(bits) => Probe::Bits(bits),
                None => Probe::List {
                    list: self.posting(a, v),
                    pos: 0,
                },
            })
            .collect();
        IntersectionIter {
            kind: IterKind::Stream {
                lead,
                pos: 0,
                probes,
            },
        }
    }

    /// Evaluate a query to its full (sorted) matching id list.
    ///
    /// The empty query matches every tuple. Hot paths should prefer
    /// [`PostingIndex::intersection`] / [`PostingIndex::count_at_most`];
    /// this entry point is for callers that genuinely need the whole list.
    pub fn evaluate(&self, query: &ConjunctiveQuery) -> Vec<u32> {
        self.intersection(query).collect()
    }

    /// Count matches, stopping as soon as `limit` of them have been seen.
    ///
    /// Returns `min(true_count, limit)`: exactly what a top-k classifier
    /// needs (`count_at_most(q, k + 1) > k` ⇔ overflow) at a fraction of a
    /// full count's cost near the root of the query tree.
    pub fn count_at_most(&self, query: &ConjunctiveQuery, limit: usize) -> usize {
        let preds = query.predicates();
        match preds.len() {
            0 => self.n_tuples.min(limit),
            1 => self
                .frequency(preds[0].attr.index(), preds[0].value)
                .min(limit),
            _ => {
                let mut seen = 0;
                let mut stream = self.intersection(query);
                while seen < limit && stream.next().is_some() {
                    seen += 1;
                }
                seen
            }
        }
    }

    /// Count-only evaluation: no id list is ever materialized.
    pub fn count(&self, query: &ConjunctiveQuery) -> usize {
        let preds = query.predicates();
        match preds.len() {
            0 => self.n_tuples,
            1 => self.frequency(preds[0].attr.index(), preds[0].value),
            _ => {
                // All-dense conjunctions count by word-AND popcount.
                if let Some(total) = self.count_dense(query) {
                    return total;
                }
                self.intersection(query).count()
            }
        }
    }

    /// Popcount of the word-AND of all predicate bitmaps, when every
    /// predicate has one.
    fn count_dense(&self, query: &ConjunctiveQuery) -> Option<usize> {
        let mut maps = Vec::with_capacity(query.len());
        for p in query.predicates() {
            maps.push(self.bitmap(p.attr.index(), p.value)?);
        }
        let (first, rest) = maps.split_first().expect("multi-predicate query");
        let mut total = 0usize;
        for (w, &word) in first.iter().enumerate() {
            let mut acc = word;
            for bits in rest {
                acc &= bits[w];
                if acc == 0 {
                    break;
                }
            }
            total += acc.count_ones() as usize;
        }
        Some(total)
    }

    /// Ids of matching tuples as [`TupleId`]s.
    pub fn evaluate_ids(&self, query: &ConjunctiveQuery) -> Vec<TupleId> {
        self.intersection(query).map(TupleId).collect()
    }
}

/// One non-lead predicate's membership test inside a streamed intersection.
#[derive(Debug)]
enum Probe<'a> {
    /// Dense value: constant-time bit test.
    Bits(&'a [u64]),
    /// Sparse value: gallop through the sorted list with a resumable
    /// cursor (candidates arrive ascending, so each list is traversed at
    /// most once per stream).
    List { list: &'a [u32], pos: usize },
}

impl Probe<'_> {
    #[inline]
    fn contains(&mut self, t: u32) -> bool {
        match self {
            Probe::Bits(bits) => bits[(t >> 6) as usize] & (1u64 << (t & 63)) != 0,
            Probe::List { list, pos } => {
                *pos = gallop(list, *pos, t);
                *pos < list.len() && list[*pos] == t
            }
        }
    }
}

#[derive(Debug)]
enum IterKind<'a> {
    /// Empty query: every id.
    Range(std::ops::Range<u32>),
    /// At least one predicate: lead list + probes.
    Stream {
        lead: &'a [u32],
        pos: usize,
        probes: Vec<Probe<'a>>,
    },
    /// All predicates dense: word-AND the bitmaps and emit set bits.
    Dense {
        maps: Vec<&'a [u64]>,
        /// Next word to AND.
        word_ix: usize,
        /// Remaining set bits of the last ANDed word.
        current: u64,
        /// Tuple id of bit 0 of `current`.
        base: u32,
    },
    /// Provably empty result.
    Empty,
}

/// Streaming conjunctive intersection (see [`PostingIndex::intersection`]).
#[derive(Debug)]
pub struct IntersectionIter<'a> {
    kind: IterKind<'a>,
}

impl Iterator for IntersectionIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match &mut self.kind {
            IterKind::Range(r) => r.next(),
            IterKind::Empty => None,
            IterKind::Stream { lead, pos, probes } => {
                'candidates: while *pos < lead.len() {
                    let t = lead[*pos];
                    *pos += 1;
                    for probe in probes.iter_mut() {
                        if !probe.contains(t) {
                            continue 'candidates;
                        }
                    }
                    return Some(t);
                }
                None
            }
            IterKind::Dense {
                maps,
                word_ix,
                current,
                base,
            } => {
                while *current == 0 {
                    let (first, rest) = maps.split_first().expect("dense plan has maps");
                    let &word = first.get(*word_ix)?;
                    let mut acc = word;
                    for bits in rest {
                        acc &= bits[*word_ix];
                        if acc == 0 {
                            break;
                        }
                    }
                    *base = (*word_ix as u32) << 6;
                    *word_ix += 1;
                    *current = acc;
                }
                let bit = current.trailing_zeros();
                *current &= *current - 1;
                Some(*base + bit)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.kind {
            IterKind::Range(r) => r.size_hint(),
            IterKind::Empty => (0, Some(0)),
            IterKind::Stream { lead, pos, .. } => (0, Some(lead.len() - *pos)),
            IterKind::Dense { maps, word_ix, .. } => {
                let words_left = maps[0].len().saturating_sub(*word_ix);
                (0, Some(words_left * 64 + 64))
            }
        }
    }
}

/// Galloping (exponential) search: smallest index `i ≥ from` with
/// `list[i] >= needle`, or `list.len()`.
#[inline]
fn gallop(list: &[u32], from: usize, needle: u32) -> usize {
    let mut lo = from;
    let mut step = 1;
    // Find an upper bound by doubling.
    while lo + step < list.len() && list[lo + step] < needle {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step + 1).min(list.len());
    // Binary search inside [lo, hi).
    match list[lo..hi].binary_search(&needle) {
        Ok(i) => lo + i,
        Err(i) => lo + i,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use hdsampler_model::{AttrId, Attribute, Schema, SchemaBuilder, Tuple};
    use std::sync::Arc;

    fn table_from(values: &[[DomIx; 3]]) -> Table {
        let schema: Arc<Schema> = SchemaBuilder::new()
            .attribute(Attribute::boolean("a"))
            .attribute(Attribute::categorical("b", ["x", "y", "z"]).unwrap())
            .attribute(Attribute::boolean("c"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = TableBuilder::new(Arc::clone(&schema), 7);
        for row in values {
            b.push(&Tuple::new(&schema, row.to_vec(), vec![]).unwrap())
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn empty_query_matches_all() {
        let t = table_from(&[[0, 0, 0], [1, 1, 1], [1, 2, 0]]);
        let idx = PostingIndex::build(&t);
        assert_eq!(idx.evaluate(&ConjunctiveQuery::empty()), vec![0, 1, 2]);
        assert_eq!(idx.count(&ConjunctiveQuery::empty()), 3);
    }

    #[test]
    fn single_predicate_uses_posting_list() {
        let t = table_from(&[[0, 0, 0], [1, 1, 1], [1, 2, 0], [1, 1, 0]]);
        let idx = PostingIndex::build(&t);
        let q = ConjunctiveQuery::from_pairs([(AttrId(1), 1)]).unwrap();
        assert_eq!(idx.evaluate(&q), vec![1, 3]);
        assert_eq!(idx.count(&q), 2);
        assert_eq!(idx.frequency(1, 1), 2);
    }

    #[test]
    fn conjunction_intersects() {
        let t = table_from(&[[0, 0, 0], [1, 1, 1], [1, 2, 0], [1, 1, 0], [1, 1, 0]]);
        let idx = PostingIndex::build(&t);
        let q =
            ConjunctiveQuery::from_pairs([(AttrId(0), 1), (AttrId(1), 1), (AttrId(2), 0)]).unwrap();
        assert_eq!(idx.evaluate(&q), vec![3, 4]);
    }

    #[test]
    fn disjoint_predicates_yield_empty() {
        let t = table_from(&[[0, 0, 0], [1, 1, 1]]);
        let idx = PostingIndex::build(&t);
        let q = ConjunctiveQuery::from_pairs([(AttrId(0), 0), (AttrId(1), 1)]).unwrap();
        assert!(idx.evaluate(&q).is_empty());
        assert_eq!(idx.count(&q), 0);
    }

    #[test]
    fn intersection_matches_naive_scan() {
        // Deterministic pseudo-random table, then compare index evaluation
        // against a naive full scan for a battery of queries.
        let mut rows = Vec::new();
        let mut state = 0xABCDu64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            rows.push([
                (next() % 2) as DomIx,
                (next() % 3) as DomIx,
                (next() % 2) as DomIx,
            ]);
        }
        let t = table_from(&rows);
        let idx = PostingIndex::build(&t);
        for a in 0..2u16 {
            for b in 0..3u16 {
                for c in 0..2u16 {
                    let q = ConjunctiveQuery::from_pairs([
                        (AttrId(0), a),
                        (AttrId(1), b),
                        (AttrId(2), c),
                    ])
                    .unwrap();
                    let naive: Vec<u32> = rows
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| q.matches(&r[..]))
                        .map(|(i, _)| i as u32)
                        .collect();
                    assert_eq!(idx.evaluate(&q), naive);
                    assert_eq!(idx.count(&q), naive.len());
                    for limit in [0usize, 1, 2, naive.len(), naive.len() + 5] {
                        assert_eq!(idx.count_at_most(&q, limit), naive.len().min(limit));
                    }
                }
            }
        }
    }

    #[test]
    fn bitmaps_kick_in_on_large_dense_tables() {
        // 2048 tuples with heavily repeated values: dense (attr, value)
        // pairs must get bitmaps and produce identical results.
        let rows: Vec<[DomIx; 3]> = (0..2048)
            .map(|i| [(i % 2) as DomIx, (i % 3) as DomIx, ((i / 7) % 2) as DomIx])
            .collect();
        let t = table_from(&rows);
        let idx = PostingIndex::build(&t);
        assert!(
            idx.bitmap(0, 0).is_some(),
            "dense value must be bitmap-backed"
        );
        for a in 0..2u16 {
            for b in 0..3u16 {
                for c in 0..2u16 {
                    let q = ConjunctiveQuery::from_pairs([
                        (AttrId(0), a),
                        (AttrId(1), b),
                        (AttrId(2), c),
                    ])
                    .unwrap();
                    let naive: Vec<u32> = rows
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| q.matches(&r[..]))
                        .map(|(i, _)| i as u32)
                        .collect();
                    assert_eq!(idx.evaluate(&q), naive);
                    assert_eq!(idx.count(&q), naive.len());
                    assert_eq!(
                        idx.count_dense(&q),
                        Some(naive.len()),
                        "all values here are dense, so the popcount path must engage"
                    );
                }
            }
        }
    }

    #[test]
    fn count_at_most_early_exits() {
        let rows: Vec<[DomIx; 3]> = (0..2048).map(|i| [(i % 2) as DomIx, 0, 0]).collect();
        let t = table_from(&rows);
        let idx = PostingIndex::build(&t);
        let q = ConjunctiveQuery::from_pairs([(AttrId(1), 0), (AttrId(2), 0)]).unwrap();
        assert_eq!(idx.count_at_most(&q, 5), 5);
        assert_eq!(idx.count_at_most(&q, 2048), 2048);
        assert_eq!(idx.count_at_most(&q, 10_000), 2048);
    }

    #[test]
    fn streaming_iterator_is_resumable_and_sorted() {
        let t = table_from(&[[0, 0, 0], [1, 1, 0], [1, 2, 0], [1, 1, 0], [1, 1, 1]]);
        let idx = PostingIndex::build(&t);
        let q = ConjunctiveQuery::from_pairs([(AttrId(0), 1), (AttrId(2), 0)]).unwrap();
        let mut it = idx.intersection(&q);
        assert_eq!(it.next(), Some(1));
        assert_eq!(it.next(), Some(2));
        assert_eq!(it.next(), Some(3));
        assert_eq!(it.next(), None);
        assert_eq!(it.next(), None, "fused at exhaustion");
    }

    #[test]
    fn gallop_finds_lower_bound() {
        let list = [2u32, 4, 6, 8, 10, 50, 51, 52, 100];
        assert_eq!(gallop(&list, 0, 1), 0);
        assert_eq!(gallop(&list, 0, 2), 0);
        assert_eq!(gallop(&list, 0, 7), 3);
        assert_eq!(gallop(&list, 2, 51), 6);
        assert_eq!(gallop(&list, 0, 101), list.len());
    }
}
