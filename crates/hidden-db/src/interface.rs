//! [`HiddenDb`]: the engine's public face, implementing
//! [`FormInterface`].
//!
//! `HiddenDb` glues together storage, indexes, ranking, top-k truncation,
//! count reporting and budget enforcement, and is safe to share across
//! sampler threads (`&HiddenDb` is all a walker needs).

use std::sync::Arc;

use hdsampler_model::{
    ConjunctiveQuery, FormInterface, InterfaceError, QueryResponse, Schema, Tuple, TupleId,
};

use crate::budget::QueryBudget;
use crate::counts::CountMode;
use crate::index::PostingIndex;
use crate::log::QueryLog;
use crate::oracle::Oracle;
use crate::ranking::{RankSpec, Ranking};
use crate::table::{Table, TableBuilder};
use crate::topk::{top_k, top_k_streamed};

/// A simulated hidden database behind a top-k conjunctive form interface.
#[derive(Debug)]
pub struct HiddenDb {
    table: Table,
    index: PostingIndex,
    ranking: Ranking,
    k: usize,
    count_mode: CountMode,
    budget: QueryBudget,
    log: QueryLog,
    /// Lazily computed table digest ([`FormInterface::dataset_digest`]):
    /// one full scan, then cached for the life of the (immutable) table.
    digest: std::sync::OnceLock<u64>,
}

impl HiddenDb {
    /// Start building a database over `schema`.
    pub fn builder(schema: Arc<Schema>) -> HiddenDbBuilder {
        HiddenDbBuilder::new(schema)
    }

    /// Ground-truth oracle over the underlying data.
    ///
    /// Only a *locally simulated* hidden database can hand this out — it is
    /// the validation path the paper's §4 backup plan uses ("the entire
    /// dataset can be accessed for validation"). Nothing in the sampling
    /// stack touches it.
    pub fn oracle(&self) -> Oracle<'_> {
        Oracle::new(&self.table, &self.index)
    }

    /// The engine's query log.
    pub fn log(&self) -> &QueryLog {
        &self.log
    }

    /// The session budget.
    pub fn budget(&self) -> &QueryBudget {
        &self.budget
    }

    /// Number of stored tuples (oracle-side knowledge).
    pub fn n_tuples(&self) -> usize {
        self.table.len()
    }

    /// The configured count-reporting mode.
    pub fn count_mode(&self) -> CountMode {
        self.count_mode
    }

    fn check_query(&self, query: &ConjunctiveQuery) -> Result<(), InterfaceError> {
        query
            .validate(self.table.schema())
            .map_err(InterfaceError::from)
    }

    /// The pre-optimization reference path: fully materialize the match
    /// set, rank the whole vector, and always compute the exact count —
    /// regardless of classification or count mode.
    ///
    /// `execute` never takes this path; it exists as the baseline the
    /// equivalence proptest and the `micro_engine` benchmarks compare the
    /// bounded fast path against. It charges the budget and logs exactly
    /// like `execute`.
    pub fn execute_unbounded(
        &self,
        query: &ConjunctiveQuery,
    ) -> Result<QueryResponse, InterfaceError> {
        self.check_query(query)?;
        self.budget.charge()?;
        let matching = self.index.evaluate(query);
        let truth = matching.len() as u64;
        let (ids, overflow) = top_k(&matching, &self.ranking, self.k);
        Ok(self.respond(query, ids, overflow, truth))
    }

    /// Materialize rows and assemble the logged [`QueryResponse`] — the
    /// shared tail of `execute` and [`HiddenDb::execute_unbounded`], so the
    /// two paths can only differ in how `(ids, overflow, truth)` were
    /// computed.
    fn respond(
        &self,
        query: &ConjunctiveQuery,
        ids: Vec<TupleId>,
        overflow: bool,
        truth: u64,
    ) -> QueryResponse {
        let rows = ids.iter().map(|&t| self.table.row(t)).collect::<Vec<_>>();
        let class = if overflow {
            hdsampler_model::Classification::Overflow
        } else if rows.is_empty() {
            hdsampler_model::Classification::Empty
        } else {
            hdsampler_model::Classification::Valid
        };
        self.log.record(class, rows.len(), query.len());
        QueryResponse {
            rows,
            overflow,
            reported_count: self.count_mode.report(query, truth),
        }
    }

    /// The top-k page and exact cardinality of a query already known to
    /// overflow, without materializing the match set.
    ///
    /// Broad single-predicate (and empty) queries scan tuples in display
    /// order and stop after `k` hits — near the root of the query tree this
    /// touches `≈ n·k/count` tuples instead of the whole posting list.
    /// Everything else streams the intersection through a k-bounded
    /// tournament heap ([`top_k_streamed`]), which also yields the exact
    /// count as a side effect. Both paths order by `(sort_key, id)` and so
    /// return identical pages.
    fn overflow_page(&self, query: &ConjunctiveQuery) -> (Vec<TupleId>, u64) {
        let preds = query.predicates();
        match preds.len() {
            0 => {
                let best = &self.ranking.by_rank()[..self.k.min(self.table.len())];
                (
                    best.iter().map(|&t| TupleId(t)).collect(),
                    self.table.len() as u64,
                )
            }
            1 => {
                let p = &preds[0];
                let count = self.index.frequency(p.attr.index(), p.value);
                let n = self.table.len();
                // Rank-order scan beats a heap pass over the posting list
                // when the predicate is broad: expected probes are
                // ≈ n·k/count, so prefer it when n·k ≤ count².
                if count > 0 && n / count <= count / self.k.max(1) {
                    let col = self.table.column(p.attr.index());
                    let mut ids = Vec::with_capacity(self.k);
                    for &t in self.ranking.by_rank() {
                        if col[t as usize] == p.value {
                            ids.push(TupleId(t));
                            if ids.len() == self.k {
                                break;
                            }
                        }
                    }
                    (ids, count as u64)
                } else {
                    let (ids, _, total) =
                        top_k_streamed(self.index.intersection(query), &self.ranking, self.k);
                    (ids, total)
                }
            }
            _ => {
                let (ids, _, total) =
                    top_k_streamed(self.index.intersection(query), &self.ranking, self.k);
                (ids, total)
            }
        }
    }
}

impl FormInterface for HiddenDb {
    fn schema(&self) -> &Schema {
        self.table.schema()
    }

    fn result_limit(&self) -> usize {
        self.k
    }

    fn execute(&self, query: &ConjunctiveQuery) -> Result<QueryResponse, InterfaceError> {
        self.check_query(query)?;
        self.budget.charge()?;
        let (ids, overflow, truth) = if query.len() <= 1 {
            // Root region of the query tree: the bounded classification
            // probe is O(1) here (tuple count or posting-list length,
            // capped at k + 1), so classify first and only then build the
            // page the classification calls for.
            let bounded = self.index.count_at_most(query, self.k + 1);
            if bounded > self.k {
                let (ids, truth) = self.overflow_page(query);
                (ids, true, truth)
            } else {
                // Valid (or empty): the full match set is at most k ids —
                // materialize exactly those and rank-sort them.
                let matching: Vec<u32> = self.index.intersection(query).collect();
                debug_assert_eq!(matching.len(), bounded);
                let (ids, _) = top_k(&matching, &self.ranking, self.k);
                (ids, false, bounded as u64)
            }
        } else {
            // Deeper conjunctions: one streamed pass over the intersection
            // yields the classification, the k-bounded page, and the exact
            // count together — no match vector, no second pass.
            let (ids, overflow, total) =
                top_k_streamed(self.index.intersection(query), &self.ranking, self.k);
            (ids, overflow, total)
        };
        Ok(self.respond(query, ids, overflow, truth))
    }

    fn count(&self, query: &ConjunctiveQuery) -> Result<u64, InterfaceError> {
        if matches!(self.count_mode, CountMode::Absent) {
            return Err(InterfaceError::Unsupported("count reporting"));
        }
        self.check_query(query)?;
        self.budget.charge()?;
        let truth = self.index.count(query) as u64;
        self.log.record_count_probe(query.len());
        Ok(self
            .count_mode
            .report(query, truth)
            .expect("non-absent count mode always reports"))
    }

    fn supports_count(&self) -> bool {
        !matches!(self.count_mode, CountMode::Absent)
    }

    fn queries_issued(&self) -> u64 {
        self.budget.used()
    }

    fn dataset_digest(&self) -> Option<u64> {
        // FNV-1a over the frozen columnar data: tuple count, every
        // attribute column, then every measure column (bitwise). Any
        // change to the stored tuples changes the digest, which changes
        // the site fingerprint persistent caches key on.
        Some(*self.digest.get_or_init(|| {
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            let mut eat = |bytes: &[u8]| {
                for &b in bytes {
                    h = (h ^ b as u64).wrapping_mul(0x0100_0000_01B3);
                }
            };
            eat(&(self.table.len() as u64).to_le_bytes());
            let schema = self.table.schema();
            for a in 0..schema.attributes().len() {
                for &v in self.table.column(a) {
                    eat(&v.to_le_bytes());
                }
            }
            for m in 0..schema.measures().len() {
                for &x in self.table.measure_column(m) {
                    eat(&x.to_bits().to_le_bytes());
                }
            }
            h
        }))
    }
}

/// Builder for [`HiddenDb`].
#[derive(Debug)]
pub struct HiddenDbBuilder {
    table: TableBuilder,
    k: usize,
    rank: RankSpec,
    count_mode: CountMode,
    budget: Option<u64>,
}

/// Default listing-key seed ("coffee, diseased" — grouped for the pun, not
/// the bytes).
#[allow(clippy::unusual_byte_groupings)]
pub const DEFAULT_KEY_SEED: u64 = 0xC0FF_EE00_D15E_A5E;

impl HiddenDbBuilder {
    /// Start with Google-Base-like defaults: `k = 1000`, hash-order ranking,
    /// no count banner, unmetered.
    pub fn new(schema: Arc<Schema>) -> Self {
        HiddenDbBuilder {
            table: TableBuilder::new(schema, DEFAULT_KEY_SEED),
            k: 1000,
            rank: RankSpec::HashOrder { seed: 0x5EED },
            count_mode: CountMode::Absent,
            budget: None,
        }
    }

    /// Set the top-k display limit.
    pub fn result_limit(mut self, k: usize) -> Self {
        assert!(
            k >= 1,
            "a form that shows zero results is no interface at all"
        );
        self.k = k;
        self
    }

    /// Set the site's ranking function.
    pub fn ranking(mut self, spec: RankSpec) -> Self {
        self.rank = spec;
        self
    }

    /// Set the count-reporting mode.
    pub fn count_mode(mut self, mode: CountMode) -> Self {
        self.count_mode = mode;
        self
    }

    /// Cap the number of queries a session may issue.
    pub fn query_budget(mut self, limit: u64) -> Self {
        self.budget = Some(limit);
        self
    }

    /// Seed for the opaque listing-key space.
    pub fn key_seed(mut self, seed: u64) -> Self {
        self.table.set_key_seed(seed);
        self
    }

    /// Reserve capacity for `n` tuples.
    pub fn reserve(mut self, n: usize) -> Self {
        self.table.reserve(n);
        self
    }

    /// Append one tuple.
    pub fn push(&mut self, tuple: &Tuple) -> Result<(), hdsampler_model::ModelError> {
        self.table.push(tuple).map(|_| ())
    }

    /// Append many tuples.
    pub fn extend<'a>(
        &mut self,
        tuples: impl IntoIterator<Item = &'a Tuple>,
    ) -> Result<(), hdsampler_model::ModelError> {
        for t in tuples {
            self.push(t)?;
        }
        Ok(())
    }

    /// Freeze into a queryable [`HiddenDb`].
    pub fn finish(self) -> HiddenDb {
        let table = self.table.finish();
        let index = PostingIndex::build(&table);
        let ranking = Ranking::build(&self.rank, &table);
        HiddenDb {
            table,
            index,
            ranking,
            k: self.k,
            count_mode: self.count_mode,
            budget: self
                .budget
                .map_or_else(QueryBudget::unlimited, QueryBudget::limited),
            log: QueryLog::default(),
            digest: std::sync::OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_model::{AttrId, Attribute, Classification, SchemaBuilder};

    /// Build the exact Boolean database of the paper's Figure 1:
    /// tuples t1=001, t2=010, t3=011, t4=110 over attributes a1,a2,a3.
    fn figure1_db(k: usize) -> HiddenDb {
        let schema = SchemaBuilder::new()
            .attribute(Attribute::boolean("a1"))
            .attribute(Attribute::boolean("a2"))
            .attribute(Attribute::boolean("a3"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(Arc::clone(&schema)).result_limit(k);
        for vals in [[0u16, 0, 1], [0, 1, 0], [0, 1, 1], [1, 1, 0]] {
            b.push(&Tuple::new(&schema, vals.to_vec(), vec![]).unwrap())
                .unwrap();
        }
        b.finish()
    }

    fn q(pairs: &[(u16, u16)]) -> ConjunctiveQuery {
        ConjunctiveQuery::from_pairs(pairs.iter().map(|&(a, v)| (AttrId(a), v))).unwrap()
    }

    #[test]
    fn figure1_classifications_match_paper() {
        // With k = 1 (the paper's walk-through): a1=0 overflows (3 tuples),
        // a1=1 is valid (t4 alone), a1=0 ∧ a2=0 is valid (t1), a1=0 ∧ a2=1
        // overflows (t2, t3), and a1=1 ∧ a2=0 is empty.
        let db = figure1_db(1);
        let r = db.execute(&q(&[(0, 0)])).unwrap();
        assert_eq!(r.classification(), Classification::Overflow);
        assert_eq!(r.returned(), 1, "top-k shows exactly k rows");

        let r = db.execute(&q(&[(0, 1)])).unwrap();
        assert_eq!(r.classification(), Classification::Valid);
        assert_eq!(r.rows[0].values.as_ref(), &[1, 1, 0]);

        let r = db.execute(&q(&[(0, 0), (1, 0)])).unwrap();
        assert_eq!(r.classification(), Classification::Valid);
        assert_eq!(r.rows[0].values.as_ref(), &[0, 0, 1]);

        let r = db.execute(&q(&[(0, 0), (1, 1)])).unwrap();
        assert_eq!(r.classification(), Classification::Overflow);

        let r = db.execute(&q(&[(0, 1), (1, 0)])).unwrap();
        assert_eq!(r.classification(), Classification::Empty);
    }

    #[test]
    fn responses_are_stable_across_reissues() {
        let db = figure1_db(1);
        let a = db.execute(&q(&[(0, 0)])).unwrap();
        let b = db.execute(&q(&[(0, 0)])).unwrap();
        assert_eq!(a, b, "deterministic ranking ⇒ identical pages");
    }

    #[test]
    fn budget_enforced_and_counted() {
        let schema = SchemaBuilder::new()
            .attribute(Attribute::boolean("x"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(Arc::clone(&schema)).query_budget(2);
        b.push(&Tuple::new(&schema, vec![0], vec![]).unwrap())
            .unwrap();
        let db = b.finish();
        assert!(db.execute(&ConjunctiveQuery::empty()).is_ok());
        assert!(db.execute(&ConjunctiveQuery::empty()).is_ok());
        assert_eq!(
            db.execute(&ConjunctiveQuery::empty()),
            Err(InterfaceError::BudgetExhausted { issued: 2 })
        );
        assert_eq!(db.queries_issued(), 2);
    }

    #[test]
    fn count_probe_respects_mode() {
        let db = figure1_db(1);
        // Default mode: Absent.
        assert_eq!(
            db.count(&ConjunctiveQuery::empty()),
            Err(InterfaceError::Unsupported("count reporting"))
        );
        assert!(!db.supports_count());

        let schema = SchemaBuilder::new()
            .attribute(Attribute::boolean("x"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(Arc::clone(&schema)).count_mode(CountMode::Exact);
        for v in [0u16, 0, 1] {
            b.push(&Tuple::new(&schema, vec![v], vec![]).unwrap())
                .unwrap();
        }
        let db = b.finish();
        assert!(db.supports_count());
        assert_eq!(db.count(&q(&[(0, 0)])).unwrap(), 2);
        assert_eq!(db.count(&ConjunctiveQuery::empty()).unwrap(), 3);
        assert_eq!(db.queries_issued(), 2, "count probes are charged");
    }

    #[test]
    fn invalid_query_rejected_without_charge() {
        let db = figure1_db(10);
        let bad = q(&[(7, 0)]);
        assert!(matches!(
            db.execute(&bad),
            Err(InterfaceError::InvalidQuery(_))
        ));
        assert_eq!(db.queries_issued(), 0);
    }

    #[test]
    fn log_reflects_traffic() {
        let db = figure1_db(1);
        db.execute(&q(&[(0, 0)])).unwrap(); // overflow
        db.execute(&q(&[(0, 1)])).unwrap(); // valid
        db.execute(&q(&[(0, 1), (1, 0)])).unwrap(); // empty
        let s = db.log().snapshot();
        assert_eq!((s.total, s.overflow, s.valid, s.empty), (3, 1, 1, 1));
    }

    #[test]
    fn dataset_digest_is_stable_and_data_sensitive() {
        let a = figure1_db(1);
        let b = figure1_db(5); // same data, different k — digest sees data only
        assert_eq!(a.dataset_digest(), a.dataset_digest(), "stable per table");
        assert_eq!(a.dataset_digest(), b.dataset_digest(), "k is not data");

        // One flipped value must change the digest.
        let schema = SchemaBuilder::new()
            .attribute(Attribute::boolean("a1"))
            .attribute(Attribute::boolean("a2"))
            .attribute(Attribute::boolean("a3"))
            .finish()
            .unwrap()
            .into_shared();
        let mut bld = HiddenDb::builder(Arc::clone(&schema)).result_limit(1);
        for vals in [[0u16, 0, 1], [0, 1, 0], [0, 1, 1], [1, 1, 1]] {
            bld.push(&Tuple::new(&schema, vals.to_vec(), vec![]).unwrap())
                .unwrap();
        }
        let mutated = bld.finish();
        assert_ne!(a.dataset_digest(), mutated.dataset_digest());
    }

    #[test]
    fn reported_count_follows_mode() {
        let schema = SchemaBuilder::new()
            .attribute(Attribute::boolean("x"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(Arc::clone(&schema)).count_mode(CountMode::Exact);
        for v in [0u16, 1, 1] {
            b.push(&Tuple::new(&schema, vec![v], vec![]).unwrap())
                .unwrap();
        }
        let db = b.finish();
        let r = db.execute(&q(&[(0, 1)])).unwrap();
        assert_eq!(r.reported_count, Some(2));
    }
}
