//! Query accounting: what the engine observed serving a session.
//!
//! The paper's efficiency story is told in *queries issued per sample
//! produced*; the log provides the numerator, broken down by outcome class,
//! plus distributional statistics (depth of queries, rows shipped) that the
//! experiment harness reports.

use std::sync::atomic::{AtomicU64, Ordering};

use hdsampler_model::Classification;

/// Wait-free accumulating counters describing served queries.
#[derive(Debug, Default)]
pub struct QueryLog {
    total: AtomicU64,
    empty: AtomicU64,
    valid: AtomicU64,
    overflow: AtomicU64,
    count_probes: AtomicU64,
    rows_shipped: AtomicU64,
    predicates_sum: AtomicU64,
}

/// A point-in-time copy of the log counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogSnapshot {
    /// Total form submissions (selection queries + count probes).
    pub total: u64,
    /// Queries classified empty.
    pub empty: u64,
    /// Queries classified valid (1..=k rows).
    pub valid: u64,
    /// Queries classified overflow.
    pub overflow: u64,
    /// Count-only probes.
    pub count_probes: u64,
    /// Result rows shipped across all responses.
    pub rows_shipped: u64,
    /// Sum of predicate counts over all queries (for mean depth).
    pub predicates_sum: u64,
}

impl LogSnapshot {
    /// Mean number of predicates per query.
    pub fn mean_depth(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.predicates_sum as f64 / self.total as f64
        }
    }
}

impl QueryLog {
    /// Record a served selection query.
    pub fn record(&self, class: Classification, rows: usize, predicates: usize) {
        self.total.fetch_add(1, Ordering::Relaxed);
        match class {
            Classification::Empty => &self.empty,
            Classification::Valid => &self.valid,
            Classification::Overflow => &self.overflow,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.rows_shipped.fetch_add(rows as u64, Ordering::Relaxed);
        self.predicates_sum
            .fetch_add(predicates as u64, Ordering::Relaxed);
    }

    /// Record a served count-only probe.
    pub fn record_count_probe(&self, predicates: usize) {
        self.total.fetch_add(1, Ordering::Relaxed);
        self.count_probes.fetch_add(1, Ordering::Relaxed);
        self.predicates_sum
            .fetch_add(predicates as u64, Ordering::Relaxed);
    }

    /// Copy out all counters.
    pub fn snapshot(&self) -> LogSnapshot {
        LogSnapshot {
            total: self.total.load(Ordering::Relaxed),
            empty: self.empty.load(Ordering::Relaxed),
            valid: self.valid.load(Ordering::Relaxed),
            overflow: self.overflow.load(Ordering::Relaxed),
            count_probes: self.count_probes.load(Ordering::Relaxed),
            rows_shipped: self.rows_shipped.load(Ordering::Relaxed),
            predicates_sum: self.predicates_sum.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_by_class() {
        let log = QueryLog::default();
        log.record(Classification::Overflow, 1000, 1);
        log.record(Classification::Valid, 3, 2);
        log.record(Classification::Empty, 0, 3);
        log.record_count_probe(2);
        let s = log.snapshot();
        assert_eq!(s.total, 4);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.valid, 1);
        assert_eq!(s.empty, 1);
        assert_eq!(s.count_probes, 1);
        assert_eq!(s.rows_shipped, 1003);
        assert_eq!(s.predicates_sum, 8);
        assert!((s.mean_depth() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_log_mean_depth_is_zero() {
        assert_eq!(QueryLog::default().snapshot().mean_depth(), 0.0);
    }
}
