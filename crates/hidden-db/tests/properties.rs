//! Property-based tests for the hidden-database engine: the index is
//! equivalent to a naive scan, top-k truncation obeys its invariants, and
//! count reporting is stable.

use std::sync::Arc;

use hdsampler_hidden_db::{CountMode, HiddenDb, RankSpec};
use hdsampler_model::{
    AttrId, Attribute, Classification, ConjunctiveQuery, DomIx, FormInterface, Measure, Schema,
    SchemaBuilder, Tuple,
};
use proptest::prelude::*;

/// Strategy: a random small table (3 attributes with domains 2/3/4, a
/// measure) plus interface parameters.
fn random_rows() -> impl Strategy<Value = Vec<(u16, u16, u16, i32)>> {
    prop::collection::vec((0u16..2, 0u16..3, 0u16..4, -100i32..100), 0..120)
}

fn schema() -> Arc<Schema> {
    SchemaBuilder::new()
        .attribute(Attribute::boolean("a"))
        .attribute(Attribute::categorical("b", ["x", "y", "z"]).unwrap())
        .attribute(Attribute::categorical("c", ["p", "q", "r", "s"]).unwrap())
        .measure(Measure::new("m"))
        .finish()
        .unwrap()
        .into_shared()
}

fn build_db(rows: &[(u16, u16, u16, i32)], k: usize, rank: RankSpec, mode: CountMode) -> HiddenDb {
    let s = schema();
    let mut b = HiddenDb::builder(Arc::clone(&s))
        .result_limit(k)
        .ranking(rank)
        .count_mode(mode);
    for &(a, bb, c, m) in rows {
        b.push(&Tuple::new(&s, vec![a, bb, c], vec![m as f64]).unwrap())
            .unwrap();
    }
    b.finish()
}

/// All queries over the 3-attribute schema (every subset × every value
/// combination) — 60 of them, exhaustively checked per case.
fn all_queries() -> Vec<ConjunctiveQuery> {
    let mut queries = vec![ConjunctiveQuery::empty()];
    let domains: [u16; 3] = [2, 3, 4];
    for mask in 1u8..8 {
        let attrs: Vec<usize> = (0..3).filter(|i| mask & (1 << i) != 0).collect();
        let mut combos: Vec<Vec<(AttrId, DomIx)>> = vec![vec![]];
        for &a in &attrs {
            let mut next = Vec::new();
            for combo in &combos {
                for v in 0..domains[a] {
                    let mut c = combo.clone();
                    c.push((AttrId(a as u16), v));
                    next.push(c);
                }
            }
            combos = next;
        }
        for combo in combos {
            queries.push(ConjunctiveQuery::from_pairs(combo).unwrap());
        }
    }
    queries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// For every query: the engine's answer equals a naive scan — row set,
    /// overflow flag, and (exact-mode) count banner.
    #[test]
    fn engine_matches_naive_scan(rows in random_rows(), k in 1usize..8) {
        let db = build_db(&rows, k, RankSpec::InsertionOrder, CountMode::Exact);
        for q in all_queries() {
            let naive: Vec<usize> = rows
                .iter()
                .enumerate()
                .filter(|(_, r)| q.matches(&[r.0, r.1, r.2]))
                .map(|(i, _)| i)
                .collect();
            let resp = db.execute(&q).unwrap();
            prop_assert_eq!(resp.overflow, naive.len() > k);
            prop_assert_eq!(resp.reported_count, Some(naive.len() as u64));
            if !resp.overflow {
                // Complete results; with insertion-order ranking the rows
                // come back in storage order.
                let got: Vec<Vec<u16>> =
                    resp.rows.iter().map(|r| r.values.to_vec()).collect();
                let want: Vec<Vec<u16>> =
                    naive.iter().map(|&i| vec![rows[i].0, rows[i].1, rows[i].2]).collect();
                prop_assert_eq!(got, want);
            } else {
                prop_assert_eq!(resp.rows.len(), k);
            }
        }
    }

    /// Top-k invariants under every ranking function: at most k rows, rank
    /// keys non-decreasing down the page, responses identical on re-issue.
    #[test]
    fn topk_invariants(rows in random_rows(), k in 1usize..6, seed in 0u64..50) {
        for rank in [
            RankSpec::InsertionOrder,
            RankSpec::HashOrder { seed },
            RankSpec::ByMeasureDesc(hdsampler_model::MeasureId(0)),
            RankSpec::ByMeasureAsc(hdsampler_model::MeasureId(0)),
        ] {
            let db = build_db(&rows, k, rank.clone(), CountMode::Absent);
            for q in all_queries().into_iter().step_by(7) {
                let a = db.execute(&q).unwrap();
                let b = db.execute(&q).unwrap();
                prop_assert_eq!(&a, &b, "stable pages for {:?}", rank);
                prop_assert!(a.rows.len() <= k);
                prop_assert_eq!(a.reported_count, None, "Absent mode shows no banner");
                if matches!(rank, RankSpec::ByMeasureAsc(_)) {
                    for w in a.rows.windows(2) {
                        prop_assert!(w[0].measures[0] <= w[1].measures[0]);
                    }
                }
                if matches!(rank, RankSpec::ByMeasureDesc(_)) {
                    for w in a.rows.windows(2) {
                        prop_assert!(w[0].measures[0] >= w[1].measures[0]);
                    }
                }
            }
        }
    }

    /// The oracle's marginals are exactly the scan frequencies and sum to 1.
    #[test]
    fn oracle_marginals_exact(rows in random_rows()) {
        prop_assume!(!rows.is_empty());
        let db = build_db(&rows, 5, RankSpec::InsertionOrder, CountMode::Exact);
        let o = db.oracle();
        for (attr, dom) in [(0usize, 2u16), (1, 3), (2, 4)] {
            let m = o.marginal(AttrId(attr as u16));
            prop_assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            for v in 0..dom {
                let naive = rows
                    .iter()
                    .filter(|r| [r.0, r.1, r.2][attr] == v)
                    .count() as f64
                    / rows.len() as f64;
                prop_assert!((m[v as usize] - naive).abs() < 1e-12);
            }
        }
    }

    /// Noisy banners are deterministic per query, exact at zero, and
    /// within a plausible multiplicative envelope of the truth.
    #[test]
    fn noisy_counts_stable_and_bounded(rows in random_rows(), seed in 0u64..1000) {
        let db = build_db(&rows, 5, RankSpec::InsertionOrder,
                          CountMode::Noisy { sigma: 0.2, seed });
        for q in all_queries().into_iter().step_by(5) {
            let a = db.count(&q).unwrap();
            let b = db.count(&q).unwrap();
            prop_assert_eq!(a, b, "banner must be stable");
            let truth = db.oracle().count(&q);
            if truth == 0 {
                prop_assert_eq!(a, 0);
            } else {
                // 5 sigma envelope plus rounding slack.
                let hi = (truth as f64 * (0.2f64 * 5.0).exp()).ceil() as u64 + 10;
                let lo = (truth as f64 * (-0.2f64 * 5.0).exp()).floor() as u64;
                prop_assert!(a >= lo.saturating_sub(10) && a <= hi,
                    "reported {} vs truth {} outside envelope", a, truth);
            }
        }
    }

    /// Budgets: exactly `limit` charges succeed regardless of interleaving
    /// of execute and count probes.
    #[test]
    fn budget_is_exact(rows in random_rows(), limit in 1u64..30) {
        let s = schema();
        let mut b = HiddenDb::builder(Arc::clone(&s))
            .result_limit(3)
            .count_mode(CountMode::Exact)
            .query_budget(limit);
        for &(a, bb, c, m) in &rows {
            b.push(&Tuple::new(&s, vec![a, bb, c], vec![m as f64]).unwrap()).unwrap();
        }
        let db = b.finish();
        let mut ok = 0u64;
        for (i, q) in all_queries().iter().cycle().take(40).enumerate() {
            let success = if i % 2 == 0 {
                db.execute(q).is_ok()
            } else {
                db.count(q).is_ok()
            };
            if success {
                ok += 1;
            }
        }
        prop_assert_eq!(ok, limit.min(40));
        prop_assert_eq!(db.queries_issued(), limit.min(40));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The bounded fast path through `execute` — `count_at_most(k+1)`
    /// classification, streamed k-bounded top-k, dense bitmap probing —
    /// is observably identical to the naive full-materialization path
    /// (full `evaluate`, then rank the whole match vector), across random
    /// tables, k values, every ranking, and every count mode.
    #[test]
    fn bounded_fast_path_equals_full_materialization(
        rows in random_rows(),
        k in 1usize..8,
        seed in 0u64..100,
    ) {
        use hdsampler_hidden_db::index::PostingIndex;
        use hdsampler_hidden_db::ranking::Ranking;
        use hdsampler_hidden_db::table::TableBuilder;
        use hdsampler_hidden_db::topk::top_k;

        let modes = [
            CountMode::Absent,
            CountMode::Exact,
            CountMode::Noisy { sigma: 0.2, seed },
        ];
        let ranks = [
            RankSpec::InsertionOrder,
            RankSpec::HashOrder { seed },
            RankSpec::ByMeasureAsc(hdsampler_model::MeasureId(0)),
            RankSpec::ByMeasureDesc(hdsampler_model::MeasureId(0)),
        ];
        for mode in modes {
            for rank in &ranks {
                let db = build_db(&rows, k, rank.clone(), mode);
                // Reference: an identical table evaluated the old way —
                // full id list, then a rank-sort of the whole vector.
                let s = schema();
                let mut tb = TableBuilder::new(Arc::clone(&s), hdsampler_hidden_db::interface::DEFAULT_KEY_SEED);
                for &(a, bb, c, m) in &rows {
                    tb.push(&Tuple::new(&s, vec![a, bb, c], vec![m as f64]).unwrap()).unwrap();
                }
                let table = tb.finish();
                let index = PostingIndex::build(&table);
                let ranking = Ranking::build(rank, &table);

                for q in all_queries() {
                    let full = index.evaluate(&q);
                    let truth = full.len() as u64;
                    let (ids, overflow) = top_k(&full, &ranking, k);
                    let want_rows: Vec<_> = ids.iter().map(|&t| table.row(t)).collect();

                    let got = db.execute(&q).unwrap();
                    prop_assert_eq!(got.overflow, overflow, "q={:?} rank={:?}", q, rank);
                    prop_assert_eq!(&got.rows, &want_rows, "q={:?} rank={:?}", q, rank);
                    prop_assert_eq!(
                        got.reported_count,
                        mode.report(&q, truth),
                        "q={:?} mode={:?}", q, mode
                    );
                    // The count probe agrees with the materialized truth.
                    if db.supports_count() {
                        prop_assert_eq!(db.count(&q).unwrap(), mode.report(&q, truth).unwrap());
                    }
                    // Bounded counting is exact up to its limit.
                    for limit in [0, 1, k, k + 1, full.len() + 3] {
                        prop_assert_eq!(
                            db.oracle().count(&q).min(limit as u64),
                            index.count_at_most(&q, limit) as u64
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn classification_consistent_with_count() {
    // Deterministic spot check across k values.
    let rows: Vec<(u16, u16, u16, i32)> =
        (0..60).map(|i| (i % 2, i % 3, i % 4, i as i32)).collect();
    for k in [1usize, 3, 10, 100] {
        let db = build_db(&rows, k, RankSpec::HashOrder { seed: 4 }, CountMode::Exact);
        for q in all_queries() {
            let resp = db.execute(&q).unwrap();
            let count = db.oracle().count(&q) as usize;
            match resp.classification() {
                Classification::Empty => assert_eq!(count, 0),
                Classification::Valid => {
                    assert!(count >= 1 && count <= k);
                    assert_eq!(resp.rows.len(), count);
                }
                Classification::Overflow => assert!(count > k),
            }
        }
    }
}
