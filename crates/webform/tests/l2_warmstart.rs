//! Warm-start equivalence: a second run sharing a persistent L2 fact log
//! must walk the *identical* sample sequence as a cold run — the L2 tier
//! changes where answers come from, never what they are — while paying
//! far fewer wire fetches and no phantom virtual time for facts that
//! predate the run.

use hdsampler_webform::{ConnectOptions, Driver, RunPlan, SiteLocator};

const LOCATOR: &str = "local:vehicles-compact?n=400&k=50&seed=11";

struct RunOutcome {
    keys: Vec<u64>,
    wire_fetches: u64,
    elapsed_ms: u64,
    history: hdsampler_core::HistoryStats,
}

/// One deterministic cooperative run (single walker, single connection —
/// multi-walker racing would make the per-walker prefixes scheduling-
/// dependent and the equivalence claim vacuous).
fn run(l2: Option<&str>) -> RunOutcome {
    let loc = SiteLocator::parse(LOCATOR).unwrap();
    let opts = ConnectOptions {
        record: None,
        l2: l2.map(str::to_string),
    };
    let (report, fleet) = RunPlan::target(40)
        .walkers(1)
        .seed(2009)
        .slider(0.5)
        .driver(Driver::Coop { conns: Some(1) })
        .run_locators_with(&[loc], &opts)
        .unwrap();
    drop(fleet);
    let site = report.site();
    RunOutcome {
        keys: site.samples.rows().map(|r| r.key).collect(),
        wire_fetches: site.queries_issued,
        elapsed_ms: site.elapsed_ms,
        history: site.history,
    }
}

#[test]
fn warm_l2_run_walks_the_identical_sequence_with_5x_fewer_wire_fetches() {
    let root = std::env::temp_dir().join(format!("hds_l2_warm_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let root_str = root.to_str().unwrap().to_string();

    // Baseline: no L2 at all.
    let bare = run(None);
    assert_eq!(bare.keys.len(), 40);

    // Cold run: fresh L2 root. Write-behind persistence must not perturb
    // the walk — the sample sequence matches the bare run exactly.
    let cold = run(Some(&root_str));
    assert_eq!(
        cold.keys, bare.keys,
        "persisting facts must not change the sample sequence"
    );
    assert_eq!(cold.wire_fetches, bare.wire_fetches);
    assert!(cold.history.l2_puts > 0, "wire facts were persisted");
    assert_eq!(cold.history.l2_hits, 0, "an empty log answers nothing");

    // Warm run: same root, same plan. Identical samples, answered from
    // the log instead of the wire.
    let warm = run(Some(&root_str));
    assert_eq!(
        warm.keys, cold.keys,
        "a warm-started run must reproduce the cold sample sequence exactly"
    );
    assert!(
        warm.history.l2_loads > 0,
        "the log was loaded: {:?}",
        warm.history
    );
    assert!(warm.history.l2_hits > 0, "facts were answered from L2");
    assert!(
        warm.wire_fetches * 5 <= cold.wire_fetches,
        "warm start must cut wire fetches at least 5x: {} vs {}",
        warm.wire_fetches,
        cold.wire_fetches
    );
    // L2 facts predate the run (learn time 0), so they advance no clock:
    // the warm run's virtual elapsed never exceeds the cold run's.
    assert!(
        warm.elapsed_ms <= cold.elapsed_ms,
        "pre-run knowledge must not be charged wait time: warm {} vs cold {}",
        warm.elapsed_ms,
        cold.elapsed_ms
    );
    // Promotion never re-appends: a warm run that fetched nothing new
    // leaves the log's record count unchanged (third run sees the same
    // number of loaded facts).
    let third = run(Some(&root_str));
    assert_eq!(
        third.history.l2_loads, warm.history.l2_loads,
        "L2 hits must not be re-appended to the log"
    );

    std::fs::remove_dir_all(&root).ok();
}
