//! Property tests for virtual-clock causality.
//!
//! The regression these guard: `ConnClocks::schedule` used to compute a
//! departure as `busy_until += service`, so a request submitted on a fresh
//! or fully-drained connection departed at the connection's stale queue
//! tail — virtual time 0 in the worst case — even when its submitter had
//! just consumed (via the shared history cache) a result that only
//! completed at t = 200 on *another* connection. A cooperative walker
//! multiplexing many connections would time-travel and undercharge the
//! fleet clock. The fix floors every departure at the connection's
//! observed clock, which [`AsyncTransport::observe_now`] advances when
//! cross-connection knowledge is consumed.

use hdsampler_model::InterfaceError;
use hdsampler_webform::{AsyncTransport, LatencyTransport, Transport};
use proptest::prelude::*;

/// A wire whose pages are irrelevant — these tests only watch the clocks.
struct NullSite;

impl Transport for NullSite {
    fn fetch(&self, _path: &str) -> Result<String, InterfaceError> {
        Ok(String::new())
    }
}

const LATENCY_MS: u64 = 100;

proptest! {
    /// No fetch ever departs before the completion that caused it: after
    /// a completion at time `t` is propagated to a connection (the
    /// submitting walker observed it — directly or through a cache hit),
    /// every later submission on that connection departs at or after `t`.
    #[test]
    fn no_fetch_departs_before_the_completion_that_caused_it(
        ops in prop::collection::vec((0u8..3, 0usize..4), 1..120),
    ) {
        let t = LatencyTransport::new(NullSite, LATENCY_MS);
        let conns: Vec<_> = (0..4).map(|_| t.connect()).collect();
        // What each connection's submitter has observed: its own
        // completions plus any knowledge propagated via observe_now.
        let mut observed = [0u64; 4];
        // In-flight fetches: (conn index, handle).
        let mut outstanding: Vec<(usize, hdsampler_webform::FetchHandle)> = Vec::new();
        // Highest completion time any fetch has reached (the "site
        // knowledge" a shared history cache would carry).
        let mut knowledge = 0u64;

        for (op, c) in ops {
            match op {
                // Submit on connection c.
                0 => {
                    let handle = t.submit(conns[c], "/x");
                    let departs = handle.ready_at_ms() - LATENCY_MS;
                    prop_assert!(
                        departs >= observed[c],
                        "fetch departs at {departs} but connection {c}'s submitter \
                         already observed t = {} — time travel",
                        observed[c]
                    );
                    outstanding.push((c, handle));
                }
                // Complete the earliest outstanding fetch (the order a
                // cooperative driver uses).
                1 => {
                    if outstanding.is_empty() {
                        continue;
                    }
                    let ix = outstanding
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (_, h))| h.ready_at_ms())
                        .map(|(i, _)| i)
                        .unwrap();
                    let (c, handle) = outstanding.remove(ix);
                    let done_at = handle.ready_at_ms();
                    t.complete(handle).unwrap();
                    observed[c] = observed[c].max(done_at);
                    knowledge = knowledge.max(done_at);
                }
                // Connection c's submitter consumes cross-connection
                // knowledge (a history-cache hit derived from another
                // connection's completion).
                _ => {
                    t.observe_now(conns[c], knowledge);
                    observed[c] = observed[c].max(knowledge);
                }
            }
        }

        // Elapsed never exceeds what completions actually observed, and
        // knowledge propagation alone never inflates it.
        prop_assert!(t.virtual_elapsed_ms() <= knowledge);
    }

    /// Per-fact causal floors are exact on a fresh connection: consuming
    /// a fact learned at `at` floors the next departure at exactly `at` —
    /// no earlier (that would be time travel) and no later (that would be
    /// a phantom wait charged by a conservative run-wide floor). This is
    /// the contract the cooperative driver relies on when it floors a
    /// cache-hit resume at `HistoryHit::learned_at` instead of the site's
    /// whole knowledge clock.
    #[test]
    fn per_fact_floor_is_exact_on_a_fresh_connection(
        at in 0u64..1_000,
        older_by in 0u64..1_000,
    ) {
        let t = LatencyTransport::new(NullSite, LATENCY_MS);
        let conn = t.connect();
        t.observe_now(conn, at);
        let h = t.submit(conn, "/x");
        prop_assert_eq!(h.ready_at_ms(), at + LATENCY_MS);
        // Consuming an *older* fact afterwards must not rewind the
        // connection clock — floors only ever tighten forward.
        t.observe_now(conn, at.saturating_sub(older_by));
        let h2 = t.submit(conn, "/y");
        prop_assert_eq!(h2.ready_at_ms(), at + 2 * LATENCY_MS);
    }

    /// Submissions on one connection still serialize: each departs no
    /// earlier than the previous request's completion on that connection.
    #[test]
    fn same_connection_requests_serialize(n in 1usize..30) {
        let t = LatencyTransport::new(NullSite, LATENCY_MS);
        let conn = t.connect();
        let mut prev_ready = 0u64;
        for _ in 0..n {
            let h = t.submit(conn, "/x");
            let departs = h.ready_at_ms() - LATENCY_MS;
            prop_assert!(departs >= prev_ready.saturating_sub(LATENCY_MS));
            prop_assert!(h.ready_at_ms() >= prev_ready + LATENCY_MS);
            prev_ready = h.ready_at_ms();
            // Leave the fetch un-completed: pipelined queue depth must
            // not matter.
        }
        prop_assert_eq!(prev_ready, n as u64 * LATENCY_MS);
    }
}

/// The concrete time-travel scenario from the bug report, as a plain
/// regression test: learn at t = 200 on connection A, submit on fresh
/// connection B — the fetch must depart at 200, not 0.
#[test]
fn fresh_connection_cannot_depart_at_time_zero_after_learning() {
    let t = LatencyTransport::new(NullSite, 200);
    let a = t.connect();
    let b = t.connect();
    let first = t.submit(a, "/cause");
    assert_eq!(first.ready_at_ms(), 200);
    t.complete(first).unwrap();

    // The walker about to use `b` consumed the result of the fetch above
    // (e.g. as a history-cache fact) — propagate that knowledge.
    t.observe_now(b, 200);
    let second = t.submit(b, "/effect");
    assert_eq!(
        second.ready_at_ms(),
        400,
        "the effect departs at t = 200 (its cause's completion), not t = 0"
    );
    assert_eq!(t.complete(second).unwrap(), "");
    assert_eq!(t.virtual_elapsed_ms(), 400);
}

/// The per-fact refinement of the floor above: a fact loaded from the
/// persistent L2 log predates the run (learn time 0), so a warm-started
/// walker consuming it pays *no* wait — even while other connections have
/// pushed the run's knowledge clock far ahead. A mid-run fact floors at
/// exactly its own learn time, not the newest completion's.
#[test]
fn warm_started_walker_pays_no_phantom_wait() {
    let t = LatencyTransport::new(NullSite, 100);
    let a = t.connect();
    for _ in 0..5 {
        let h = t.submit(a, "/wire");
        t.complete(h).unwrap();
    }
    assert_eq!(t.virtual_elapsed_ms(), 500, "run knowledge is at t = 500");

    // Fresh connection, consuming only an L2 fact stamped 0: departs at 0.
    let warm = t.connect();
    t.observe_now(warm, 0);
    let h = t.submit(warm, "/warm");
    assert_eq!(
        h.ready_at_ms(),
        100,
        "an L2 fact imposes no floor — the run-wide clock at 500 must not leak in"
    );

    // Fresh connection, consuming a fact learned mid-run at t = 300:
    // departs at exactly 300, not 500.
    let mid = t.connect();
    t.observe_now(mid, 300);
    let h = t.submit(mid, "/mid");
    assert_eq!(
        h.ready_at_ms(),
        400,
        "per-fact floor is the fact's own learn time"
    );
}
