//! Property tests for the locator grammar and scrape-based schema
//! discovery.
//!
//! * parse ∘ Display is the identity on every structurally valid
//!   [`SiteLocator`] — locators survive being printed into reports and CI
//!   logs and pasted back;
//! * [`SiteLocator::parse`] never panics, whatever junk it is fed;
//! * a form page rendered with [`WebForm::render_html_with_meta`] scrapes
//!   back ([`scrape_form_page`]) to the *exact* original schema —
//!   vocabularies, bucket bounds, measures — plus the advertised k and
//!   count support, which is the invariant `sample http://addr` with zero
//!   schema flags rests on.

use std::sync::Arc;

use hdsampler_model::{Attribute, Bucket, Measure, SchemaBuilder};
use hdsampler_webform::{scrape_form_page, SiteLocator, WebForm};
use proptest::prelude::*;

/// Map indices onto the dataset-name charset `[A-Za-z0-9._-]`.
fn dataset_name(ix: &[usize]) -> String {
    const POOL: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-";
    ix.iter().map(|&i| POOL[i % POOL.len()] as char).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse(Display(loc)) == loc for every structurally valid locator,
    /// including parameter keys/values full of `&`, `=`, `%` and
    /// multi-byte UTF-8 (percent-encoding shields them).
    #[test]
    fn locator_display_parse_identity(
        variant in 0u8..3,
        name_ix in prop::collection::vec(0usize..1000, 1..12),
        params in prop::collection::vec(("\\PC*", "\\PC*"), 0..5),
        port in 1u32..60_000,
        path in "\\PC*",
    ) {
        let loc = match variant {
            0 => SiteLocator::Local {
                dataset: dataset_name(&name_ix),
                // Keys must be non-empty; an index prefix guarantees it.
                params: params
                    .into_iter()
                    .enumerate()
                    .map(|(i, (k, v))| (format!("k{i}{k}"), v))
                    .collect(),
            },
            1 => SiteLocator::Http {
                addr: format!("10.1.2.3:{port}"),
            },
            _ => {
                prop_assume!(!path.is_empty());
                SiteLocator::Replay { path }
            }
        };
        let printed = loc.to_string();
        prop_assert_eq!(SiteLocator::parse(&printed).unwrap(), loc, "{}", printed);
    }

    /// Arbitrary junk — bare, or behind each scheme prefix — parses to
    /// `Ok` or `Err`, never a panic.
    #[test]
    fn junk_never_panics(s in "\\PC*", prefix in 0u8..5) {
        let candidate = match prefix {
            0 => s,
            1 => format!("local:{s}"),
            2 => format!("http://{s}"),
            3 => format!("replay:{s}"),
            _ => format!("{s}:{s}"),
        };
        let _ = SiteLocator::parse(&candidate);
    }

    /// Scrape-based discovery is lossless: rendered form page → scraped
    /// [`DiscoveredForm`](hdsampler_webform::DiscoveredForm) reproduces
    /// the schema (labels, bucket bounds, measures), k and count support
    /// exactly.
    #[test]
    fn discovery_reconstructs_the_schema(
        kinds in prop::collection::vec(0u8..3, 1..6),
        labels in prop::collection::vec("\\PC*", 18),
        starts in prop::collection::vec(-1.0e6f64..1.0e6, 6),
        widths in prop::collection::vec(0.5f64..1.0e3, 18),
        measures in prop::collection::vec("\\PC*", 0..4),
        k in 1usize..5_000,
        supports_count in any::<bool>(),
    ) {
        let mut builder = SchemaBuilder::new();
        for (i, &kind) in kinds.iter().enumerate() {
            let attr = match kind {
                0 => Attribute::boolean(format!("attr{i}")),
                1 => {
                    // A numbered prefix keeps generated labels unique and
                    // non-empty; the generator supplies the hostile part.
                    let ls: Vec<String> = (0..3)
                        .map(|j| format!("{j}#{}", labels[(i * 3 + j) % labels.len()]))
                        .collect();
                    Attribute::categorical(
                        format!("attr{i}"),
                        ls.iter().map(|s| s.as_str()),
                    )
                    .unwrap()
                }
                _ => {
                    let mut lo = starts[i % starts.len()];
                    let buckets: Vec<Bucket> = (0..3)
                        .map(|j| {
                            let hi = lo + widths[(i * 3 + j) % widths.len()];
                            let b = Bucket::new(lo, hi, format!("{lo:?} to {hi:?}"));
                            lo = hi;
                            b
                        })
                        .collect();
                    Attribute::numeric(format!("attr{i}"), buckets).unwrap()
                }
            };
            builder = builder.attribute(attr);
        }
        for (i, m) in measures.iter().enumerate() {
            builder = builder.measure(Measure::new(format!("m{i}{m}")));
        }
        let schema = builder.finish().unwrap().into_shared();
        let form = WebForm::new(Arc::clone(&schema), "/search");
        let page = form.render_html_with_meta(k, supports_count);
        let found = scrape_form_page(&page).unwrap();
        prop_assert_eq!(&found.schema, schema.as_ref());
        prop_assert_eq!(found.action.as_str(), "/search");
        prop_assert_eq!(found.k, k);
        prop_assert_eq!(found.supports_count, supports_count);
    }
}
