//! Property-based tests for the web layer: every encode/render step is
//! inverted losslessly by its decode/scrape counterpart — the invariant a
//! scraper's correctness rests on.

use std::sync::Arc;

use hdsampler_model::{Attribute, Measure, QueryResponse, Row, SchemaBuilder};
use hdsampler_webform::render::{escape_html, render_results_page, unescape_html};
use hdsampler_webform::scrape::scrape_results_page;
use hdsampler_webform::urlenc;
use hdsampler_webform::WebForm;
use proptest::prelude::*;

proptest! {
    /// Percent-encoding round-trips arbitrary Unicode.
    #[test]
    fn urlenc_roundtrip(s in "\\PC*") {
        let decoded = urlenc::decode(&urlenc::encode(&s));
        prop_assert_eq!(decoded.as_deref(), Some(s.as_str()));
    }

    /// Query strings round-trip arbitrary key/value pairs, including
    /// separators and '=' inside values.
    #[test]
    fn query_string_roundtrip(pairs in prop::collection::vec(("\\PC*", "\\PC*"), 0..8)) {
        let pairs: Vec<(String, String)> =
            pairs.into_iter().collect();
        let qs = urlenc::build_query(&pairs);
        prop_assert_eq!(urlenc::parse_query(&qs), Some(pairs));
    }

    /// HTML escaping round-trips arbitrary text.
    #[test]
    fn html_escape_roundtrip(s in "\\PC*") {
        prop_assert_eq!(unescape_html(&escape_html(&s)), s);
    }

    /// Render → scrape is the identity on responses with arbitrary row
    /// content (finite measures; NaN is excluded because NaN ≠ NaN).
    #[test]
    fn page_roundtrip(
        rows in prop::collection::vec(
            (any::<u64>(), 0u16..3, 0u16..2, -1.0e9f64..1.0e9, -1.0e3f64..1.0e3),
            0..25,
        ),
        overflow in any::<bool>(),
        count in prop::option::of(0u64..2_000_000_000),
    ) {
        let schema = SchemaBuilder::new()
            .attribute(Attribute::categorical("make", ["To<yo>ta", "A&B", "Q\"C\""]).unwrap())
            .attribute(Attribute::boolean("used"))
            .measure(Measure::new("price"))
            .measure(Measure::new("score"))
            .finish()
            .unwrap();
        let resp = QueryResponse {
            rows: rows
                .into_iter()
                .map(|(key, make, used, price, score)| {
                    Row::new(key, vec![make, used], vec![price, score])
                })
                .collect(),
            overflow,
            reported_count: count,
        };
        let html = render_results_page(&schema, &resp, 100);
        let back = scrape_results_page(&schema, &html).unwrap();
        prop_assert_eq!(back, resp);
    }

    /// Arbitrary label strings — including `&`, `=`, `%` and multi-byte
    /// UTF-8, which the generator over-weights — survive the full
    /// request-path round trip when used as a form's domain labels.
    #[test]
    fn form_label_strings_roundtrip(l1 in "\\PC*", l2 in "\\PC*") {
        // Empty labels are indistinguishable from the form's "any"
        // default, and duplicate labels are rejected at schema build time.
        prop_assume!(!l1.is_empty() && !l2.is_empty() && l1 != l2);
        let schema = SchemaBuilder::new()
            .attribute(Attribute::categorical("attr", [l1.as_str(), l2.as_str()]).unwrap())
            .finish()
            .unwrap()
            .into_shared();
        let form = WebForm::new(Arc::clone(&schema), "/search");
        for v in 0..2u16 {
            let q = hdsampler_model::ConjunctiveQuery::empty()
                .refine(hdsampler_model::AttrId(0), v)
                .unwrap();
            let path = form.request_path(&q);
            prop_assert_eq!(form.parse_request_path(&path).unwrap(), q, "label round trip");
        }
    }

    /// Form request paths round-trip arbitrary (valid) queries.
    #[test]
    fn request_path_roundtrip(make in prop::option::of(0u16..3), used in prop::option::of(0u16..2)) {
        let schema = SchemaBuilder::new()
            .attribute(Attribute::categorical("make", ["Land Rover", "A&B", "100%"]).unwrap())
            .attribute(Attribute::boolean("used"))
            .finish()
            .unwrap()
            .into_shared();
        let form = WebForm::new(Arc::clone(&schema), "/search");
        let mut q = hdsampler_model::ConjunctiveQuery::empty();
        if let Some(v) = make {
            q = q.refine(hdsampler_model::AttrId(0), v).unwrap();
        }
        if let Some(v) = used {
            q = q.refine(hdsampler_model::AttrId(1), v).unwrap();
        }
        let path = form.request_path(&q);
        prop_assert_eq!(form.parse_request_path(&path).unwrap(), q);
    }
}

#[test]
fn urlenc_adversarial_separators_and_multibyte() {
    // The characters that break naive query-string handling: separators,
    // the escape character itself, and 2-/3-/4-byte UTF-8 sequences.
    for s in [
        "&",
        "=",
        "%",
        "&&==%%",
        "a&b=c%d",
        "%2",
        "%ZZ",
        "100% legit",
        "–",
        "✓",
        "日本語",
        "🚗",
        "k–v=🚗&%",
        "",
    ] {
        assert_eq!(
            urlenc::decode(&urlenc::encode(s)).as_deref(),
            Some(s),
            "encode/decode round trip of {s:?}"
        );
    }
    let pairs: Vec<(String, String)> = vec![
        ("a&b".into(), "c=d".into()),
        ("%".into(), "&".into()),
        ("日本語".into(), "–🚗–".into()),
        ("".into(), "=&%".into()),
    ];
    let qs = urlenc::build_query(&pairs);
    assert_eq!(urlenc::parse_query(&qs), Some(pairs), "query string {qs:?}");
}

#[test]
fn truncated_results_table_is_a_parse_error() {
    // A site that dies mid-response (or a scraper that read a partial
    // body) must surface a parse error, not a silently shortened page.
    let schema = SchemaBuilder::new()
        .attribute(Attribute::boolean("x"))
        .finish()
        .unwrap();
    let resp = QueryResponse {
        rows: vec![Row::new(1, vec![0], vec![]), Row::new(2, vec![1], vec![])],
        overflow: false,
        reported_count: None,
    };
    let full = render_results_page(&schema, &resp, 10);
    let cut = full
        .find("</table>")
        .expect("rendered page closes its table");
    let truncated = &full[..cut];
    let err = scrape_results_page(&schema, truncated).unwrap_err();
    assert!(
        matches!(&err, hdsampler_model::InterfaceError::Parse(msg) if msg.contains("unterminated")),
        "got {err:?}"
    );
}

#[test]
fn entity_bearing_headers_scrape_cleanly() {
    // Attribute and measure names carrying HTML metacharacters are
    // escaped into the header row; the scraper must still align columns.
    let schema = SchemaBuilder::new()
        .attribute(Attribute::categorical("make & \"model\"", ["a<b", "c&d"]).unwrap())
        .attribute(Attribute::boolean("<used>"))
        .measure(Measure::new("price & tax"))
        .finish()
        .unwrap();
    let resp = QueryResponse {
        rows: vec![Row::new(7, vec![1, 0], vec![1.5])],
        overflow: true,
        reported_count: Some(12),
    };
    let html = render_results_page(&schema, &resp, 5);
    assert!(html.contains("&amp;"), "entities present in the page");
    let back = scrape_results_page(&schema, &html).unwrap();
    assert_eq!(back, resp);
}

#[test]
fn extreme_measures_survive_the_page() {
    // Denormals, infinities, negative zero: everything except NaN.
    let schema = SchemaBuilder::new()
        .attribute(Attribute::boolean("x"))
        .measure(Measure::new("m"))
        .finish()
        .unwrap();
    for value in [
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MIN_POSITIVE,
        -0.0,
        f64::MAX,
        f64::MIN,
        1.0e-308,
    ] {
        let resp = QueryResponse {
            rows: vec![Row::new(1, vec![0], vec![value])],
            overflow: false,
            reported_count: None,
        };
        let html = render_results_page(&schema, &resp, 10);
        let back = scrape_results_page(&schema, &html).unwrap();
        assert_eq!(
            back.rows[0].measures[0].to_bits(),
            value.to_bits(),
            "value {value}"
        );
    }
}
