//! [`CoopDriver`]: one OS thread, hundreds of in-flight form submissions.
//!
//! The threaded [`MultiSiteDriver`](crate::driver::MultiSiteDriver) buys
//! request overlap by spending one OS thread per walker — each blocking
//! [`Transport::fetch`] parks a whole stack while its single request rides
//! the wire. That is the wrong currency for a scraper whose cost model is
//! round trips: at fleet scale the interesting number is how many
//! submissions are in flight, and threads cap it at "how many stacks fit".
//!
//! This driver multiplexes instead. Every walker is a
//! [`WalkMachine`](hdsampler_core::WalkMachine) — the HIDDEN-DB-SAMPLER
//! walk as a resumable state machine — parked whenever its next query is
//! on the wire:
//!
//! * a machine yields `NeedCount(query)`; the site's shared history cache
//!   is consulted first ([`CachingExecutor::try_classify`]) — a hit
//!   resumes the machine immediately without touching the wire;
//! * on a miss the query is submitted on the walker's [`ConnId`] of the
//!   site's [`AsyncTransport`] and the machine parks;
//! * completions are harvested with non-blocking polls and resumed in
//!   completion order; when nothing is ready, the driver blocks on (or,
//!   for virtual wires, advances to) the earliest outstanding completion.
//!
//! Causality is preserved across the cache: when a machine consumes a
//! cached fact, its connection's observed clock is floored at the site's
//! knowledge time ([`AsyncTransport::observe_now`]), so a follow-up
//! request can never depart before the completion whose result motivated
//! it — virtual wires would otherwise bill time-travelling walks.
//!
//! Seed for seed, walker (s, w) produces the *identical* sample sequence
//! under this driver and under the thread-per-walker driver: both run the
//! same machine over the same [`FleetConfig::walker_config`] seeds, and
//! the history cache answers are semantically equal to the wire's.
//!
//! ## Adversarial sites: backoff and work-stealing
//!
//! Against a hostile wire (throttling 429s, transient 5xx, dropped
//! connections — see [`crate::chaos`]) the driver retries instead of
//! failing the site: a transiently-failed fetch parks its walker in
//! *backoff* for the server-advertised `Retry-After` (or an exponential
//! schedule from the interface's [`RetryPolicy`](crate::chaos::RetryPolicy))
//! and resubmits the same logical query afterwards. On virtual wires the
//! wait is billed by flooring the walker's connection clock — no real time
//! passes; on real wires the walker genuinely waits out the interval while
//! the rest of the fleet keeps harvesting. Retries are charged to separate
//! `retries`/`backoff_vms` counters, never as extra logical queries.
//!
//! With [`CoopDriver::with_stealing`] enabled, sites that finish early
//! donate their walker slots to the hungriest still-running site: a fresh
//! seeded machine is spawned on a fresh connection whose clock is floored
//! at `max(receiver knowledge, donor elapsed)` — the stolen walker cannot
//! pretend to have started before the donor actually freed it. Stealing is
//! a data-structure move (a `Walker` pushed onto another site's vector),
//! not a thread handoff.

use hdsampler_core::{
    CachingExecutor, Classified, HitTier, QueryExecutor, SampleEvent, SampleSet, SampleSink,
    SamplerError, SamplerStats, StopReason, TraceEvent, TraceSink, Tracer, WalkMachine, WalkStep,
};
use hdsampler_model::{ConjunctiveQuery, FormInterface, InterfaceError, QueryResponse};

use crate::adapter::{QueryHandle, QueryPoll, WebFormInterface};
use crate::aio::{AsyncTransport, ConnId};
use crate::driver::{FleetConfig, FleetReport, SiteReport, SiteTask};
use crate::transport::{Clocked, Transport};

/// One in-flight fetch a walker is parked on.
struct Pending {
    handle: QueryHandle,
    query: ConjunctiveQuery,
    /// Virtual completion time (0 on real wires).
    ready_at: u64,
    /// Site-wide submission sequence number (completion-order tie-break).
    seq: u64,
    /// Trace span id tying the submit event to its completion (0 when
    /// tracing is off).
    span: u64,
}

/// A walker waiting out a retry backoff on a *real* wire. (Virtual wires
/// never park here: their backoff is billed by flooring the connection
/// clock and the query is resubmitted immediately.)
struct Backoff {
    /// The logical query to resubmit — already charged once; the retry
    /// goes through [`WebFormInterface::resubmit_query`].
    query: ConjunctiveQuery,
    /// Wall-clock instant the walker may hit the site again.
    release_at: std::time::Instant,
}

/// One cooperative walker: a parked or runnable walk machine riding a
/// connection.
struct Walker {
    machine: WalkMachine,
    conn: ConnId,
    pending: Option<Pending>,
    /// Set while waiting out a retry backoff (real wires only).
    backoff: Option<Backoff>,
    /// Consecutive transient failures of the current logical query.
    attempts: u32,
    /// Listing keys of this walker's samples, in production order.
    keys: Vec<u64>,
}

/// Everything one site needs while being driven.
struct SiteState<'a, T: Transport + Clocked> {
    six: usize,
    name: &'a str,
    iface: &'a WebFormInterface<T>,
    /// The task's per-site streaming sink, observed at every accepted
    /// sample.
    sink: Option<&'a mut dyn SampleSink>,
    exec: CachingExecutor<&'a WebFormInterface<T>>,
    walkers: Vec<Walker>,
    samples: SampleSet,
    /// Highest completion time any of this site's fetches has reached —
    /// the causal floor for cache-hit resumes.
    knowledge_ms: u64,
    connections: usize,
    stopped: Option<StopReason>,
    next_seq: u64,
    /// Walkers stolen *into* this site from finished donors.
    steals: u64,
    /// Walker slots this site has donated since stopping.
    donated: usize,
}

/// A harvested completion, processed in completion order.
struct Harvested {
    wix: usize,
    query: ConjunctiveQuery,
    ready_at: u64,
    seq: u64,
    span: u64,
    /// Wire wait spent queued behind earlier requests on the connection.
    queued_ms: u64,
    /// Wire service time of the fetch itself.
    service_ms: u64,
    result: Result<QueryResponse, InterfaceError>,
}

/// Per-site detail only the cooperative driver can report.
#[derive(Debug)]
pub struct CoopSiteDetail {
    /// Each walker's sample keys in production order — deterministic per
    /// (seed, site, walker), and identical to what the same walker
    /// produces under the thread-per-walker driver.
    pub per_walker_keys: Vec<Vec<u64>>,
    /// Wire connections the site's walkers shared.
    pub connections: usize,
    /// Merged walker statistics (executor-view counters from the site's
    /// shared cache).
    pub stats: SamplerStats,
}

/// How long one reactor wait inside a stall lasts before the driver
/// re-polls the whole fleet (ms). Short enough that completions on
/// *other* sites' transports — which the wait cannot see — are picked up
/// promptly.
const STALL_WAIT_MS: u64 = 100;

/// Cumulative reactor-wait time on one stalled fetch before the driver
/// falls back to a blocking completion. Liveness backstop for a server
/// that accepts requests and then goes silent: the blocking path's own
/// transport deadline then fails the fetch cleanly instead of the fleet
/// spinning on readiness forever.
const STALL_FORCE_MS: u64 = 30_000;

/// Cross-iteration memory of reactor waits spent on one stalled fetch,
/// keyed by (site, submission seq) — seq is unique per site, so the key
/// never aliases two fetches.
struct StallTracker {
    key: Option<(usize, u64)>,
    waited_ms: u64,
}

impl StallTracker {
    fn reset(&mut self) {
        self.key = None;
        self.waited_ms = 0;
    }
}

/// Drives S sites × W walker machines from a single thread.
#[derive(Debug)]
pub struct CoopDriver {
    cfg: FleetConfig,
    conns_per_site: Option<usize>,
    steal: bool,
}

impl CoopDriver {
    /// Cooperative driver with the given fleet configuration. By default
    /// every walker rides its own connection and work-stealing is off.
    pub fn new(cfg: FleetConfig) -> Self {
        CoopDriver {
            cfg,
            conns_per_site: None,
            steal: false,
        }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Enable cross-site work-stealing: when a site finishes (target
    /// reached, budget exhausted, or failed), its walker slots are donated
    /// to the hungriest still-running site. Each stolen slot spawns a
    /// fresh seeded [`WalkMachine`] on a fresh connection floored at
    /// `max(receiver knowledge, donor elapsed)`, and bumps the receiving
    /// site's `steals` counter.
    pub fn with_stealing(mut self, steal: bool) -> Self {
        self.steal = steal;
        self
    }

    /// Share `conns` wire connections per site among the walkers
    /// (round-robin). Fewer connections than walkers pipelines several
    /// requests per connection — HTTP/1.1 FIFO on real wires, serialized
    /// virtual service on simulated ones.
    pub fn with_connections(mut self, conns: usize) -> Self {
        assert!(conns >= 1, "need at least one connection per site");
        self.conns_per_site = Some(conns);
        self
    }

    /// Drive every site to its target from the calling thread.
    pub fn run<T>(&self, sites: &mut [SiteTask<T>]) -> FleetReport
    where
        T: Transport + AsyncTransport + Clocked,
    {
        self.run_observed(sites, &mut []).0
    }

    /// [`CoopDriver::run`], also returning per-walker detail.
    pub fn run_with_details<T>(
        &self,
        sites: &mut [SiteTask<T>],
    ) -> (FleetReport, Vec<CoopSiteDetail>)
    where
        T: Transport + AsyncTransport + Clocked,
    {
        self.run_observed(sites, &mut [])
    }

    /// [`CoopDriver::run`] with streaming observation. Per-site
    /// [`SiteTask`] sinks observe their site's samples in acceptance
    /// order; `run_sinks` observe every site's samples in the fleet's
    /// global completion order. The driver is single-threaded, so the
    /// run-level sinks are observed directly — no forking.
    pub fn run_observed<T>(
        &self,
        sites: &mut [SiteTask<T>],
        run_sinks: &mut [&mut dyn SampleSink],
    ) -> (FleetReport, Vec<CoopSiteDetail>)
    where
        T: Transport + AsyncTransport + Clocked,
    {
        self.run_traced(sites, run_sinks, &mut [])
    }

    /// [`CoopDriver::run_observed`], additionally emitting a
    /// [`TraceEvent`] stream into `trace_sinks`: cache hit/miss
    /// classifications, wire submit/complete spans with their
    /// queue/service split, retry backoffs, stall resolutions and
    /// work-steals — every timestamp a virtual-clock reading, so a
    /// seeded virtual-wire run traces bit-identically. With no trace
    /// sinks attached no event is even constructed, and the sample
    /// sequence is identical either way.
    pub fn run_traced<T>(
        &self,
        sites: &mut [SiteTask<T>],
        run_sinks: &mut [&mut dyn SampleSink],
        trace_sinks: &mut [&mut dyn TraceSink],
    ) -> (FleetReport, Vec<CoopSiteDetail>)
    where
        T: Transport + AsyncTransport + Clocked,
    {
        let mut tracer = Tracer::new(trace_sinks);
        let walkers_per_site = self.cfg.walkers_per_site.max(1);
        let conns_per_site = self
            .conns_per_site
            .unwrap_or(walkers_per_site)
            .min(walkers_per_site);

        let mut states: Vec<SiteState<'_, T>> = sites
            .iter_mut()
            .enumerate()
            .map(|(six, task)| {
                let SiteTask {
                    name,
                    iface,
                    sink,
                    l2,
                } = task;
                let iface: &WebFormInterface<T> = iface;
                let mut exec = CachingExecutor::new(iface);
                if let Some(log) = l2 {
                    exec = exec.with_l2(std::sync::Arc::clone(log));
                    if tracer.enabled() {
                        tracer.emit(&TraceEvent {
                            kind: "l2".into(),
                            detail: "load".into(),
                            site: six as u64,
                            seq: exec.history_stats().l2_loads,
                            ..TraceEvent::default()
                        });
                    }
                }
                let conn_ids: Vec<ConnId> = (0..conns_per_site).map(|_| iface.connect()).collect();
                let walkers = (0..walkers_per_site)
                    .map(|w| Walker {
                        machine: WalkMachine::new(iface.schema(), self.cfg.walker_config(six, w))
                            .expect("fleet walker configuration is valid"),
                        conn: conn_ids[w % conn_ids.len()],
                        pending: None,
                        backoff: None,
                        attempts: 0,
                        keys: Vec::new(),
                    })
                    .collect();
                SiteState {
                    six,
                    name,
                    iface,
                    sink: sink.as_deref_mut(),
                    exec,
                    walkers,
                    samples: SampleSet::new(),
                    knowledge_ms: 0,
                    connections: conns_per_site,
                    stopped: if self.cfg.target_per_site == 0 {
                        Some(StopReason::TargetReached)
                    } else {
                        None
                    },
                    next_seq: 0,
                    steals: 0,
                    donated: 0,
                }
            })
            .collect();

        // Kick-off: run every machine until it parks on the wire (or the
        // site finishes straight from history).
        for st in &mut states {
            for wix in 0..st.walkers.len() {
                if st.stopped.is_some() {
                    break;
                }
                let step = st.walkers[wix].machine.step();
                self.advance(st, wix, step, run_sinks, &mut tracer);
            }
        }

        let mut stall = StallTracker {
            key: None,
            waited_ms: 0,
        };
        loop {
            let mut all_done = true;
            let mut progress = false;
            for st in &mut states {
                if st.stopped.is_none() {
                    progress |= self.harvest(st, run_sinks, &mut tracer);
                }
                all_done &= st.stopped.is_some();
            }
            if all_done {
                break;
            }
            if self.steal {
                self.rebalance(&mut states, run_sinks, &mut tracer);
            }
            if progress {
                stall.reset();
            } else {
                // Nothing pollable anywhere: wait for (real wire with a
                // reactor), block on (real wire without one) or advance
                // to (virtual wire) the earliest outstanding completion,
                // keeping the fleet in causal order.
                self.force_earliest(&mut states, run_sinks, &mut tracer, &mut stall);
            }
        }

        let mut reports = Vec::with_capacity(states.len());
        let mut details = Vec::with_capacity(states.len());
        for st in states {
            // Walkers are parked for good; reap their keep-alive sockets.
            st.iface.transport().close_idle();
            let mut stats = SamplerStats::default();
            for w in &st.walkers {
                stats.merge_worker(&w.machine.stats());
            }
            stats.requests = st.exec.requests();
            stats.queries_issued = st.exec.queries_issued();
            stats.retries = st.iface.retries();
            stats.backoff_ms = st.iface.backoff_ms();
            details.push(CoopSiteDetail {
                per_walker_keys: st.walkers.into_iter().map(|w| w.keys).collect(),
                connections: st.connections,
                stats,
            });
            reports.push(SiteReport {
                name: st.name.to_owned(),
                samples: st.samples,
                requests: st.exec.requests(),
                queries_issued: st.exec.queries_issued(),
                history_hits: st.exec.history_stats().total_hits(),
                elapsed_ms: st.iface.transport().elapsed_ms(),
                retries: stats.retries,
                backoff_vms: stats.backoff_ms,
                steals: st.steals,
                stopped: st
                    .stopped
                    .expect("driver loop ends with every site stopped"),
                stats,
                history: st.exec.history_stats(),
            });
        }
        let fleet_elapsed_ms = reports.iter().map(|r| r.elapsed_ms).max().unwrap_or(0);
        (
            FleetReport {
                sites: reports,
                fleet_elapsed_ms,
                concurrent: true,
            },
            details,
        )
    }

    /// Run one walker until it parks on the wire, produces past the site
    /// target, or fails. History hits are consumed inline — they cost no
    /// wire time, only a causal floor on the walker's clock. Accepted
    /// samples stream into the site's sink and the run-level sinks at the
    /// moment they are collected.
    fn advance<T>(
        &self,
        st: &mut SiteState<'_, T>,
        wix: usize,
        mut step: WalkStep,
        run_sinks: &mut [&mut dyn SampleSink],
        tracer: &mut Tracer<'_, '_>,
    ) where
        T: Transport + AsyncTransport + Clocked,
    {
        loop {
            if st.stopped.is_some() {
                return;
            }
            match step {
                WalkStep::NeedCount(query) => {
                    if let Some(hit) = st.exec.try_classify_stamped(&query) {
                        // Resumed from history without touching the wire.
                        // The fact may derive from a completion on another
                        // connection; floor this walker's clock at the
                        // *answering fact's* learn time — the exact causal
                        // floor — so its next wire request cannot depart
                        // before its cause. Facts loaded from L2 predate
                        // the run and floor at 0: a warm-started walker
                        // pays no phantom wait for knowledge it had before
                        // the first fetch departed.
                        st.iface
                            .transport()
                            .observe_now(st.walkers[wix].conn, hit.learned_at);
                        if tracer.enabled() {
                            if hit.tier == HitTier::L2 {
                                tracer.emit(&TraceEvent {
                                    kind: "l2".into(),
                                    detail: "hit".into(),
                                    site: st.six as u64,
                                    walker: wix as u64,
                                    conn: st.walkers[wix].conn.index() as u64,
                                    at_ms: hit.learned_at,
                                    ..TraceEvent::default()
                                });
                            }
                            tracer.emit(&TraceEvent {
                                kind: "cache".into(),
                                detail: "hit".into(),
                                site: st.six as u64,
                                walker: wix as u64,
                                conn: st.walkers[wix].conn.index() as u64,
                                at_ms: hit.learned_at,
                                ..TraceEvent::default()
                            });
                        }
                        step = st.walkers[wix].machine.resume(Ok(hit.answer));
                    } else {
                        let handle = st.iface.submit_query(st.walkers[wix].conn, &query);
                        let ready_at = handle.ready_at_ms();
                        let seq = st.next_seq;
                        st.next_seq += 1;
                        let mut span = 0;
                        if tracer.enabled() {
                            span = tracer.next_span();
                            let conn = st.walkers[wix].conn.index() as u64;
                            if st.exec.l2_log().is_some() {
                                tracer.emit(&TraceEvent {
                                    kind: "l2".into(),
                                    detail: "miss".into(),
                                    site: st.six as u64,
                                    walker: wix as u64,
                                    conn,
                                    at_ms: st.knowledge_ms,
                                    ..TraceEvent::default()
                                });
                            }
                            tracer.emit(&TraceEvent {
                                kind: "cache".into(),
                                detail: "miss".into(),
                                site: st.six as u64,
                                walker: wix as u64,
                                conn,
                                at_ms: st.knowledge_ms,
                                ..TraceEvent::default()
                            });
                            tracer.emit(&TraceEvent {
                                kind: "wire".into(),
                                detail: "submit".into(),
                                span,
                                site: st.six as u64,
                                walker: wix as u64,
                                conn,
                                at_ms: ready_at
                                    .saturating_sub(handle.service_ms() + handle.queued_ms()),
                                ..TraceEvent::default()
                            });
                        }
                        st.walkers[wix].pending = Some(Pending {
                            handle,
                            query,
                            ready_at,
                            seq,
                            span,
                        });
                        return;
                    }
                }
                WalkStep::Sample(s) => {
                    st.walkers[wix].keys.push(s.row.key);
                    if tracer.enabled() {
                        tracer.emit(&TraceEvent {
                            kind: "sample".into(),
                            site: st.six as u64,
                            walker: wix as u64,
                            seq: st.samples.len() as u64 + 1,
                            at_ms: st.knowledge_ms,
                            ..TraceEvent::default()
                        });
                    }
                    let ev = SampleEvent {
                        sample: &s,
                        site: st.six,
                        walker: wix,
                        collected: st.samples.len() + 1,
                        target: self.cfg.target_per_site,
                        queries: st.exec.queries_issued(),
                        requests: st.exec.requests(),
                    };
                    if let Some(sink) = st.sink.as_deref_mut() {
                        sink.observe(&ev);
                    }
                    for sink in run_sinks.iter_mut() {
                        sink.observe(&ev);
                    }
                    st.samples.push(s);
                    if st.samples.len() >= self.cfg.target_per_site {
                        Self::stop_site(st, StopReason::TargetReached);
                        return;
                    }
                    step = st.walkers[wix].machine.step();
                }
                WalkStep::Failed(e) => {
                    if tracer.enabled() {
                        tracer.emit(&TraceEvent {
                            kind: "walk".into(),
                            detail: "failed".into(),
                            site: st.six as u64,
                            walker: wix as u64,
                            at_ms: st.knowledge_ms,
                            ..TraceEvent::default()
                        });
                    }
                    let reason = match e {
                        SamplerError::BudgetExhausted { .. } => StopReason::BudgetExhausted,
                        other => StopReason::Failed(other),
                    };
                    Self::stop_site(st, reason);
                    return;
                }
            }
        }
    }

    /// Poll this site's parked walkers, one pass per *connection*, and
    /// resume the completed ones in completion order. Returns whether
    /// anything completed.
    ///
    /// Requests on one connection resolve FIFO (HTTP/1.1 pipelining; the
    /// virtual clocks serialize identically), so walkers are visited in
    /// submission order per connection and a connection is abandoned for
    /// the sweep at its first still-pending fetch — later fetches cannot
    /// be ready, and re-polling them would re-drain an already-drained
    /// socket once per walker instead of once per connection.
    fn harvest<T>(
        &self,
        st: &mut SiteState<'_, T>,
        run_sinks: &mut [&mut dyn SampleSink],
        tracer: &mut Tracer<'_, '_>,
    ) -> bool
    where
        T: Transport + AsyncTransport + Clocked,
    {
        // Release real-wire backoffs whose waits have elapsed — the
        // resubmission parks the walker again, so it joins this sweep's
        // polls.
        let mut released = false;
        for wix in 0..st.walkers.len() {
            let due = st.walkers[wix]
                .backoff
                .as_ref()
                .is_some_and(|b| std::time::Instant::now() >= b.release_at);
            if due {
                Self::release_backoff(st, wix, tracer);
                released = true;
            }
        }

        let mut parked: Vec<usize> = (0..st.walkers.len())
            .filter(|&wix| st.walkers[wix].pending.is_some())
            .collect();
        parked.sort_by_key(|&wix| {
            let p = st.walkers[wix].pending.as_ref().expect("filtered parked");
            (st.walkers[wix].conn.index(), p.seq)
        });

        let mut ready: Vec<Harvested> = Vec::new();
        let mut skip_conn: Option<usize> = None;
        for wix in parked {
            let conn_ix = st.walkers[wix].conn.index();
            if skip_conn == Some(conn_ix) {
                continue;
            }
            let p = st.walkers[wix].pending.take().expect("walker is parked");
            let Pending {
                handle,
                query,
                ready_at,
                seq,
                span,
            } = p;
            let queued_ms = handle.queued_ms();
            let service_ms = handle.service_ms();
            match st.iface.poll_query(handle) {
                QueryPoll::Pending(handle) => {
                    st.walkers[wix].pending = Some(Pending {
                        handle,
                        query,
                        ready_at,
                        seq,
                        span,
                    });
                    skip_conn = Some(conn_ix);
                }
                QueryPoll::Ready(result) => ready.push(Harvested {
                    wix,
                    query,
                    ready_at,
                    seq,
                    span,
                    queued_ms,
                    service_ms,
                    result,
                }),
            }
        }
        if ready.is_empty() {
            return released;
        }
        // Completion order keeps the knowledge clock honest: a resume only
        // ever sees facts learned at or before its own floor.
        ready.sort_by_key(|h| (h.ready_at, h.seq));
        for h in ready {
            self.finish_fetch(st, h, run_sinks, tracer);
        }
        true
    }

    /// Resubmit a walker whose retry backoff has elapsed (real wires
    /// only): same logical query, new fetch, no new query charge.
    fn release_backoff<T>(st: &mut SiteState<'_, T>, wix: usize, tracer: &mut Tracer<'_, '_>)
    where
        T: Transport + AsyncTransport + Clocked,
    {
        let b = st.walkers[wix]
            .backoff
            .take()
            .expect("walker is backing off");
        let handle = st.iface.resubmit_query(st.walkers[wix].conn, &b.query);
        let ready_at = handle.ready_at_ms();
        let seq = st.next_seq;
        st.next_seq += 1;
        let mut span = 0;
        if tracer.enabled() {
            span = tracer.next_span();
            tracer.emit(&TraceEvent {
                kind: "wire".into(),
                detail: "submit".into(),
                span,
                site: st.six as u64,
                walker: wix as u64,
                conn: st.walkers[wix].conn.index() as u64,
                at_ms: ready_at.saturating_sub(handle.service_ms() + handle.queued_ms()),
                ..TraceEvent::default()
            });
        }
        st.walkers[wix].pending = Some(Pending {
            handle,
            query: b.query,
            ready_at,
            seq,
            span,
        });
    }

    /// Feed one wire completion back: teach the cache, then run the
    /// owning walker until it parks again.
    fn finish_fetch<T>(
        &self,
        st: &mut SiteState<'_, T>,
        h: Harvested,
        run_sinks: &mut [&mut dyn SampleSink],
        tracer: &mut Tracer<'_, '_>,
    ) where
        T: Transport + AsyncTransport + Clocked,
    {
        st.knowledge_ms = st.knowledge_ms.max(h.ready_at);
        if st.stopped.is_some() {
            // The site finished while this page was in flight; the fetch
            // was charged either way — only the result is discarded.
            return;
        }
        if tracer.enabled() {
            tracer.emit(&TraceEvent {
                kind: "wire".into(),
                detail: "complete".into(),
                span: h.span,
                site: st.six as u64,
                walker: h.wix as u64,
                conn: st.walkers[h.wix].conn.index() as u64,
                at_ms: h.ready_at,
                dur_ms: h.queued_ms + h.service_ms,
                queue_ms: h.queued_ms,
                ..TraceEvent::default()
            });
        }
        let answer = match h.result {
            Ok(resp) => {
                st.walkers[h.wix].attempts = 0;
                let classified = Classified::from_response(resp);
                // Stamp the fact with its wire completion time: that is
                // the instant the knowledge came into being, and the
                // exact causal floor for any walker that later consumes
                // it from history.
                st.exec
                    .record_response_at(&h.query, &classified, h.ready_at);
                if tracer.enabled() && st.exec.l2_log().is_some() {
                    tracer.emit(&TraceEvent {
                        kind: "l2".into(),
                        detail: "put".into(),
                        span: h.span,
                        site: st.six as u64,
                        walker: h.wix as u64,
                        conn: st.walkers[h.wix].conn.index() as u64,
                        at_ms: h.ready_at,
                        ..TraceEvent::default()
                    });
                }
                Ok(classified)
            }
            Err(e) => {
                let policy = st.iface.retry_policy();
                if e.is_transient() && st.walkers[h.wix].attempts < policy.max_retries {
                    // Retry instead of failing the walk: back off for the
                    // server-advertised interval (or the policy's
                    // exponential schedule) and resubmit the same logical
                    // query. The retry is charged to the interface's
                    // retry/backoff counters, never as a new query.
                    let wait = policy.backoff_ms(st.walkers[h.wix].attempts, e.retry_after_ms());
                    st.walkers[h.wix].attempts += 1;
                    st.iface.note_retry(wait);
                    if tracer.enabled() {
                        tracer.emit(&TraceEvent {
                            kind: "retry".into(),
                            detail: "backoff".into(),
                            span: h.span,
                            site: st.six as u64,
                            walker: h.wix as u64,
                            conn: st.walkers[h.wix].conn.index() as u64,
                            at_ms: h.ready_at,
                            dur_ms: wait,
                            ..TraceEvent::default()
                        });
                    }
                    if st.iface.wire_is_virtual() {
                        // Bill the wait by flooring the walker's connection
                        // clock at the release time, then resubmit now —
                        // virtual time jumps forward for free.
                        st.iface
                            .transport()
                            .observe_now(st.walkers[h.wix].conn, h.ready_at.saturating_add(wait));
                        let handle = st.iface.resubmit_query(st.walkers[h.wix].conn, &h.query);
                        let ready_at = handle.ready_at_ms();
                        let seq = st.next_seq;
                        st.next_seq += 1;
                        let mut span = 0;
                        if tracer.enabled() {
                            span = tracer.next_span();
                            tracer.emit(&TraceEvent {
                                kind: "wire".into(),
                                detail: "submit".into(),
                                span,
                                site: st.six as u64,
                                walker: h.wix as u64,
                                conn: st.walkers[h.wix].conn.index() as u64,
                                at_ms: ready_at
                                    .saturating_sub(handle.service_ms() + handle.queued_ms()),
                                ..TraceEvent::default()
                            });
                        }
                        st.walkers[h.wix].pending = Some(Pending {
                            handle,
                            query: h.query,
                            ready_at,
                            seq,
                            span,
                        });
                    } else {
                        // A real server means a real wait: park the walker
                        // until the interval has genuinely elapsed.
                        st.walkers[h.wix].backoff = Some(Backoff {
                            query: h.query,
                            release_at: std::time::Instant::now()
                                + std::time::Duration::from_millis(wait),
                        });
                    }
                    return;
                }
                st.walkers[h.wix].attempts = 0;
                Err(e)
            }
        };
        let step = st.walkers[h.wix].machine.resume(answer);
        self.advance(st, h.wix, step, run_sinks, tracer);
    }

    /// Resolve the causally-earliest outstanding fetch fleet-wide (min
    /// virtual completion time, then submission order).
    ///
    /// On a virtual wire the only way forward is a blocking
    /// `complete_query` — completions live one clock advance away. On a
    /// live wire with a readiness reactor the driver instead parks in one
    /// `epoll_wait` across all of the stalled site's connections and lets
    /// the next harvest pass take whatever completed first; the blocking
    /// completion survives only as the [`STALL_FORCE_MS`] liveness
    /// fallback against a silent server.
    fn force_earliest<T>(
        &self,
        states: &mut [SiteState<'_, T>],
        run_sinks: &mut [&mut dyn SampleSink],
        tracer: &mut Tracer<'_, '_>,
        stall: &mut StallTracker,
    ) where
        T: Transport + AsyncTransport + Clocked,
    {
        let mut best: Option<(usize, usize, u64, u64)> = None;
        for (six, st) in states.iter().enumerate() {
            if st.stopped.is_some() {
                continue;
            }
            for (wix, w) in st.walkers.iter().enumerate() {
                if let Some(p) = &w.pending {
                    if best.is_none_or(|(_, _, ra, sq)| (p.ready_at, p.seq) < (ra, sq)) {
                        best = Some((six, wix, p.ready_at, p.seq));
                    }
                }
            }
        }
        let Some((six, wix, _ready_at, seq)) = best else {
            // No fetch in flight anywhere: every unstopped site's walkers
            // are waiting out retry backoffs on a real wire. Sleep to the
            // earliest release and resubmit that walker.
            let mut due: Option<(usize, usize, std::time::Instant)> = None;
            for (six, st) in states.iter().enumerate() {
                if st.stopped.is_some() {
                    continue;
                }
                for (wix, w) in st.walkers.iter().enumerate() {
                    if let Some(b) = &w.backoff {
                        if due.is_none_or(|(.., at)| b.release_at < at) {
                            due = Some((six, wix, b.release_at));
                        }
                    }
                }
            }
            let Some((six, wix, at)) = due else {
                unreachable!("an unstopped site always has a parked or backing-off walker");
            };
            let now = std::time::Instant::now();
            if at > now {
                std::thread::sleep(at - now);
            }
            Self::release_backoff(&mut states[six], wix, tracer);
            return;
        };
        let key = (six, seq);
        let exhausted = stall.key == Some(key) && stall.waited_ms >= STALL_FORCE_MS;
        if !exhausted && !states[six].iface.wire_is_virtual() {
            let started = std::time::Instant::now();
            if states[six].iface.wait_ready(STALL_WAIT_MS).is_some() {
                let waited = (started.elapsed().as_millis() as u64).max(1);
                if stall.key == Some(key) {
                    stall.waited_ms += waited;
                } else {
                    stall.key = Some(key);
                    stall.waited_ms = waited;
                }
                if tracer.enabled() {
                    let st = &states[six];
                    let p = st.walkers[wix].pending.as_ref().expect("walker is parked");
                    tracer.emit(&TraceEvent {
                        kind: "stall".into(),
                        detail: "wait".into(),
                        span: p.span,
                        site: st.six as u64,
                        walker: wix as u64,
                        conn: st.walkers[wix].conn.index() as u64,
                        at_ms: p.ready_at,
                        dur_ms: waited,
                        ..TraceEvent::default()
                    });
                }
                return;
            }
        }
        stall.reset();
        let st = &mut states[six];
        let p = st.walkers[wix]
            .pending
            .take()
            .expect("selected walker is parked");
        if tracer.enabled() {
            tracer.emit(&TraceEvent {
                kind: "stall".into(),
                detail: "force".into(),
                span: p.span,
                site: st.six as u64,
                walker: wix as u64,
                conn: st.walkers[wix].conn.index() as u64,
                at_ms: p.ready_at,
                ..TraceEvent::default()
            });
        }
        let queued_ms = p.handle.queued_ms();
        let service_ms = p.handle.service_ms();
        let result = st.iface.complete_query(p.handle);
        self.finish_fetch(
            st,
            Harvested {
                wix,
                query: p.query,
                ready_at: p.ready_at,
                seq: p.seq,
                span: p.span,
                queued_ms,
                service_ms,
                result,
            },
            run_sinks,
            tracer,
        );
    }

    /// End a site: record why and cancel every in-flight fetch (the pages
    /// were charged; only their buffered results are released).
    fn stop_site<T>(st: &mut SiteState<'_, T>, reason: StopReason)
    where
        T: Transport + AsyncTransport + Clocked,
    {
        st.stopped = Some(reason);
        for w in &mut st.walkers {
            if let Some(p) = w.pending.take() {
                st.iface.cancel_query(p.handle);
            }
            w.backoff = None;
            w.attempts = 0;
        }
    }

    /// Donate finished sites' walker slots to the hungriest running
    /// sites. Each freed slot spawns one fresh seeded machine on a fresh
    /// connection of the receiving site, floored at `max(receiver
    /// knowledge, donor elapsed)` — the stolen walker cannot pretend to
    /// have started before the donor actually freed it.
    fn rebalance<T>(
        &self,
        states: &mut [SiteState<'_, T>],
        run_sinks: &mut [&mut dyn SampleSink],
        tracer: &mut Tracer<'_, '_>,
    ) where
        T: Transport + AsyncTransport + Clocked,
    {
        // Newly-freed slots, each carrying its donor's elapsed time.
        let mut free: Vec<u64> = Vec::new();
        for st in states.iter_mut() {
            if st.stopped.is_some() && st.donated < st.walkers.len() {
                let elapsed = st.iface.transport().elapsed_ms();
                for _ in st.donated..st.walkers.len() {
                    free.push(elapsed);
                }
                st.donated = st.walkers.len();
            }
        }
        for donor_elapsed in free {
            // The hungriest site: most samples still to collect.
            let Some(rix) = states
                .iter()
                .enumerate()
                .filter(|(_, st)| st.stopped.is_none())
                .max_by_key(|(_, st)| self.cfg.target_per_site.saturating_sub(st.samples.len()))
                .map(|(i, _)| i)
            else {
                return;
            };
            let st = &mut states[rix];
            let wix = st.walkers.len();
            let machine = WalkMachine::new(st.iface.schema(), self.cfg.walker_config(st.six, wix))
                .expect("fleet walker configuration is valid");
            let conn = st.iface.connect();
            st.iface
                .transport()
                .observe_now(conn, st.knowledge_ms.max(donor_elapsed));
            st.walkers.push(Walker {
                machine,
                conn,
                pending: None,
                backoff: None,
                attempts: 0,
                keys: Vec::new(),
            });
            st.connections += 1;
            st.steals += 1;
            if tracer.enabled() {
                tracer.emit(&TraceEvent {
                    kind: "steal".into(),
                    detail: "grant".into(),
                    site: st.six as u64,
                    walker: wix as u64,
                    conn: conn.index() as u64,
                    at_ms: st.knowledge_ms.max(donor_elapsed),
                    ..TraceEvent::default()
                });
            }
            let step = st.walkers[wix].machine.step();
            self.advance(st, wix, step, run_sinks, tracer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{LatencyTransport, LocalSite};
    use hdsampler_core::{DirectExecutor, HdsSampler, Sampler};
    use hdsampler_hidden_db::HiddenDb;
    use hdsampler_workload::figure1_db;
    use std::sync::Arc;

    fn figure1_task(
        name: &str,
        latency_ms: u64,
    ) -> SiteTask<LatencyTransport<LocalSite<HiddenDb>>> {
        let db = figure1_db(1);
        let schema = Arc::new(db.schema().clone());
        let site = LocalSite::new(db, Arc::clone(&schema));
        let wire = LatencyTransport::new(site, latency_ms);
        SiteTask::new(name, WebFormInterface::new(wire, schema, 1, false))
    }

    fn vehicles_task(
        name: &str,
        seed: u64,
        latency_ms: u64,
        budget: Option<u64>,
    ) -> SiteTask<LatencyTransport<LocalSite<HiddenDb>>> {
        use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};
        let mut db_cfg = DbConfig::no_counts().with_k(50);
        if let Some(b) = budget {
            db_cfg = db_cfg.with_budget(b);
        }
        let db = WorkloadSpec::vehicles(VehiclesSpec::compact(500, seed), db_cfg).build();
        let schema = Arc::new(db.schema().clone());
        let k = db.result_limit();
        let site = LocalSite::new(db, Arc::clone(&schema));
        let wire = LatencyTransport::new(site, latency_ms);
        SiteTask::new(name, WebFormInterface::new(wire, schema, k, false))
    }

    #[test]
    fn coop_driver_reaches_targets_on_one_thread() {
        let cfg = FleetConfig {
            walkers_per_site: 4,
            target_per_site: 40,
            seed: 11,
            ..FleetConfig::default()
        };
        let mut sites: Vec<_> = (0..3)
            .map(|i| vehicles_task(&format!("s{i}"), 90 + i as u64, 100, None))
            .collect();
        let (report, details) = CoopDriver::new(cfg).run_with_details(&mut sites);
        assert_eq!(report.total_samples(), 120);
        assert!(report.concurrent);
        for (site, detail) in report.sites.iter().zip(&details) {
            assert_eq!(site.stopped, StopReason::TargetReached);
            assert_eq!(detail.connections, 4);
            assert_eq!(
                detail.per_walker_keys.iter().map(Vec::len).sum::<usize>(),
                site.samples.len(),
                "every sample is attributed to exactly one walker"
            );
            assert!(site.requests >= site.queries_issued);
        }
        assert_eq!(
            report.fleet_elapsed_ms,
            report.sites.iter().map(|s| s.elapsed_ms).max().unwrap(),
            "coop fleet time is the max over sites"
        );
    }

    #[test]
    fn per_walker_sequences_match_the_thread_walker_sampler() {
        // Walker (s, w) must produce the identical seeded sample sequence
        // under the cooperative driver and under a standalone HdsSampler
        // with the same FleetConfig::walker_config seed — the guarantee
        // that makes the two drivers interchangeable.
        let cfg = FleetConfig {
            walkers_per_site: 3,
            target_per_site: 45,
            seed: 77,
            slider: 0.2,
            ..FleetConfig::default()
        };
        let mut sites = vec![vehicles_task("seq", 5, 50, None)];
        let (_, details) = CoopDriver::new(cfg.clone()).run_with_details(&mut sites);
        let per_walker = &details[0].per_walker_keys;
        assert!(per_walker.iter().any(|k| !k.is_empty()));

        for (w, keys) in per_walker.iter().enumerate() {
            // A fresh in-process twin with the same data seed.
            let twin = vehicles_task("twin", 5, 50, None);
            let mut reference =
                HdsSampler::new(DirectExecutor::new(&twin.iface), cfg.walker_config(0, w)).unwrap();
            let expect: Vec<u64> = (0..keys.len())
                .map(|_| reference.next_sample().unwrap().row.key)
                .collect();
            assert_eq!(keys, &expect, "walker {w} diverged from its seed");
        }
    }

    #[test]
    fn shared_connections_pipeline_and_serialize() {
        // 8 walkers on 2 connections: requests pipeline 4-deep per
        // connection; the virtual elapsed must exceed a single RTT (they
        // serialize per connection) but be far below the serial sum.
        let cfg = FleetConfig {
            walkers_per_site: 8,
            target_per_site: 32,
            seed: 3,
            ..FleetConfig::default()
        };
        let mut sites = vec![figure1_task("pipe", 100)];
        let (report, details) = CoopDriver::new(cfg)
            .with_connections(2)
            .run_with_details(&mut sites);
        assert_eq!(details[0].connections, 2);
        assert_eq!(report.total_samples(), 32);
        let site = &report.sites[0];
        assert!(site.elapsed_ms >= 100);
        // 2 connections must not be slower than 2 serial walkers' worth.
        let serial_bound = site.queries_issued * 100 / 2 + 100;
        assert!(
            site.elapsed_ms <= serial_bound,
            "pipelining must overlap: {} vs {serial_bound}",
            site.elapsed_ms
        );
    }

    #[test]
    fn one_thread_matches_threaded_driver_throughput_at_equal_walkers() {
        let cfg = FleetConfig {
            walkers_per_site: 4,
            target_per_site: 60,
            seed: 21,
            slider: 0.3,
            ..FleetConfig::default()
        };
        let threaded = MultiSiteDriver::new(cfg.clone())
            .run_concurrent(&mut [vehicles_task("t", 9, 100, None)]);
        let coop = CoopDriver::new(cfg).run(&mut [vehicles_task("c", 9, 100, None)]);
        assert_eq!(threaded.total_samples(), coop.total_samples());
        // The cooperative driver pays an honest causal floor on cache-hit
        // resumes that the threaded driver cannot account; parity within
        // 25% (it is usually well within a few percent).
        assert!(
            coop.samples_per_vsec() >= threaded.samples_per_vsec() * 0.75,
            "coop {:.1} smp/vs vs threaded {:.1} smp/vs",
            coop.samples_per_vsec(),
            threaded.samples_per_vsec()
        );
    }

    #[test]
    fn budget_exhaustion_stops_a_site_with_partial_results() {
        let cfg = FleetConfig {
            walkers_per_site: 4,
            target_per_site: 10_000,
            seed: 5,
            ..FleetConfig::default()
        };
        let mut sites = [
            vehicles_task("starved", 1, 50, Some(60)),
            vehicles_task("ok", 2, 50, None),
        ];
        let cfg_ok = FleetConfig {
            target_per_site: 25,
            ..cfg.clone()
        };
        // Drive the starved site alone first (mixed targets need two
        // runs; the driver applies one target fleet-wide).
        let report = CoopDriver::new(cfg).run(&mut sites[..1]);
        assert_eq!(report.sites[0].stopped, StopReason::BudgetExhausted);
        assert!(report.sites[0].samples.len() < 10_000);
        assert!(
            !report.sites[0].samples.is_empty(),
            "partial results survive"
        );
        // A healthy site is unaffected by the starved one's existence.
        let report = CoopDriver::new(cfg_ok).run(&mut sites[1..]);
        assert_eq!(report.sites[0].stopped, StopReason::TargetReached);
    }

    #[test]
    fn warm_history_resumes_without_touching_the_wire() {
        // Figure 1 has 8 possible queries; after a warm-up pass the cache
        // can answer whole walks. Charged fetches must plateau while
        // samples keep flowing — the "history hits resume immediately"
        // half of the design.
        let cfg = FleetConfig {
            walkers_per_site: 2,
            target_per_site: 200,
            seed: 13,
            ..FleetConfig::default()
        };
        let mut sites = vec![figure1_task("warm", 100)];
        let report = CoopDriver::new(cfg).run(&mut sites);
        let site = &report.sites[0];
        assert_eq!(site.samples.len(), 200);
        assert!(
            site.history_hits > site.queries_issued,
            "a tiny site must be answered mostly from history: {} hits vs {} fetches",
            site.history_hits,
            site.queries_issued
        );
        // All 200 samples in far fewer round trips than walks.
        assert!(site.queries_issued < 100);
    }

    use crate::driver::MultiSiteDriver;

    fn chaos_task(
        name: &str,
        db_seed: u64,
        spec: crate::chaos::ChaosSpec,
    ) -> SiteTask<crate::chaos::ChaosTransport<LocalSite<HiddenDb>>> {
        use crate::chaos::{ChaosTransport, RetryPolicy};
        use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};
        let db = WorkloadSpec::vehicles(
            VehiclesSpec::compact(500, db_seed),
            DbConfig::no_counts().with_k(50),
        )
        .build();
        let schema = Arc::new(db.schema().clone());
        let k = db.result_limit();
        let site = LocalSite::new(db, Arc::clone(&schema));
        let wire = ChaosTransport::new(site, spec);
        SiteTask::new(
            name,
            WebFormInterface::new(wire, schema, k, false).with_retry(RetryPolicy {
                max_retries: 12,
                base_backoff_ms: 25,
                max_backoff_ms: 800,
            }),
        )
    }

    #[test]
    fn backoff_rides_out_a_hostile_site() {
        use crate::chaos::ChaosSpec;
        let cfg = FleetConfig {
            walkers_per_site: 3,
            target_per_site: 40,
            seed: 9,
            ..FleetConfig::default()
        };
        let spec = ChaosSpec {
            seed: 1,
            latency_ms: 20,
            throttle: 0.25,
            retry_after_ms: 100,
            fail: 0.1,
            drop: 0.05,
            ..ChaosSpec::default()
        };
        let run = || {
            let mut sites = vec![chaos_task("hostile", 77, spec.clone())];
            let report = CoopDriver::new(cfg.clone()).run(&mut sites);
            let counters = sites[0].iface.transport().counters();
            (report, counters)
        };
        let (report, counters) = run();
        let site = &report.sites[0];
        assert_eq!(site.stopped, StopReason::TargetReached);
        assert_eq!(site.samples.len(), 40);
        assert!(
            counters.throttles > 0 && counters.transient_fails > 0 && counters.drops > 0,
            "every enabled fault class fired: {counters:?}"
        );
        // Every fault is retried exactly once, except faults on fetches
        // still in flight when the target landed (discarded, ≤ 1/walker).
        let faults = counters.throttles + counters.transient_fails + counters.drops;
        assert!(
            site.retries <= faults && site.retries + cfg.walkers_per_site as u64 >= faults,
            "retries {} vs faults {faults}",
            site.retries
        );
        assert!(site.backoff_vms > 0, "backoff time is billed");
        assert_eq!(site.stats.retries, site.retries);
        assert_eq!(site.stats.backoff_ms, site.backoff_vms);
        // Backoff is billed on the connection clocks: elapsed (max over
        // connections) is at least the per-connection share of the total.
        assert!(
            site.elapsed_ms >= site.backoff_vms / cfg.walkers_per_site as u64,
            "virtual backoff appears on the wire clock: {} vs {}",
            site.elapsed_ms,
            site.backoff_vms
        );
        // Chaos is a pure function of (seed, request index) and the driver
        // is deterministic: the whole run replays identically.
        let (again, counters_again) = run();
        assert_eq!(counters, counters_again);
        assert_eq!(again.sites[0].retries, site.retries);
        assert_eq!(
            again.sites[0].samples.keys(),
            site.samples.keys(),
            "same seed, same samples — faults and all"
        );
    }

    #[test]
    fn stealing_reassigns_finished_sites_walkers() {
        use crate::chaos::ChaosSpec;
        let cfg = FleetConfig {
            walkers_per_site: 4,
            target_per_site: 60,
            seed: 2,
            ..FleetConfig::default()
        };
        let throttled = ChaosSpec {
            seed: 5,
            latency_ms: 40,
            throttle: 0.4,
            retry_after_ms: 400,
            ..ChaosSpec::default()
        };
        let clean = ChaosSpec {
            latency_ms: 40,
            ..ChaosSpec::default()
        };
        let run = |steal: bool| {
            let mut sites = vec![
                chaos_task("fast", 31, clean.clone()),
                chaos_task("slow", 32, throttled.clone()),
            ];
            CoopDriver::new(cfg.clone())
                .with_stealing(steal)
                .run(&mut sites)
        };
        let without = run(false);
        let with = run(true);
        assert_eq!(with.total_samples(), 120);
        assert_eq!(without.total_samples(), 120);
        assert!(
            with.sites[1].steals > 0,
            "the finished fast site donates its walkers to the throttled one"
        );
        assert_eq!(with.sites[0].steals, 0, "the donor steals nothing");
        assert_eq!(without.total_steals(), 0, "stealing is opt-in");
        assert!(
            with.fleet_elapsed_ms < without.fleet_elapsed_ms,
            "extra walkers must shorten the throttled tail: {} vs {}",
            with.fleet_elapsed_ms,
            without.fleet_elapsed_ms
        );
    }

    #[test]
    fn empty_scope_fails_the_site() {
        use hdsampler_model::{AttrId, ConjunctiveQuery};
        let cfg = FleetConfig {
            walkers_per_site: 2,
            target_per_site: 10,
            seed: 1,
            scope: ConjunctiveQuery::from_pairs([(AttrId(0), 1), (AttrId(1), 0)]).unwrap(),
            ..FleetConfig::default()
        };
        let mut sites = vec![figure1_task("empty", 10)];
        let report = CoopDriver::new(cfg).run(&mut sites);
        assert!(matches!(
            report.sites[0].stopped,
            StopReason::Failed(SamplerError::EmptyScope)
        ));
        assert!(report.sites[0].samples.is_empty());
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(24))]

        /// Property: across random seeds, walker counts and latencies the
        /// coop driver's virtual elapsed time respects the wire's
        /// serialization bounds — no fetch is billed into the past. (The
        /// departure-level causality property lives in
        /// `tests/causality_properties.rs` against the transport itself.)
        #[test]
        fn coop_elapsed_respects_serialization_bounds(
            seed in 0u64..500,
            walkers in 1usize..6,
            latency in 20u64..200,
        ) {
            let cfg = FleetConfig {
                walkers_per_site: walkers,
                target_per_site: 30,
                seed,
                ..FleetConfig::default()
            };
            let mut sites = vec![vehicles_task("p", seed ^ 0xABCD, latency, None)];
            let (report, _) = CoopDriver::new(cfg).run_with_details(&mut sites);
            let site = &report.sites[0];
            proptest::prop_assert!(site.samples.len() == 30);
            if site.queries_issued > 0 {
                // At least one full round trip on the critical path, and
                // at least the most-loaded connection's serial chain of
                // *completed* fetches (up to one in-flight fetch per
                // walker is charged but cancelled when the target lands,
                // and a cancelled fetch advances no clock).
                proptest::prop_assert!(site.elapsed_ms >= latency);
                let completed = site.queries_issued.saturating_sub(walkers as u64);
                let per_conn_lower = latency * completed.div_ceil(walkers as u64);
                proptest::prop_assert!(
                    site.elapsed_ms >= per_conn_lower,
                    "elapsed {} below the per-connection serialization bound {}",
                    site.elapsed_ms,
                    per_conn_lower
                );
            }
        }
    }
}
