//! # hdsampler-webform
//!
//! The simulated web layer between HDSampler and a hidden database.
//!
//! The original demo ran against live Google Base over HTTP (Apache + PHP,
//! §3.5); in this reproduction the wire is simulated but the *pipeline* is
//! real: every query is URL-encoded into a GET request
//! ([`urlenc`]), the "site" renders an HTML results page ([`render`]) —
//! count banner, overflow notice, result table — and the sampler-side
//! adapter scrapes that page back into typed rows ([`scrape`]) with a
//! hand-written extractor. Values therefore survive a full
//! string-typed round trip exactly as a real scraper's would.
//!
//! * [`form`] — the `<form>` definition a site derives from its schema
//!   (the demo's Figure 3 attribute-settings page);
//! * [`urlenc`] — percent/query-string encoding (hand-rolled, no deps);
//! * [`render`] — server-side page rendering;
//! * [`scrape`] — client-side page scraping;
//! * [`transport`] — the wire: a [`Transport`] trait, the in-process
//!   [`LocalSite`] server, and a virtual-latency decorator for
//!   time-to-insight experiments;
//! * [`aio`] — the non-blocking wire: poll/completion fetches over
//!   per-connection virtual clocks, so overlapping requests are billed as
//!   overlapping (elapsed = max over connections, not sum over fetches);
//! * [`adapter`] — [`WebFormInterface`], a full
//!   [`FormInterface`](hdsampler_model::FormInterface) over HTML, with a
//!   non-blocking execute path over any [`AsyncTransport`];
//! * [`httpc`] — [`HttpTransport`], the *real* wire: a dependency-free
//!   HTTP/1.1 client on `std::net::TcpStream` implementing both transport
//!   faces, so the same sampler stack walks a live `hdsampler serve`
//!   front door over loopback or a network;
//! * [`driver`] — [`MultiSiteDriver`], one process driving S sites
//!   (simulated or live) × W walkers concurrently with per-site history
//!   caches, budgets and throughput accounting;
//! * [`coop`] — [`CoopDriver`], the cooperative alternative: one OS
//!   thread multiplexing S × W resumable walk machines over explicit
//!   connections, pipelining hundreds of in-flight submissions where the
//!   threaded driver would need hundreds of stacks;
//! * [`reactor`] — the std-only epoll readiness wrapper both halves of
//!   the real wire multiplex on: the client's single-`epoll_wait`
//!   completion path and the server's event-driven serve mode;
//! * [`locator`] — [`SiteLocator`], the one-string site grammar
//!   (`local:…`, `http://…`, `replay:…`);
//! * [`connect`] — the [`ConnectorRegistry`] resolving locators to ready
//!   [`SiteTask`]s via scrape-based schema discovery off each site's `/`;
//! * [`replay`] — [`RecordingTransport`] writing every exchange to a
//!   JSONL tape, and [`ReplaySite`] serving one back byte-identically
//!   with no server at all;
//! * [`telemetry`] — trace journaling (JSONL `--trace` journals), the
//!   [`WireSampleEvent`] format carried by the server's `/events` SSE
//!   stream, its dependency-free chunked-transfer client, and the
//!   per-stage latency [`TraceReport`] behind `trace report`;
//! * [`plan`] — [`RunPlan`], the single front door: one builder
//!   (`target → walkers → driver → attach(sink)`) that executes any of
//!   the drivers over simulated or live sites, streaming every accepted
//!   sample into attached
//!   [`SampleSink`](hdsampler_core::SampleSink)s and returning one
//!   [`RunReport`].

pub mod adapter;
pub mod aio;
pub mod chaos;
pub mod connect;
pub mod coop;
pub mod driver;
pub mod form;
pub mod httpc;
pub mod locator;
pub mod plan;
pub mod reactor;
pub mod render;
pub mod replay;
pub mod scrape;
pub mod telemetry;
pub mod transport;
pub mod urlenc;

pub use adapter::{QueryHandle, QueryPoll, WebFormInterface};
pub use aio::{AsyncTransport, ConnId, FetchHandle, FetchPoll};
pub use chaos::{ChaosCounters, ChaosSpec, ChaosTransport, Decision, Fault, RetryPolicy};
pub use connect::{BoxTransport, ConnectOptions, Connector, ConnectorRegistry};
pub use coop::{CoopDriver, CoopSiteDetail};
pub use driver::{FleetConfig, FleetReport, MultiSiteDriver, SiteReport, SiteTask};
pub use form::WebForm;
pub use httpc::HttpTransport;
pub use locator::SiteLocator;
pub use plan::{Driver, RunPlan, RunReport};
pub use reactor::{reactor_supported, Epoll, Interest, ReadyEvent};
pub use replay::{RecordingTransport, ReplaySite, TapeEntry};
pub use scrape::{scrape_form_page, DiscoveredForm};
pub use telemetry::{
    read_journal, summarize, watch_events, write_journal, TraceReport, WireSampleEvent,
};
pub use transport::{Clocked, LatencyTransport, LocalSite, Transport};
