//! # hdsampler-webform
//!
//! The simulated web layer between HDSampler and a hidden database.
//!
//! The original demo ran against live Google Base over HTTP (Apache + PHP,
//! §3.5); in this reproduction the wire is simulated but the *pipeline* is
//! real: every query is URL-encoded into a GET request
//! ([`urlenc`]), the "site" renders an HTML results page ([`render`]) —
//! count banner, overflow notice, result table — and the sampler-side
//! adapter scrapes that page back into typed rows ([`scrape`]) with a
//! hand-written extractor. Values therefore survive a full
//! string-typed round trip exactly as a real scraper's would.
//!
//! * [`form`] — the `<form>` definition a site derives from its schema
//!   (the demo's Figure 3 attribute-settings page);
//! * [`urlenc`] — percent/query-string encoding (hand-rolled, no deps);
//! * [`render`] — server-side page rendering;
//! * [`scrape`] — client-side page scraping;
//! * [`transport`] — the wire: a [`Transport`] trait, the in-process
//!   [`LocalSite`] server, and a virtual-latency decorator for
//!   time-to-insight experiments;
//! * [`adapter`] — [`WebFormInterface`], a full
//!   [`FormInterface`](hdsampler_model::FormInterface) over HTML.

pub mod adapter;
pub mod form;
pub mod render;
pub mod scrape;
pub mod transport;
pub mod urlenc;

pub use adapter::WebFormInterface;
pub use form::WebForm;
pub use transport::{LatencyTransport, LocalSite, Transport};
