//! Percent-encoding and query-string handling, implemented from scratch.
//!
//! Only unreserved characters (RFC 3986 §2.3) pass through; everything
//! else, including UTF-8 continuation bytes of labels like "$5k–$10k",
//! is `%XX`-escaped. Spaces are encoded as `%20` (not `+`) to keep the
//! decoder single-purpose.

/// Percent-encode a UTF-8 string.
pub fn encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char);
            }
            _ => {
                out.push('%');
                out.push(
                    char::from_digit((b >> 4) as u32, 16)
                        .expect("nibble")
                        .to_ascii_uppercase(),
                );
                out.push(
                    char::from_digit((b & 0xF) as u32, 16)
                        .expect("nibble")
                        .to_ascii_uppercase(),
                );
            }
        }
    }
    out
}

/// Decode a percent-encoded string. Returns `None` on malformed escapes or
/// invalid UTF-8.
pub fn decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hi = *bytes.get(i + 1)?;
                let lo = *bytes.get(i + 2)?;
                let hi = (hi as char).to_digit(16)?;
                let lo = (lo as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Build a query string from `(key, value)` pairs: `k1=v1&k2=v2`, both
/// sides percent-encoded.
pub fn build_query(pairs: &[(String, String)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push('&');
        }
        out.push_str(&encode(k));
        out.push('=');
        out.push_str(&encode(v));
    }
    out
}

/// Parse a query string back into decoded `(key, value)` pairs. Returns
/// `None` on any malformed component.
pub fn parse_query(qs: &str) -> Option<Vec<(String, String)>> {
    if qs.is_empty() {
        return Some(Vec::new());
    }
    let mut pairs = Vec::new();
    for part in qs.split('&') {
        let (k, v) = part.split_once('=')?;
        pairs.push((decode(k)?, decode(v)?));
    }
    Some(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unreserved_pass_through() {
        assert_eq!(encode("Toyota-4.2_x~"), "Toyota-4.2_x~");
    }

    #[test]
    fn reserved_and_unicode_escape() {
        assert_eq!(encode("a b"), "a%20b");
        assert_eq!(encode("Town & Country"), "Town%20%26%20Country");
        // en dash U+2013 → E2 80 93
        assert_eq!(encode("–"), "%E2%80%93");
    }

    #[test]
    fn decode_inverts_encode() {
        for s in [
            "Toyota",
            "Town & Country",
            "$5k–$10k",
            "under $2.5k",
            "100%25 legit=tricky&stuff",
            "",
            "ünïçødé ✓",
        ] {
            assert_eq!(decode(&encode(s)).as_deref(), Some(s), "roundtrip of {s:?}");
        }
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(decode("%"), None);
        assert_eq!(decode("%2"), None);
        assert_eq!(decode("%ZZ"), None);
        // Overlong/invalid UTF-8 sequence.
        assert_eq!(decode("%FF%FE"), None);
    }

    #[test]
    fn query_string_roundtrip() {
        let pairs = vec![
            ("make".to_string(), "Mercedes-Benz".to_string()),
            ("price".to_string(), "$5k–$10k".to_string()),
            ("odd key".to_string(), "a=b&c".to_string()),
        ];
        let qs = build_query(&pairs);
        assert_eq!(parse_query(&qs), Some(pairs));
    }

    #[test]
    fn parse_empty_and_malformed() {
        assert_eq!(parse_query(""), Some(vec![]));
        assert_eq!(parse_query("novalue"), None);
        assert_eq!(parse_query("a=%Z1"), None);
    }
}
