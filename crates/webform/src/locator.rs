//! [`SiteLocator`]: one string naming any site the sampler can walk.
//!
//! Three schemes cover the three wires this workspace has:
//!
//! | scheme | example | resolves to |
//! |---|---|---|
//! | `local:` | `local:vehicles?n=8000&k=250&seed=7` | an in-process [`LocalSite`](crate::LocalSite) built from the named dataset |
//! | `http://` | `http://127.0.0.1:8080` | a live front door over [`HttpTransport`](crate::HttpTransport) |
//! | `replay:` | `replay:runs/tape.jsonl` | a recorded tape served offline by [`ReplaySite`](crate::ReplaySite) |
//!
//! The grammar is deliberately tiny: `scheme : rest`, where `local:` takes
//! a registry dataset name plus an optional query string of build
//! parameters, `http://` takes a host:port, and `replay:` takes a file
//! path verbatim. Parsing and [`Display`](std::fmt::Display) are exact
//! inverses (property-tested), so locators survive being printed into
//! reports, shell history and CI logs and pasted back.
//!
//! A locator only *names* a site; connecting it — building the database,
//! scraping the schema off `/`, loading the tape — is the
//! [`ConnectorRegistry`](crate::connect::ConnectorRegistry)'s job.

use std::fmt;

use crate::urlenc;

/// A parsed site locator. See the [module docs](self) for the grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiteLocator {
    /// `local:<dataset>[?key=value&…]` — an in-process site over a named
    /// dataset from the workload registry. Parameters are kept as ordered
    /// pairs; the connector interprets them (`n`, `k`, `seed`, `counts`,
    /// `budget`, `latency`, `jitter`).
    Local {
        /// Registry dataset name (restricted charset: `[A-Za-z0-9._-]`).
        dataset: String,
        /// Build parameters, in written order.
        params: Vec<(String, String)>,
    },
    /// `http://<host:port>` — a live HTTP front door.
    Http {
        /// The address, without the scheme or any trailing slash.
        addr: String,
    },
    /// `replay:<path>` — a recorded tape on disk.
    Replay {
        /// Filesystem path to the JSONL tape, verbatim.
        path: String,
    },
}

/// Whether `s` is a valid `local:` dataset name: non-empty over
/// `[A-Za-z0-9._-]`. The restriction is what makes `Display` unambiguous —
/// a dataset can never contain `?` or `:`.
fn valid_dataset_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

impl SiteLocator {
    /// Parse a locator string.
    ///
    /// # Errors
    /// A message naming what is wrong and, for a bare word with no scheme,
    /// a `did you mean local:…` hint. Never panics, whatever the input
    /// (property-tested against arbitrary junk).
    pub fn parse(s: &str) -> Result<SiteLocator, String> {
        if let Some(addr) = s.strip_prefix("http://") {
            let addr = addr.strip_suffix('/').unwrap_or(addr);
            if addr.is_empty() {
                return Err("http:// locator needs a host:port, e.g. http://127.0.0.1:8080".into());
            }
            if addr.contains('/') {
                return Err(format!(
                    "http:// locator takes a bare host:port (got a path in `{s}`)"
                ));
            }
            return Ok(SiteLocator::Http { addr: addr.into() });
        }
        if let Some(rest) = s.strip_prefix("local:") {
            let (dataset, qs) = match rest.split_once('?') {
                Some((d, qs)) => (d, Some(qs)),
                None => (rest, None),
            };
            if !valid_dataset_name(dataset) {
                return Err(format!(
                    "local: locator needs a dataset name over [A-Za-z0-9._-] \
                     (got `{dataset}`); try e.g. local:vehicles-compact?n=8000&k=250"
                ));
            }
            let params = match qs {
                None => Vec::new(),
                Some("") => {
                    return Err(format!(
                        "empty parameter list in `{s}` (drop the trailing `?`)"
                    ))
                }
                Some(qs) => urlenc::parse_query(qs)
                    .ok_or_else(|| format!("malformed parameters in `{s}`"))?,
            };
            if params.iter().any(|(k, _)| k.is_empty()) {
                return Err(format!("empty parameter name in `{s}`"));
            }
            return Ok(SiteLocator::Local {
                dataset: dataset.into(),
                params,
            });
        }
        if let Some(path) = s.strip_prefix("replay:") {
            if path.is_empty() {
                return Err(
                    "replay: locator needs a tape path, e.g. replay:runs/tape.jsonl".into(),
                );
            }
            return Ok(SiteLocator::Replay { path: path.into() });
        }
        match s.split_once(':') {
            Some((scheme, _)) => Err(format!(
                "unknown locator scheme `{scheme}:` (valid: local:, http://, replay:)"
            )),
            None if s.is_empty() => Err("empty locator".into()),
            None => Err(format!(
                "locator `{s}` has no scheme (valid: local:, http://, replay:) \
                 — did you mean `local:{s}`?"
            )),
        }
    }

    /// The scheme word, for dispatch and display.
    pub fn scheme(&self) -> &'static str {
        match self {
            SiteLocator::Local { .. } => "local",
            SiteLocator::Http { .. } => "http",
            SiteLocator::Replay { .. } => "replay",
        }
    }
}

impl fmt::Display for SiteLocator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SiteLocator::Local { dataset, params } => {
                write!(f, "local:{dataset}")?;
                if !params.is_empty() {
                    write!(f, "?{}", urlenc::build_query(params))?;
                }
                Ok(())
            }
            SiteLocator::Http { addr } => write!(f, "http://{addr}"),
            SiteLocator::Replay { path } => write!(f, "replay:{path}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_schemes() {
        assert_eq!(
            SiteLocator::parse("local:vehicles-compact?n=8000&k=250&seed=7").unwrap(),
            SiteLocator::Local {
                dataset: "vehicles-compact".into(),
                params: vec![
                    ("n".into(), "8000".into()),
                    ("k".into(), "250".into()),
                    ("seed".into(), "7".into()),
                ],
            }
        );
        assert_eq!(
            SiteLocator::parse("local:boolean").unwrap(),
            SiteLocator::Local {
                dataset: "boolean".into(),
                params: vec![],
            }
        );
        assert_eq!(
            SiteLocator::parse("http://127.0.0.1:8080").unwrap(),
            SiteLocator::Http {
                addr: "127.0.0.1:8080".into()
            }
        );
        // A trailing slash is tolerated and normalized away.
        assert_eq!(
            SiteLocator::parse("http://127.0.0.1:8080/").unwrap(),
            SiteLocator::Http {
                addr: "127.0.0.1:8080".into()
            }
        );
        assert_eq!(
            SiteLocator::parse("replay:runs/tape.jsonl").unwrap(),
            SiteLocator::Replay {
                path: "runs/tape.jsonl".into()
            }
        );
    }

    #[test]
    fn rejects_junk_with_useful_messages() {
        let err = SiteLocator::parse("ftp://example.com").unwrap_err();
        assert!(err.contains("unknown locator scheme `ftp:`"), "{err}");
        assert!(err.contains("local:"), "{err}");

        let err = SiteLocator::parse("vehicles-compact").unwrap_err();
        assert!(
            err.contains("did you mean `local:vehicles-compact`?"),
            "{err}"
        );

        assert!(SiteLocator::parse("").is_err());
        assert!(SiteLocator::parse("http://").is_err());
        assert!(SiteLocator::parse("http://host:1/path").is_err());
        assert!(SiteLocator::parse("replay:").is_err());
        assert!(SiteLocator::parse("local:").is_err());
        assert!(SiteLocator::parse("local:has space").is_err());
        assert!(SiteLocator::parse("local:x?").is_err());
        assert!(SiteLocator::parse("local:x?=1").is_err());
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "local:vehicles-compact?n=8000&k=250&seed=7",
            "local:boolean",
            "http://127.0.0.1:8080",
            "replay:runs/tape.jsonl",
            "replay:C%3A/odd path.jsonl",
        ] {
            let loc = SiteLocator::parse(s).unwrap();
            let printed = loc.to_string();
            assert_eq!(SiteLocator::parse(&printed).unwrap(), loc, "{s}");
        }
        // Canonical forms print verbatim.
        assert_eq!(
            SiteLocator::parse("local:boolean?n=100")
                .unwrap()
                .to_string(),
            "local:boolean?n=100"
        );
    }
}
