//! One process, many sites: the fleet-scale driving loop.
//!
//! The paper's cost model is round trips — per-probe CPU is cheap (the
//! zero-materialization engine made it cheaper), so a scraper's real
//! throughput question is how many form submissions it keeps in flight.
//! [`MultiSiteDriver`] runs S simulated sites × W walkers per site in one
//! process: every walker thread rides its own virtual connection of its
//! site's [`LatencyTransport`], each site's walkers share one
//! [`CachingExecutor`] (history inference is per-site — facts learned from
//! one database must never answer for another), and per-site query budgets
//! are enforced by the backing interface end-to-end.
//!
//! Accounting follows the per-connection clock model of [`crate::aio`]:
//! a site's virtual elapsed time is the maximum over its connections, and
//! the concurrent fleet's elapsed time is the maximum over sites —
//! overlapping requests overlap. The serial baseline
//! ([`MultiSiteDriver::run_serial`]) drives the same sites one after
//! another on a single connection each, so its fleet time is the sum over
//! sites; the ratio between the two is the wire-level win concurrency
//! buys.

use hdsampler_core::{
    CachingExecutor, HdsSampler, QueryExecutor, SampleSet, SamplerConfig, SamplingSession,
    SessionOutcome, StopReason,
};

use crate::adapter::WebFormInterface;
use crate::transport::{Clocked, Transport};

/// One site to drive: a name plus the scraper stack pointed at it.
///
/// The wire is any [`Transport`] that reports elapsed time ([`Clocked`]):
/// a [`LatencyTransport`](crate::transport::LatencyTransport) bills a
/// virtual clock, an [`HttpTransport`](crate::httpc::HttpTransport) spends
/// real wall-clock time against a live server — the driver code is
/// identical.
#[derive(Debug)]
pub struct SiteTask<T> {
    /// Display name (reports and tables).
    pub name: String,
    /// The scraper-side interface over the site's wire.
    pub iface: WebFormInterface<T>,
}

impl<T: Transport + Clocked> SiteTask<T> {
    /// Name a site task.
    pub fn new(name: impl Into<String>, iface: WebFormInterface<T>) -> Self {
        SiteTask {
            name: name.into(),
            iface,
        }
    }
}

/// Fleet-wide driving parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Walker threads (= virtual connections) per site in concurrent mode.
    pub walkers_per_site: usize,
    /// Samples to collect from each site.
    pub target_per_site: usize,
    /// Base RNG seed; every (site, walker) pair derives a distinct seed.
    pub seed: u64,
    /// Efficiency ↔ skew slider position for every walker.
    pub slider: f64,
    /// Pinned bindings applied to every site's walkers (the sites share a
    /// schema structure, so attribute ids resolve identically fleet-wide).
    pub scope: hdsampler_model::ConjunctiveQuery,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            walkers_per_site: 2,
            target_per_site: 100,
            seed: 2009,
            slider: 0.0,
            scope: hdsampler_model::ConjunctiveQuery::empty(),
        }
    }
}

impl FleetConfig {
    /// Per-(site, walker) sampler configuration with a distinct seed.
    ///
    /// Shared by every driver — the threaded [`MultiSiteDriver`] and the
    /// cooperative [`CoopDriver`](crate::coop::CoopDriver) — so walker
    /// (s, w) walks the identical seeded sequence no matter which driver
    /// runs it. Golden-ratio mixing keeps (site, walker) seeds distinct
    /// without any two sites' walkers ever colliding for realistic fleet
    /// sizes.
    pub fn walker_config(&self, site_ix: usize, walker: usize) -> SamplerConfig {
        let seed = self
            .seed
            .wrapping_add((site_ix as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(walker as u64);
        SamplerConfig::seeded(seed)
            .with_slider(self.slider)
            .with_scope(self.scope.clone())
    }
}

/// Per-site outcome of a fleet run.
#[derive(Debug)]
pub struct SiteReport {
    /// The site's name.
    pub name: String,
    /// Samples collected (≤ target when the budget ran out).
    pub samples: SampleSet,
    /// Logical requests the site's walkers made (cache hits included).
    pub requests: u64,
    /// Page fetches actually charged at the site.
    pub queries_issued: u64,
    /// Requests the site's shared history cache absorbed.
    pub history_hits: u64,
    /// The site's wall clock (virtual for simulated wires — max over its
    /// connections — real for TCP ones).
    pub elapsed_ms: u64,
    /// Why the site's session ended.
    pub stopped: StopReason,
}

/// Outcome of a whole fleet run.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-site outcomes, in task order.
    pub sites: Vec<SiteReport>,
    /// Fleet virtual wall clock: max over sites when concurrent, sum when
    /// serial.
    pub fleet_elapsed_ms: u64,
    /// Whether sites were driven concurrently.
    pub concurrent: bool,
}

impl FleetReport {
    /// Samples collected across the fleet.
    pub fn total_samples(&self) -> usize {
        self.sites.iter().map(|s| s.samples.len()).sum()
    }

    /// Page fetches charged across the fleet.
    pub fn total_fetches(&self) -> u64 {
        self.sites.iter().map(|s| s.queries_issued).sum()
    }

    /// Fleet throughput in samples per virtual second. A fleet that spent
    /// no wire time (everything answered from history, or nothing ran)
    /// reports `0.0` — a throughput figure, never `NaN` (which used to
    /// leak all the way into the CLI table).
    pub fn samples_per_vsec(&self) -> f64 {
        if self.fleet_elapsed_ms == 0 {
            0.0
        } else {
            self.total_samples() as f64 / (self.fleet_elapsed_ms as f64 / 1_000.0)
        }
    }
}

/// Drives a fleet of sites to a per-site sample target.
#[derive(Debug, Default)]
pub struct MultiSiteDriver {
    cfg: FleetConfig,
}

impl MultiSiteDriver {
    /// Driver with the given fleet configuration.
    pub fn new(cfg: FleetConfig) -> Self {
        MultiSiteDriver { cfg }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Drive one site to the target with `walkers` threads sharing the
    /// site's history cache.
    fn drive_site<T: Transport + Clocked>(
        &self,
        task: &SiteTask<T>,
        site_ix: usize,
        walkers: usize,
    ) -> SiteReport {
        let exec = CachingExecutor::new(&task.iface);
        let session = SamplingSession::new(self.cfg.target_per_site);
        let outcome: SessionOutcome = if walkers <= 1 {
            let mut sampler = HdsSampler::new(&exec, self.cfg.walker_config(site_ix, 0))
                .expect("fleet walker configuration is valid");
            session.run(&mut sampler, |_| {})
        } else {
            session.run_parallel(walkers, |w| {
                HdsSampler::new(&exec, self.cfg.walker_config(site_ix, w))
                    .expect("fleet walker configuration is valid")
            })
        };
        // The walker threads are gone; reap their idle keep-alive
        // connections (real-TCP transports) instead of stranding the
        // sockets for the transport's lifetime.
        task.iface.transport().close_idle();
        SiteReport {
            name: task.name.clone(),
            samples: outcome.samples,
            requests: exec.requests(),
            queries_issued: exec.queries_issued(),
            history_hits: exec.history_stats().total_hits(),
            elapsed_ms: task.iface.transport().elapsed_ms(),
            stopped: outcome.reason,
        }
    }

    /// Drive every site concurrently: one runner thread per site, W walker
    /// threads per runner, fleet elapsed = max over sites.
    pub fn run_concurrent<T: Transport + Clocked>(&self, sites: &[SiteTask<T>]) -> FleetReport {
        let walkers = self.cfg.walkers_per_site.max(1);
        let reports: Vec<SiteReport> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = sites
                .iter()
                .enumerate()
                .map(|(i, task)| scope.spawn(move |_| self.drive_site(task, i, walkers)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("site runner panicked"))
                .collect()
        })
        .expect("fleet scope");
        let fleet_elapsed_ms = reports.iter().map(|r| r.elapsed_ms).max().unwrap_or(0);
        FleetReport {
            sites: reports,
            fleet_elapsed_ms,
            concurrent: true,
        }
    }

    /// The serial baseline: sites driven one after another, one walker and
    /// one connection each, fleet elapsed = sum over sites.
    pub fn run_serial<T: Transport + Clocked>(&self, sites: &[SiteTask<T>]) -> FleetReport {
        let reports: Vec<SiteReport> = sites
            .iter()
            .enumerate()
            .map(|(i, task)| self.drive_site(task, i, 1))
            .collect();
        let fleet_elapsed_ms = reports.iter().map(|r| r.elapsed_ms).sum();
        FleetReport {
            sites: reports,
            fleet_elapsed_ms,
            concurrent: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{LatencyTransport, LocalSite};
    use hdsampler_hidden_db::HiddenDb;
    use hdsampler_model::{Attribute, FormInterface, SchemaBuilder, Tuple};
    use hdsampler_workload::figure1_db;
    use std::sync::Arc;

    fn figure1_task(
        name: &str,
        latency_ms: u64,
    ) -> SiteTask<LatencyTransport<LocalSite<HiddenDb>>> {
        let db = figure1_db(1);
        let schema = Arc::new(db.schema().clone());
        let site = LocalSite::new(db, Arc::clone(&schema));
        let wire = LatencyTransport::new(site, latency_ms);
        SiteTask::new(name, WebFormInterface::new(wire, schema, 1, false))
    }

    fn budgeted_task(
        name: &str,
        latency_ms: u64,
        budget: u64,
    ) -> SiteTask<LatencyTransport<LocalSite<HiddenDb>>> {
        // Four Boolean attributes with every combination present: the
        // query tree is far too large to cache within a small budget, so
        // exhaustion is guaranteed (a tiny database would be fully learned
        // by the history cache, after which samples are free forever).
        let schema = SchemaBuilder::new()
            .attribute(Attribute::boolean("x"))
            .attribute(Attribute::boolean("y"))
            .attribute(Attribute::boolean("z"))
            .attribute(Attribute::boolean("w"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(Arc::clone(&schema))
            .result_limit(1)
            .query_budget(budget);
        for bits in 0..16u16 {
            let vals: Vec<u16> = (0..4).map(|i| (bits >> i) & 1).collect();
            b.push(&Tuple::new(&schema, vals, vec![]).unwrap()).unwrap();
        }
        let site = LocalSite::new(b.finish(), Arc::clone(&schema));
        let wire = LatencyTransport::new(site, latency_ms);
        SiteTask::new(name, WebFormInterface::new(wire, schema, 1, false))
    }

    #[test]
    fn concurrent_fleet_beats_serial_on_virtual_time() {
        let cfg = FleetConfig {
            walkers_per_site: 2,
            target_per_site: 25,
            seed: 7,
            ..FleetConfig::default()
        };
        let driver = MultiSiteDriver::new(cfg);

        let serial_sites: Vec<_> = (0..3)
            .map(|i| figure1_task(&format!("s{i}"), 100))
            .collect();
        let serial = driver.run_serial(&serial_sites);
        assert!(!serial.concurrent);
        assert_eq!(serial.total_samples(), 75);
        assert_eq!(
            serial.fleet_elapsed_ms,
            serial.sites.iter().map(|s| s.elapsed_ms).sum::<u64>(),
            "serial fleet time sums over sites"
        );

        let conc_sites: Vec<_> = (0..3)
            .map(|i| figure1_task(&format!("c{i}"), 100))
            .collect();
        let concurrent = driver.run_concurrent(&conc_sites);
        assert!(concurrent.concurrent);
        assert_eq!(concurrent.total_samples(), 75);
        assert_eq!(
            concurrent.fleet_elapsed_ms,
            concurrent.sites.iter().map(|s| s.elapsed_ms).max().unwrap(),
            "concurrent fleet time is the max over sites"
        );
        assert!(
            concurrent.fleet_elapsed_ms < serial.fleet_elapsed_ms,
            "overlap must win: {} vs {}",
            concurrent.fleet_elapsed_ms,
            serial.fleet_elapsed_ms
        );
        for site in &concurrent.sites {
            assert_eq!(site.stopped, StopReason::TargetReached);
            assert!(site.queries_issued > 0);
            assert!(
                site.requests >= site.queries_issued,
                "cache hits never exceed requests"
            );
        }
    }

    #[test]
    fn zero_elapsed_fleet_reports_zero_throughput_not_nan() {
        // Regression: a fleet that never touched the wire (e.g. every
        // request served from history) used to report NaN samples/s, and
        // the CLI printed it verbatim.
        let report = FleetReport {
            sites: vec![],
            fleet_elapsed_ms: 0,
            concurrent: true,
        };
        assert_eq!(report.samples_per_vsec(), 0.0);
        let report = FleetReport {
            sites: vec![],
            fleet_elapsed_ms: 2_000,
            concurrent: false,
        };
        assert_eq!(report.samples_per_vsec(), 0.0, "0 samples / 2 s = 0");
    }

    #[test]
    fn fleet_scope_pins_every_walker() {
        use hdsampler_model::{AttrId, ConjunctiveQuery};
        let cfg = FleetConfig {
            walkers_per_site: 2,
            target_per_site: 20,
            seed: 11,
            scope: ConjunctiveQuery::from_pairs([(AttrId(1), 1)]).unwrap(),
            ..FleetConfig::default()
        };
        let driver = MultiSiteDriver::new(cfg);
        let sites: Vec<_> = (0..2).map(|i| figure1_task(&format!("s{i}"), 50)).collect();
        let report = driver.run_concurrent(&sites);
        for site in &report.sites {
            assert_eq!(site.stopped, StopReason::TargetReached);
            for row in site.samples.rows() {
                assert_eq!(row.values[1], 1, "every sample honours the scope");
            }
        }
    }

    #[test]
    fn per_site_budgets_are_enforced() {
        let cfg = FleetConfig {
            walkers_per_site: 2,
            target_per_site: 1_000,
            seed: 3,
            ..FleetConfig::default()
        };
        let driver = MultiSiteDriver::new(cfg);
        // One starving site next to a healthy one: the budgeted site stops
        // early with partial results, the rest of the fleet is unaffected.
        let sites = vec![budgeted_task("starved", 50, 12), figure1_task("ok", 50)];
        let report = driver.run_concurrent(&sites);
        let starved = &report.sites[0];
        assert_eq!(starved.stopped, StopReason::BudgetExhausted);
        assert!(starved.samples.len() < 1_000);
        // The site-side budget is a hard cap on *charged* queries; the
        // scraper-side fetch counter may additionally record the rejected
        // attempts that discovered the exhaustion (at most one per walker).
        assert!(
            sites[0].iface.transport().inner().backend().budget().used() <= 12,
            "budget is a hard cap at the site"
        );
        assert!(starved.queries_issued <= 12 + 2);
        // The unbudgeted site is unaffected by its neighbour's starvation.
        assert_eq!(report.sites[1].stopped, StopReason::TargetReached);
    }
}
