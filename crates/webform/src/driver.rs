//! One process, many sites: the fleet-scale driving loop.
//!
//! The paper's cost model is round trips — per-probe CPU is cheap (the
//! zero-materialization engine made it cheaper), so a scraper's real
//! throughput question is how many form submissions it keeps in flight.
//! [`MultiSiteDriver`] runs S simulated sites × W walkers per site in one
//! process: every walker thread rides its own virtual connection of its
//! site's [`LatencyTransport`], each site's walkers share one
//! [`CachingExecutor`] (history inference is per-site — facts learned from
//! one database must never answer for another), and per-site query budgets
//! are enforced by the backing interface end-to-end.
//!
//! Accounting follows the per-connection clock model of [`crate::aio`]:
//! a site's virtual elapsed time is the maximum over its connections, and
//! the concurrent fleet's elapsed time is the maximum over sites —
//! overlapping requests overlap. The serial baseline
//! ([`MultiSiteDriver::run_serial`]) drives the same sites one after
//! another on a single connection each, so its fleet time is the sum over
//! sites; the ratio between the two is the wire-level win concurrency
//! buys.

use hdsampler_core::{
    CachingExecutor, HdsSampler, HistoryStats, QueryExecutor, SampleSet, SampleSink, SamplerConfig,
    SamplerStats, SamplingSession, SessionOutcome, StopReason,
};

use crate::adapter::WebFormInterface;
use crate::transport::{Clocked, Transport};

/// One site to drive: a name, the scraper stack pointed at it, and an
/// optional per-site [`SampleSink`] observing every sample the site's
/// walkers accept, live.
///
/// The wire is any [`Transport`] that reports elapsed time ([`Clocked`]):
/// a [`LatencyTransport`](crate::transport::LatencyTransport) bills a
/// virtual clock, an [`HttpTransport`](crate::httpc::HttpTransport) spends
/// real wall-clock time against a live server — the driver code is
/// identical.
pub struct SiteTask<T> {
    /// Display name (reports and tables).
    pub name: String,
    /// The scraper-side interface over the site's wire.
    pub iface: WebFormInterface<T>,
    /// Streaming observer of this site's accepted samples.
    pub(crate) sink: Option<Box<dyn SampleSink>>,
    /// Persistent history log keyed by this site's fingerprint; drivers
    /// attach it as the L2 tier of the site's [`CachingExecutor`].
    pub(crate) l2: Option<std::sync::Arc<hdsampler_core::L2Log>>,
}

impl<T: Transport + Clocked> SiteTask<T> {
    /// Name a site task.
    pub fn new(name: impl Into<String>, iface: WebFormInterface<T>) -> Self {
        SiteTask {
            name: name.into(),
            iface,
            sink: None,
            l2: None,
        }
    }

    /// Attach a persistent history log; the site's executor will consult
    /// it behind L1 and write newly learned facts to it.
    pub fn with_l2(mut self, log: std::sync::Arc<hdsampler_core::L2Log>) -> Self {
        self.l2 = Some(log);
        self
    }

    /// The attached persistent history log, if any.
    pub fn l2(&self) -> Option<&std::sync::Arc<hdsampler_core::L2Log>> {
        self.l2.as_ref()
    }

    /// Attach a per-site streaming sink; it observes every sample this
    /// site accepts, in acceptance order, and can be inspected or taken
    /// back after the run.
    pub fn with_sink(mut self, sink: Box<dyn SampleSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The attached sink, if any (down-cast via
    /// [`SampleSink::as_any`] to read its state).
    pub fn sink(&self) -> Option<&dyn SampleSink> {
        self.sink.as_deref()
    }

    /// Detach and return the sink.
    pub fn take_sink(&mut self) -> Option<Box<dyn SampleSink>> {
        self.sink.take()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for SiteTask<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SiteTask")
            .field("name", &self.name)
            .field("iface", &self.iface)
            .field("sink", &self.sink.as_ref().map(|_| "<sink>"))
            .finish()
    }
}

/// Fleet-wide driving parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Walker threads (= virtual connections) per site in concurrent mode.
    pub walkers_per_site: usize,
    /// Samples to collect from each site.
    pub target_per_site: usize,
    /// Base RNG seed; every (site, walker) pair derives a distinct seed.
    pub seed: u64,
    /// Efficiency ↔ skew slider position for every walker.
    pub slider: f64,
    /// Pinned bindings applied to every site's walkers (the sites share a
    /// schema structure, so attribute ids resolve identically fleet-wide).
    pub scope: hdsampler_model::ConjunctiveQuery,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            walkers_per_site: 2,
            target_per_site: 100,
            seed: 2009,
            slider: 0.0,
            scope: hdsampler_model::ConjunctiveQuery::empty(),
        }
    }
}

impl FleetConfig {
    /// Per-(site, walker) sampler configuration with a distinct seed.
    ///
    /// Shared by every driver — the threaded [`MultiSiteDriver`] and the
    /// cooperative [`CoopDriver`](crate::coop::CoopDriver) — so walker
    /// (s, w) walks the identical seeded sequence no matter which driver
    /// runs it. Golden-ratio mixing keeps (site, walker) seeds distinct
    /// without any two sites' walkers ever colliding for realistic fleet
    /// sizes.
    pub fn walker_config(&self, site_ix: usize, walker: usize) -> SamplerConfig {
        let seed = self
            .seed
            .wrapping_add((site_ix as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(walker as u64);
        SamplerConfig::seeded(seed)
            .with_slider(self.slider)
            .with_scope(self.scope.clone())
    }
}

/// Per-site outcome of a fleet run.
#[derive(Debug)]
pub struct SiteReport {
    /// The site's name.
    pub name: String,
    /// Samples collected (≤ target when the budget ran out).
    pub samples: SampleSet,
    /// Logical requests the site's walkers made (cache hits included).
    pub requests: u64,
    /// Page fetches actually charged at the site.
    pub queries_issued: u64,
    /// Requests the site's shared history cache absorbed.
    pub history_hits: u64,
    /// The site's wall clock (virtual for simulated wires — max over its
    /// connections — real for TCP ones).
    pub elapsed_ms: u64,
    /// Transient failures retried against this site (throttles, 5xx,
    /// dropped connections). Retries are charged here, never as extra
    /// logical queries.
    pub retries: u64,
    /// Total backoff the site's walkers waited before retrying, in wire
    /// milliseconds (virtual on simulated wires).
    pub backoff_vms: u64,
    /// Walkers stolen *into* this site from sites that finished early
    /// (cooperative driver with work-stealing enabled; 0 elsewhere).
    pub steals: u64,
    /// Why the site's session ended.
    pub stopped: StopReason,
    /// The site's merged sampler counters (walks, acceptance, …).
    pub stats: SamplerStats,
    /// The site's history-cache statistics (shards, hits by rule,
    /// evictions).
    pub history: HistoryStats,
}

/// Outcome of a whole fleet run.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-site outcomes, in task order.
    pub sites: Vec<SiteReport>,
    /// Fleet virtual wall clock: max over sites when concurrent, sum when
    /// serial.
    pub fleet_elapsed_ms: u64,
    /// Whether sites were driven concurrently.
    pub concurrent: bool,
}

impl FleetReport {
    /// Samples collected across the fleet.
    pub fn total_samples(&self) -> usize {
        self.sites.iter().map(|s| s.samples.len()).sum()
    }

    /// Page fetches charged across the fleet.
    pub fn total_fetches(&self) -> u64 {
        self.sites.iter().map(|s| s.queries_issued).sum()
    }

    /// Transient-failure retries across the fleet.
    pub fn total_retries(&self) -> u64 {
        self.sites.iter().map(|s| s.retries).sum()
    }

    /// Walkers stolen across the fleet (cooperative driver only).
    pub fn total_steals(&self) -> u64 {
        self.sites.iter().map(|s| s.steals).sum()
    }

    /// Fleet throughput in samples per virtual second. A fleet that spent
    /// no wire time (everything answered from history, or nothing ran)
    /// reports `0.0` — a throughput figure, never `NaN` (which used to
    /// leak all the way into the CLI table).
    pub fn samples_per_vsec(&self) -> f64 {
        if self.fleet_elapsed_ms == 0 {
            0.0
        } else {
            self.total_samples() as f64 / (self.fleet_elapsed_ms as f64 / 1_000.0)
        }
    }
}

/// Drives a fleet of sites to a per-site sample target.
#[derive(Debug, Default)]
pub struct MultiSiteDriver {
    cfg: FleetConfig,
}

impl MultiSiteDriver {
    /// Driver with the given fleet configuration.
    pub fn new(cfg: FleetConfig) -> Self {
        MultiSiteDriver { cfg }
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// Drive one site to the target with `walkers` threads sharing the
    /// site's history cache. `extra` sinks (forks of run-level sinks)
    /// observe alongside the task's own sink.
    fn drive_site<T: Transport + Clocked>(
        &self,
        task: &mut SiteTask<T>,
        site_ix: usize,
        walkers: usize,
        extra: &mut [&mut dyn SampleSink],
    ) -> SiteReport {
        // Split the task: the interface is shared by the executor, the
        // sink needs exclusive access for observation.
        let SiteTask {
            name,
            iface,
            sink,
            l2,
        } = task;
        let iface: &WebFormInterface<T> = iface;
        let mut sinks: Vec<&mut dyn SampleSink> = Vec::with_capacity(1 + extra.len());
        if let Some(s) = sink.as_deref_mut() {
            sinks.push(s);
        }
        for s in extra.iter_mut() {
            sinks.push(&mut **s);
        }

        let mut exec = CachingExecutor::new(iface);
        if let Some(log) = l2 {
            exec = exec.with_l2(std::sync::Arc::clone(log));
        }
        let session = SamplingSession::new(self.cfg.target_per_site).with_site(site_ix);
        let outcome: SessionOutcome = if walkers <= 1 {
            let mut sampler = HdsSampler::new(&exec, self.cfg.walker_config(site_ix, 0))
                .expect("fleet walker configuration is valid");
            session.run_observed(&mut sampler, &mut sinks, |_| {})
        } else {
            session.run_parallel_observed(
                walkers,
                |w| {
                    HdsSampler::new(&exec, self.cfg.walker_config(site_ix, w))
                        .expect("fleet walker configuration is valid")
                },
                &mut sinks,
            )
        };
        // The walker threads are gone; reap their idle keep-alive
        // connections (real-TCP transports) instead of stranding the
        // sockets for the transport's lifetime.
        iface.transport().close_idle();
        let mut stats = outcome.stats;
        stats.retries = iface.retries();
        stats.backoff_ms = iface.backoff_ms();
        SiteReport {
            name: name.clone(),
            samples: outcome.samples,
            requests: exec.requests(),
            queries_issued: exec.queries_issued(),
            history_hits: exec.history_stats().total_hits(),
            elapsed_ms: iface.transport().elapsed_ms(),
            retries: stats.retries,
            backoff_vms: stats.backoff_ms,
            steals: 0,
            stopped: outcome.reason,
            stats,
            history: exec.history_stats(),
        }
    }

    /// Drive every site concurrently: one runner thread per site, W walker
    /// threads per runner, fleet elapsed = max over sites.
    pub fn run_concurrent<T: Transport + Clocked + Send>(
        &self,
        sites: &mut [SiteTask<T>],
    ) -> FleetReport {
        self.run_concurrent_observed(sites, &mut [])
    }

    /// [`MultiSiteDriver::run_concurrent`] with run-level streaming
    /// observation: each sink in `run_sinks` is forked once per site, the
    /// forks ride the site runner threads, and they are merged back in
    /// site order after the join (per-site [`SiteTask`] sinks observe as
    /// well, on their own site's thread).
    pub fn run_concurrent_observed<T: Transport + Clocked + Send>(
        &self,
        sites: &mut [SiteTask<T>],
        run_sinks: &mut [&mut dyn SampleSink],
    ) -> FleetReport {
        let walkers = self.cfg.walkers_per_site.max(1);
        let results: Vec<(SiteReport, Vec<Box<dyn SampleSink>>)> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = sites
                    .iter_mut()
                    .enumerate()
                    .map(|(i, task)| {
                        let mut forks: Vec<Box<dyn SampleSink>> =
                            run_sinks.iter().map(|s| s.fork()).collect();
                        scope.spawn(move |_| {
                            let mut refs: Vec<&mut dyn SampleSink> =
                                forks.iter_mut().map(|b| &mut **b).collect();
                            let report = self.drive_site(task, i, walkers, &mut refs);
                            drop(refs);
                            (report, forks)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("site runner panicked"))
                    .collect()
            })
            .expect("fleet scope");
        let mut reports = Vec::with_capacity(results.len());
        for (report, forks) in results {
            for (sink, fork) in run_sinks.iter_mut().zip(forks) {
                sink.merge(fork);
            }
            reports.push(report);
        }
        let fleet_elapsed_ms = reports.iter().map(|r| r.elapsed_ms).max().unwrap_or(0);
        FleetReport {
            sites: reports,
            fleet_elapsed_ms,
            concurrent: true,
        }
    }

    /// The serial baseline: sites driven one after another, one walker and
    /// one connection each, fleet elapsed = sum over sites.
    pub fn run_serial<T: Transport + Clocked>(&self, sites: &mut [SiteTask<T>]) -> FleetReport {
        self.run_serial_observed(sites, &mut [])
    }

    /// [`MultiSiteDriver::run_serial`] with run-level streaming
    /// observation. Sites run sequentially, so the sinks observe the
    /// whole run directly — no forking.
    pub fn run_serial_observed<T: Transport + Clocked>(
        &self,
        sites: &mut [SiteTask<T>],
        run_sinks: &mut [&mut dyn SampleSink],
    ) -> FleetReport {
        let mut reports = Vec::with_capacity(sites.len());
        for (i, task) in sites.iter_mut().enumerate() {
            let mut refs: Vec<&mut dyn SampleSink> =
                run_sinks.iter_mut().map(|s| &mut **s).collect();
            reports.push(self.drive_site(task, i, 1, &mut refs));
        }
        let fleet_elapsed_ms = reports.iter().map(|r| r.elapsed_ms).sum();
        FleetReport {
            sites: reports,
            fleet_elapsed_ms,
            concurrent: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{LatencyTransport, LocalSite};
    use hdsampler_hidden_db::HiddenDb;
    use hdsampler_model::{Attribute, FormInterface, SchemaBuilder, Tuple};
    use hdsampler_workload::figure1_db;
    use std::sync::Arc;

    fn figure1_task(
        name: &str,
        latency_ms: u64,
    ) -> SiteTask<LatencyTransport<LocalSite<HiddenDb>>> {
        let db = figure1_db(1);
        let schema = Arc::new(db.schema().clone());
        let site = LocalSite::new(db, Arc::clone(&schema));
        let wire = LatencyTransport::new(site, latency_ms);
        SiteTask::new(name, WebFormInterface::new(wire, schema, 1, false))
    }

    fn budgeted_task(
        name: &str,
        latency_ms: u64,
        budget: u64,
    ) -> SiteTask<LatencyTransport<LocalSite<HiddenDb>>> {
        // Four Boolean attributes with every combination present: the
        // query tree is far too large to cache within a small budget, so
        // exhaustion is guaranteed (a tiny database would be fully learned
        // by the history cache, after which samples are free forever).
        let schema = SchemaBuilder::new()
            .attribute(Attribute::boolean("x"))
            .attribute(Attribute::boolean("y"))
            .attribute(Attribute::boolean("z"))
            .attribute(Attribute::boolean("w"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(Arc::clone(&schema))
            .result_limit(1)
            .query_budget(budget);
        for bits in 0..16u16 {
            let vals: Vec<u16> = (0..4).map(|i| (bits >> i) & 1).collect();
            b.push(&Tuple::new(&schema, vals, vec![]).unwrap()).unwrap();
        }
        let site = LocalSite::new(b.finish(), Arc::clone(&schema));
        let wire = LatencyTransport::new(site, latency_ms);
        SiteTask::new(name, WebFormInterface::new(wire, schema, 1, false))
    }

    #[test]
    fn concurrent_fleet_beats_serial_on_virtual_time() {
        let cfg = FleetConfig {
            walkers_per_site: 2,
            target_per_site: 25,
            seed: 7,
            ..FleetConfig::default()
        };
        let driver = MultiSiteDriver::new(cfg);

        let mut serial_sites: Vec<_> = (0..3)
            .map(|i| figure1_task(&format!("s{i}"), 100))
            .collect();
        let serial = driver.run_serial(&mut serial_sites);
        assert!(!serial.concurrent);
        assert_eq!(serial.total_samples(), 75);
        assert_eq!(
            serial.fleet_elapsed_ms,
            serial.sites.iter().map(|s| s.elapsed_ms).sum::<u64>(),
            "serial fleet time sums over sites"
        );

        let mut conc_sites: Vec<_> = (0..3)
            .map(|i| figure1_task(&format!("c{i}"), 100))
            .collect();
        let concurrent = driver.run_concurrent(&mut conc_sites);
        assert!(concurrent.concurrent);
        assert_eq!(concurrent.total_samples(), 75);
        assert_eq!(
            concurrent.fleet_elapsed_ms,
            concurrent.sites.iter().map(|s| s.elapsed_ms).max().unwrap(),
            "concurrent fleet time is the max over sites"
        );
        assert!(
            concurrent.fleet_elapsed_ms < serial.fleet_elapsed_ms,
            "overlap must win: {} vs {}",
            concurrent.fleet_elapsed_ms,
            serial.fleet_elapsed_ms
        );
        for site in &concurrent.sites {
            assert_eq!(site.stopped, StopReason::TargetReached);
            assert!(site.queries_issued > 0);
            assert!(
                site.requests >= site.queries_issued,
                "cache hits never exceed requests"
            );
        }
    }

    #[test]
    fn zero_elapsed_fleet_reports_zero_throughput_not_nan() {
        // Regression: a fleet that never touched the wire (e.g. every
        // request served from history) used to report NaN samples/s, and
        // the CLI printed it verbatim.
        let report = FleetReport {
            sites: vec![],
            fleet_elapsed_ms: 0,
            concurrent: true,
        };
        assert_eq!(report.samples_per_vsec(), 0.0);
        let report = FleetReport {
            sites: vec![],
            fleet_elapsed_ms: 2_000,
            concurrent: false,
        };
        assert_eq!(report.samples_per_vsec(), 0.0, "0 samples / 2 s = 0");
    }

    #[test]
    fn fleet_scope_pins_every_walker() {
        use hdsampler_model::{AttrId, ConjunctiveQuery};
        let cfg = FleetConfig {
            walkers_per_site: 2,
            target_per_site: 20,
            seed: 11,
            scope: ConjunctiveQuery::from_pairs([(AttrId(1), 1)]).unwrap(),
            ..FleetConfig::default()
        };
        let driver = MultiSiteDriver::new(cfg);
        let mut sites: Vec<_> = (0..2).map(|i| figure1_task(&format!("s{i}"), 50)).collect();
        let report = driver.run_concurrent(&mut sites);
        for site in &report.sites {
            assert_eq!(site.stopped, StopReason::TargetReached);
            for row in site.samples.rows() {
                assert_eq!(row.values[1], 1, "every sample honours the scope");
            }
        }
    }

    #[test]
    fn per_site_budgets_are_enforced() {
        let cfg = FleetConfig {
            walkers_per_site: 2,
            target_per_site: 1_000,
            seed: 3,
            ..FleetConfig::default()
        };
        let driver = MultiSiteDriver::new(cfg);
        // One starving site next to a healthy one: the budgeted site stops
        // early with partial results, the rest of the fleet is unaffected.
        let mut sites = vec![budgeted_task("starved", 50, 12), figure1_task("ok", 50)];
        let report = driver.run_concurrent(&mut sites);
        let starved = &report.sites[0];
        assert_eq!(starved.stopped, StopReason::BudgetExhausted);
        assert!(starved.samples.len() < 1_000);
        // The site-side budget is a hard cap on *charged* queries; the
        // scraper-side fetch counter may additionally record the rejected
        // attempts that discovered the exhaustion (at most one per walker).
        assert!(
            sites[0].iface.transport().inner().backend().budget().used() <= 12,
            "budget is a hard cap at the site"
        );
        assert!(starved.queries_issued <= 12 + 2);
        // The unbudgeted site is unaffected by its neighbour's starvation.
        assert_eq!(report.sites[1].stopped, StopReason::TargetReached);
    }
}
