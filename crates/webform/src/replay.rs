//! Record and replay the wire: `replay:` locators.
//!
//! [`RecordingTransport`] is a decorator that passes every fetch through to
//! its inner transport and appends the `(path, outcome)` pair to a JSONL
//! tape — one [`TapeEntry`] per line, flushed eagerly so the tape survives
//! an abrupt exit. [`ReplaySite`] loads such a tape and serves it back as a
//! [`Transport`]: per request path, recorded outcomes are dealt in recorded
//! order (FIFO), and once a path's queue runs dry its last outcome repeats
//! — a page a deterministic walker fetched once, a re-run may fetch again.
//!
//! Because the landing page `/` goes through the same transport, a
//! recording made with schema discovery *contains* the discovery page, so
//! replaying needs no schema flags either: the whole pipeline — discover,
//! configure, walk — runs offline, byte-identical to the recorded session.
//! That makes `replay:` tapes a zero-server CI path for the full stack.

use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;

use hdsampler_model::InterfaceError;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::aio::{AsyncTransport, ConnId, FetchHandle, FetchPoll};
use crate::transport::{Clocked, Transport};

/// One recorded exchange: request path in, outcome out. Flat on purpose —
/// the vendored JSON layer round-trips plain structs, and a flat record
/// keeps tapes greppable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TapeEntry {
    /// The request path (path + query string), exactly as fetched.
    pub path: String,
    /// Outcome kind: `ok`, `budget-exhausted`, `throttled`,
    /// `schema-mismatch`, `transport` or `parse`.
    pub kind: String,
    /// The page body (`ok`) or the error message; empty for the numeric
    /// error kinds.
    pub body: String,
    /// Numeric payload: queries issued (`budget-exhausted`) or the
    /// advertised backoff in milliseconds (`throttled`); `0` otherwise.
    pub ms: u64,
}

impl TapeEntry {
    /// Snapshot a fetch outcome for `path`.
    fn from_outcome(path: &str, outcome: &Result<String, InterfaceError>) -> TapeEntry {
        let (kind, body, ms) = match outcome {
            Ok(page) => ("ok", page.clone(), 0),
            Err(InterfaceError::BudgetExhausted { issued }) => {
                ("budget-exhausted", String::new(), *issued)
            }
            Err(InterfaceError::Throttled { retry_after_ms }) => {
                ("throttled", String::new(), *retry_after_ms)
            }
            Err(InterfaceError::SchemaMismatch(msg)) => ("schema-mismatch", msg.clone(), 0),
            Err(InterfaceError::Transport(msg)) => ("transport", msg.clone(), 0),
            Err(InterfaceError::Parse(msg)) => ("parse", msg.clone(), 0),
            // Interface-layer errors (InvalidQuery, Unsupported) never
            // cross a transport; if one somehow does, keep its text.
            Err(other) => ("transport", other.to_string(), 0),
        };
        TapeEntry {
            path: path.to_owned(),
            kind: kind.into(),
            body,
            ms,
        }
    }

    /// Rebuild the fetch outcome this entry recorded.
    fn to_outcome(&self) -> Result<String, InterfaceError> {
        match self.kind.as_str() {
            "ok" => Ok(self.body.clone()),
            "budget-exhausted" => Err(InterfaceError::BudgetExhausted { issued: self.ms }),
            "throttled" => Err(InterfaceError::Throttled {
                retry_after_ms: self.ms,
            }),
            "schema-mismatch" => Err(InterfaceError::SchemaMismatch(self.body.clone())),
            "transport" => Err(InterfaceError::Transport(self.body.clone())),
            "parse" => Err(InterfaceError::Parse(self.body.clone())),
            other => Err(InterfaceError::Transport(format!(
                "replay tape: unknown entry kind `{other}`"
            ))),
        }
    }
}

/// Transport decorator writing every exchange to a JSONL tape.
///
/// Implements whichever faces its inner transport has: blocking
/// [`Transport`], non-blocking [`AsyncTransport`] (outcomes are recorded at
/// poll/complete time, i.e. in completion order — the order a replayed
/// walker consumes them in), and [`Clocked`].
#[derive(Debug)]
pub struct RecordingTransport<T> {
    inner: T,
    tape: Mutex<BufWriter<File>>,
    /// Paths of submitted-but-uncompleted async fetches, by handle id.
    pending: Mutex<HashMap<u64, String>>,
}

impl<T> RecordingTransport<T> {
    /// Wrap `inner`, recording to a fresh tape at `path` (truncated).
    ///
    /// # Errors
    /// A message when the tape file cannot be created.
    pub fn create(inner: T, path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let file = File::create(path)
            .map_err(|e| format!("cannot create tape `{}`: {e}", path.display()))?;
        Ok(RecordingTransport {
            inner,
            tape: Mutex::new(BufWriter::new(file)),
            pending: Mutex::new(HashMap::new()),
        })
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    fn record(&self, path: &str, outcome: &Result<String, InterfaceError>) {
        let entry = TapeEntry::from_outcome(path, outcome);
        let line = serde_json::to_string(&entry).expect("tape entries always serialize");
        let mut tape = self.tape.lock();
        // Eager line-by-line flush: a tape is most valuable exactly when
        // the run did not end cleanly.
        let _ = writeln!(tape, "{line}");
        let _ = tape.flush();
    }
}

impl<T: Transport> Transport for RecordingTransport<T> {
    fn fetch(&self, path: &str) -> Result<String, InterfaceError> {
        let outcome = self.inner.fetch(path);
        self.record(path, &outcome);
        outcome
    }

    fn close_idle(&self) -> usize {
        self.inner.close_idle()
    }

    fn backoff(&self, ms: u64) {
        self.inner.backoff(ms)
    }
}

impl<T: Clocked> Clocked for RecordingTransport<T> {
    fn elapsed_ms(&self) -> u64 {
        self.inner.elapsed_ms()
    }
}

impl<T: AsyncTransport> AsyncTransport for RecordingTransport<T> {
    fn connect(&self) -> ConnId {
        self.inner.connect()
    }

    fn submit(&self, conn: ConnId, path: &str) -> FetchHandle {
        let handle = self.inner.submit(conn, path);
        self.pending.lock().insert(handle.id, path.to_owned());
        handle
    }

    fn poll(&self, handle: FetchHandle) -> FetchPoll {
        let id = handle.id;
        match self.inner.poll(handle) {
            FetchPoll::Pending(h) => FetchPoll::Pending(h),
            FetchPoll::Ready(outcome) => {
                if let Some(path) = self.pending.lock().remove(&id) {
                    self.record(&path, &outcome);
                }
                FetchPoll::Ready(outcome)
            }
        }
    }

    fn complete(&self, handle: FetchHandle) -> Result<String, InterfaceError> {
        let id = handle.id;
        let outcome = self.inner.complete(handle);
        if let Some(path) = self.pending.lock().remove(&id) {
            self.record(&path, &outcome);
        }
        outcome
    }

    fn cancel(&self, handle: FetchHandle) {
        self.pending.lock().remove(&handle.id);
        self.inner.cancel(handle);
    }

    fn observe_now(&self, conn: ConnId, now_ms: u64) {
        self.inner.observe_now(conn, now_ms)
    }

    fn virtual_elapsed_ms(&self) -> u64 {
        self.inner.virtual_elapsed_ms()
    }

    fn wire_is_virtual(&self) -> bool {
        self.inner.wire_is_virtual()
    }

    fn wait_ready(&self, timeout_ms: u64) -> Option<usize> {
        self.inner.wait_ready(timeout_ms)
    }
}

/// Per-path replay state: outcomes still queued, plus the last one dealt
/// (the repeat fallback).
#[derive(Debug)]
struct PathQueue {
    queued: VecDeque<TapeEntry>,
    last: Option<TapeEntry>,
}

/// A site served entirely from a recorded tape — the `replay:` connector's
/// transport. No server, no database: every page comes back byte-identical
/// to the recording.
#[derive(Debug)]
pub struct ReplaySite {
    tape_path: String,
    queues: Mutex<HashMap<String, PathQueue>>,
    entries: usize,
}

impl ReplaySite {
    /// Load the JSONL tape at `path`.
    ///
    /// # Errors
    /// A message naming the file and the offending line when the tape is
    /// missing or malformed.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read tape `{}`: {e}", path.display()))?;
        let mut queues: HashMap<String, PathQueue> = HashMap::new();
        let mut entries = 0;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let entry: TapeEntry = serde_json::from_str(line).map_err(|e| {
                format!(
                    "tape `{}` line {}: not a tape entry ({e})",
                    path.display(),
                    lineno + 1
                )
            })?;
            entries += 1;
            queues
                .entry(entry.path.clone())
                .or_insert_with(|| PathQueue {
                    queued: VecDeque::new(),
                    last: None,
                })
                .queued
                .push_back(entry);
        }
        Ok(ReplaySite {
            tape_path: path.display().to_string(),
            queues: Mutex::new(queues),
            entries,
        })
    }

    /// Number of exchanges on the tape.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// The tape file this site serves from.
    pub fn tape_path(&self) -> &str {
        &self.tape_path
    }
}

impl Transport for ReplaySite {
    fn fetch(&self, path: &str) -> Result<String, InterfaceError> {
        let mut queues = self.queues.lock();
        let Some(q) = queues.get_mut(path) else {
            return Err(InterfaceError::Transport(format!(
                "404 not found: replay tape `{}` has no page for `{path}`",
                self.tape_path
            )));
        };
        match q.queued.pop_front() {
            Some(entry) => {
                let outcome = entry.to_outcome();
                q.last = Some(entry);
                outcome
            }
            // Queue dry: repeat the last recorded outcome for this path —
            // deterministic walkers may legitimately revisit a page more
            // often than the recording run did.
            None => q
                .last
                .as_ref()
                .expect("a queued path always has a last entry")
                .to_outcome(),
        }
    }

    fn backoff(&self, _ms: u64) {
        // Replays run offline: never actually sleep.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{LatencyTransport, LocalSite};
    use hdsampler_hidden_db::HiddenDb;
    use hdsampler_model::{Attribute, SchemaBuilder, Tuple};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn temp_tape(tag: &str) -> std::path::PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("hds_tape_{}_{tag}_{n}.jsonl", std::process::id()))
    }

    fn site() -> LocalSite<HiddenDb> {
        let schema = SchemaBuilder::new()
            .attribute(Attribute::categorical("make", ["Toyota", "Honda"]).unwrap())
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(Arc::clone(&schema)).result_limit(1);
        for v in [0u16, 0, 1] {
            b.push(&Tuple::new(&schema, vec![v], vec![]).unwrap())
                .unwrap();
        }
        LocalSite::new(b.finish(), schema)
    }

    #[test]
    fn record_then_replay_is_byte_identical() {
        let tape = temp_tape("roundtrip");
        let paths = [
            "/",
            "/search?make=Honda",
            "/search?make=Toyota",
            "/search?bogus=1",
            "/nosuchpage",
            "/search?make=Honda",
        ];
        let recorded: Vec<_> = {
            let rec = RecordingTransport::create(site(), &tape).unwrap();
            paths.iter().map(|p| rec.fetch(p)).collect()
        };
        let replay = ReplaySite::load(&tape).unwrap();
        assert_eq!(replay.entries(), paths.len());
        for (p, want) in paths.iter().zip(&recorded) {
            assert_eq!(&replay.fetch(p), want, "path {p}");
        }
        std::fs::remove_file(&tape).ok();
    }

    #[test]
    fn replay_repeats_the_last_outcome_when_a_path_runs_dry() {
        let tape = temp_tape("dry");
        {
            let rec = RecordingTransport::create(site(), &tape).unwrap();
            rec.fetch("/search?make=Honda").unwrap();
        }
        let replay = ReplaySite::load(&tape).unwrap();
        let first = replay.fetch("/search?make=Honda").unwrap();
        let again = replay.fetch("/search?make=Honda").unwrap();
        assert_eq!(first, again, "dry queue repeats its last page");
        std::fs::remove_file(&tape).ok();
    }

    #[test]
    fn replay_404s_paths_the_tape_never_saw() {
        let tape = temp_tape("miss");
        {
            let rec = RecordingTransport::create(site(), &tape).unwrap();
            rec.fetch("/search?make=Honda").unwrap();
        }
        let replay = ReplaySite::load(&tape).unwrap();
        let err = replay.fetch("/search?make=Toyota").unwrap_err();
        assert!(
            matches!(&err, InterfaceError::Transport(msg)
                if msg.contains("404") && msg.contains("/search?make=Toyota")),
            "{err:?}"
        );
        std::fs::remove_file(&tape).ok();
    }

    #[test]
    fn async_face_records_in_completion_order() {
        let tape = temp_tape("async");
        {
            let rec = RecordingTransport::create(LatencyTransport::new(site(), 10), &tape).unwrap();
            let conn = rec.connect();
            let a = rec.submit(conn, "/search?make=Honda");
            let b = rec.submit(conn, "/search?make=Toyota");
            // Complete out of submission order: the tape must follow
            // completions, because that is the order a replayed run
            // consumes outcomes in.
            rec.complete(b).unwrap();
            rec.complete(a).unwrap();
            let c = rec.submit(conn, "/search?make=Honda");
            rec.cancel(c); // cancelled fetches never reach the tape
        }
        let replay = ReplaySite::load(&tape).unwrap();
        assert_eq!(replay.entries(), 2);
        assert!(replay
            .fetch("/search?make=Toyota")
            .unwrap()
            .contains("<table"));
        assert!(replay
            .fetch("/search?make=Honda")
            .unwrap()
            .contains("Honda"));
        std::fs::remove_file(&tape).ok();
    }

    #[test]
    fn error_outcomes_survive_the_tape() {
        for (outcome, kind) in [
            (
                Err(InterfaceError::BudgetExhausted { issued: 42 }),
                "budget-exhausted",
            ),
            (
                Err(InterfaceError::Throttled {
                    retry_after_ms: 250,
                }),
                "throttled",
            ),
            (
                Err(InterfaceError::SchemaMismatch("400 bad request: x".into())),
                "schema-mismatch",
            ),
            (
                Err(InterfaceError::Transport("503 down".into())),
                "transport",
            ),
            (Err(InterfaceError::Parse("bad page".into())), "parse"),
            (Ok("page".to_string()), "ok"),
        ] {
            let entry = TapeEntry::from_outcome("/p", &outcome);
            assert_eq!(entry.kind, kind);
            assert_eq!(entry.to_outcome(), outcome);
            let line = serde_json::to_string(&entry).unwrap();
            let back: TapeEntry = serde_json::from_str(&line).unwrap();
            assert_eq!(back, entry, "JSONL round trip");
        }
    }

    #[test]
    fn malformed_tapes_fail_with_line_numbers() {
        let tape = temp_tape("malformed");
        std::fs::write(
            &tape,
            "{\"path\":\"/\",\"kind\":\"ok\",\"body\":\"x\",\"ms\":0}\nnot json\n",
        )
        .unwrap();
        let err = ReplaySite::load(&tape).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        std::fs::remove_file(&tape).ok();
        assert!(ReplaySite::load("/nonexistent/tape.jsonl").is_err());
    }
}
