//! Server-side rendering of result pages.
//!
//! Pages follow a fixed, realistic structure: an optional count banner
//! ("About 12,000 results"), an overflow notice when the top-k truncation
//! kicked in, and a `<table class="results">` whose first column is the
//! listing key, followed by one column per attribute (display labels) and
//! one per measure (shortest-roundtrip float formatting so scraped numbers
//! are bit-exact).

use hdsampler_model::{QueryResponse, Schema};

/// Escape `& < > "` for HTML text/attribute contexts.
pub fn escape_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Unescape the entities produced by [`escape_html`].
pub fn unescape_html(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&amp;", "&")
}

/// Insert thousands separators: `1234567` → `"1,234,567"`.
pub fn format_thousands(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, ch) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// Render a complete results page for `response`.
pub fn render_results_page(schema: &Schema, response: &QueryResponse, k: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<html><head><title>Search results</title></head><body>"
    );
    if let Some(count) = response.reported_count {
        let _ = writeln!(
            out,
            "<div class=\"count\">About {} results</div>",
            format_thousands(count)
        );
    }
    if response.overflow {
        let _ = writeln!(
            out,
            "<div class=\"overflow\">Showing the top {k} matching listings. \
             Refine your search to see more specific results.</div>"
        );
    }
    if response.rows.is_empty() {
        let _ = writeln!(out, "<div class=\"noresults\">No results found.</div>");
    }
    let _ = writeln!(out, "<table class=\"results\">");
    let _ = write!(out, "<tr><th>id</th>");
    for attr in schema.attributes() {
        let _ = write!(out, "<th>{}</th>", escape_html(attr.name()));
    }
    for m in schema.measures() {
        let _ = write!(out, "<th>{}</th>", escape_html(m.name()));
    }
    let _ = writeln!(out, "</tr>");
    for row in &response.rows {
        let _ = write!(out, "<tr><td>{}</td>", row.key);
        for (id, attr) in schema.iter() {
            let _ = write!(
                out,
                "<td>{}</td>",
                escape_html(&attr.label(row.values[id.index()]))
            );
        }
        for &x in row.measures.iter() {
            // `{:?}` prints the shortest string that parses back to the
            // same f64 — the scrape side relies on this.
            let _ = write!(out, "<td>{x:?}</td>");
        }
        let _ = writeln!(out, "</tr>");
    }
    let _ = writeln!(out, "</table>");
    let _ = writeln!(out, "</body></html>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_model::{Attribute, Measure, Row, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new()
            .attribute(Attribute::categorical("make", ["Toyota", "A&B <Cars>"]).unwrap())
            .measure(Measure::new("price"))
            .finish()
            .unwrap()
    }

    #[test]
    fn escape_roundtrip() {
        for s in ["plain", "a & b", "<tag>", "\"quoted\"", "&amp;-already"] {
            assert_eq!(unescape_html(&escape_html(s)), s);
        }
    }

    #[test]
    fn thousands_grouping() {
        assert_eq!(format_thousands(0), "0");
        assert_eq!(format_thousands(999), "999");
        assert_eq!(format_thousands(1_000), "1,000");
        assert_eq!(format_thousands(1_234_567), "1,234,567");
        assert_eq!(format_thousands(12_000), "12,000");
    }

    #[test]
    fn page_structure() {
        let s = schema();
        let resp = QueryResponse {
            rows: vec![Row::new(42, vec![1], vec![19_999.5])],
            overflow: true,
            reported_count: Some(12_000),
        };
        let html = render_results_page(&s, &resp, 1000);
        assert!(html.contains("About 12,000 results"));
        assert!(html.contains("top 1000"));
        assert!(html.contains("<td>42</td>"));
        assert!(html.contains("A&amp;B &lt;Cars&gt;"));
        assert!(html.contains("<td>19999.5</td>"));
    }

    #[test]
    fn empty_page_says_so() {
        let s = schema();
        let resp = QueryResponse {
            rows: vec![],
            overflow: false,
            reported_count: Some(0),
        };
        let html = render_results_page(&s, &resp, 10);
        assert!(html.contains("No results found."));
        assert!(!html.contains("class=\"overflow\""));
    }
}
