//! Trace journaling, the wire event format, and the `/events` client.
//!
//! This module is the glue between the in-process observability types
//! ([`TraceEvent`](hdsampler_core::TraceEvent) /
//! [`SampleEvent`](hdsampler_core::SampleEvent)) and their on-disk /
//! on-wire representations:
//!
//! * [`write_journal`] / [`read_journal`] — JSONL trace journals
//!   (`--trace <path>`), one event per line, in emission order. A seeded
//!   virtual-wire run journals bit-identically across repetitions.
//! * [`WireSampleEvent`] — the owned, serializable snapshot of an
//!   accepted-sample event that the server's `/events` SSE stream
//!   carries, and that `--watch --remote` consumes.
//! * [`watch_events`] — a dependency-free chunked-transfer SSE client
//!   (the consumer half of the server's `/events` plane).
//! * [`TraceReport`] / [`summarize`] — the per-stage latency breakdown
//!   behind `hdsampler trace report`.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::path::Path;

use hdsampler_core::{SampleEvent, TraceEvent};
use serde::{Deserialize, Serialize};

/// Serialize one trace event as its canonical single-line JSON form.
pub fn event_json(event: &TraceEvent) -> String {
    serde_json::to_string(event).expect("TraceEvent serializes")
}

/// Parse one journal line back into a trace event.
pub fn parse_event(line: &str) -> Result<TraceEvent, String> {
    serde_json::from_str(line).map_err(|e| format!("bad trace line: {e}"))
}

/// Write `events` to `path` as JSONL, one event per line, in order.
pub fn write_journal(path: &Path, events: &[TraceEvent]) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = BufWriter::new(file);
    for event in events {
        out.write_all(event_json(event).as_bytes())?;
        out.write_all(b"\n")?;
    }
    out.flush()
}

/// Read a JSONL trace journal back, in journal order.
pub fn read_journal(path: &Path) -> Result<Vec<TraceEvent>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_event(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(events)
}

/// The owned snapshot of a [`SampleEvent`] that crosses the wire on the
/// server's `/events` stream. Carries everything a remote watcher needs
/// to mirror a local progress display: provenance, running counts, and
/// the sampled row's key and weight (the row values themselves stay
/// server-side — a watcher tracks progress, not payloads).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WireSampleEvent {
    /// Site index within the run.
    pub site: usize,
    /// Walker index within the site.
    pub walker: usize,
    /// Samples collected so far, this event included.
    pub collected: usize,
    /// Target sample count.
    pub target: usize,
    /// Distinct queries issued so far (running counter).
    pub queries: u64,
    /// Total requests answered so far, cache hits included.
    pub requests: u64,
    /// The accepted row's site-assigned listing key.
    pub key: u64,
    /// The accepted sample's importance weight.
    pub weight: f64,
}

impl WireSampleEvent {
    /// Snapshot a borrowed in-process event into its wire form.
    pub fn from_event(ev: &SampleEvent<'_>) -> Self {
        WireSampleEvent {
            site: ev.site,
            walker: ev.walker,
            collected: ev.collected,
            target: ev.target,
            queries: ev.queries,
            requests: ev.requests,
            key: ev.sample.row.key,
            weight: ev.sample.weight,
        }
    }

    /// Single-line JSON form (the SSE `data:` payload).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("WireSampleEvent serializes")
    }

    /// Parse the SSE `data:` payload back.
    pub fn parse(line: &str) -> Result<Self, String> {
        serde_json::from_str(line).map_err(|e| format!("bad event payload: {e}"))
    }
}

/// Serialize a borrowed sample event straight to its wire JSON.
pub fn sample_event_json(ev: &SampleEvent<'_>) -> String {
    WireSampleEvent::from_event(ev).to_json()
}

/// Subscribe to `GET /events` on `addr` (`host:port`) and deliver each
/// streamed [`WireSampleEvent`] to `on_event` until the server closes the
/// stream or the callback returns `false`. Returns the number of events
/// delivered.
///
/// The transfer is HTTP/1.1 chunked `text/event-stream`; this client
/// reassembles chunks, then splits SSE frames on blank lines and parses
/// each `data:` payload.
pub fn watch_events(
    addr: &str,
    mut on_event: impl FnMut(WireSampleEvent) -> bool,
) -> Result<usize, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    writer
        .write_all(
            format!("GET /events HTTP/1.1\r\nHost: {addr}\r\nAccept: text/event-stream\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| format!("send request: {e}"))?;

    let mut reader = BufReader::new(stream);
    let status = read_crlf_line(&mut reader)?;
    if !status.contains(" 200 ") {
        return Err(format!("server answered {status:?}, not 200"));
    }
    let mut chunked = false;
    loop {
        let line = read_crlf_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        if line.eq_ignore_ascii_case("transfer-encoding: chunked") {
            chunked = true;
        }
    }
    if !chunked {
        return Err("server did not answer with a chunked stream".into());
    }

    let mut delivered = 0usize;
    let mut text = String::new();
    // A read error here means the server closed mid-stream: treat as end.
    while let Ok(size_line) = read_crlf_line(&mut reader) {
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| format!("bad chunk size {size_line:?}"))?;
        let mut chunk = vec![0u8; size + 2]; // payload + trailing CRLF
        reader
            .read_exact(&mut chunk)
            .map_err(|e| format!("short chunk: {e}"))?;
        if size == 0 {
            break; // terminal chunk
        }
        chunk.truncate(size);
        text.push_str(&String::from_utf8_lossy(&chunk));

        // SSE frames are separated by blank lines; deliver every
        // complete `sample` frame, keep the unterminated tail buffered.
        // Other event types (`trace`) and comment frames pass through
        // unparsed — the stream multiplexes more than sample events.
        while let Some(pos) = text.find("\n\n") {
            let frame: String = text[..pos].to_string();
            text.drain(..pos + 2);
            let event = frame
                .lines()
                .find_map(|l| l.strip_prefix("event: "))
                .unwrap_or("");
            if event != "sample" {
                continue;
            }
            for line in frame.lines() {
                if let Some(payload) = line.strip_prefix("data: ") {
                    delivered += 1;
                    if !on_event(WireSampleEvent::parse(payload)?) {
                        return Ok(delivered);
                    }
                }
            }
        }
    }
    Ok(delivered)
}

/// Read one CRLF-terminated line off an HTTP stream, without the CRLF.
fn read_crlf_line(reader: &mut impl BufRead) -> Result<String, String> {
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| format!("read line: {e}"))?;
    if n == 0 {
        return Err("connection closed".into());
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Aggregate latency attribution over a trace journal — the numbers
/// behind `hdsampler trace report`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceReport {
    /// Total events in the journal.
    pub events: usize,
    /// Event count per `kind/detail`.
    pub by_kind: BTreeMap<String, usize>,
    /// Completed wire fetches.
    pub fetches: usize,
    /// Virtual ms fetches spent queued behind their connection.
    pub queue_ms: u64,
    /// Virtual ms fetches spent in service (dur − queue).
    pub service_ms: u64,
    /// Retry backoffs taken, and their total virtual wait.
    pub retries: usize,
    /// Total backoff wait across retries (virtual ms).
    pub backoff_ms: u64,
    /// History-cache hits and misses.
    pub cache_hits: usize,
    /// History-cache misses (queries that went to the wire).
    pub cache_misses: usize,
    /// Stall resolutions (coop driver forced the earliest fetch).
    pub stalls: usize,
    /// Work-stealing rebalances granted.
    pub steals: usize,
    /// Accepted samples.
    pub samples: usize,
    /// Makespan: the latest virtual timestamp any event carries.
    pub makespan_ms: u64,
    /// Per-connection busy time (sum of service ms), keyed by conn index.
    pub conn_busy_ms: BTreeMap<u64, u64>,
}

impl TraceReport {
    /// The connection carrying the most service time — the wire-side
    /// critical path — as `(conn, busy_ms)`.
    pub fn critical_conn(&self) -> Option<(u64, u64)> {
        self.conn_busy_ms
            .iter()
            .max_by_key(|&(conn, busy)| (*busy, std::cmp::Reverse(*conn)))
            .map(|(c, b)| (*c, *b))
    }
}

/// Summarize a trace journal into its per-stage latency breakdown.
pub fn summarize(events: &[TraceEvent]) -> TraceReport {
    let mut report = TraceReport {
        events: events.len(),
        ..TraceReport::default()
    };
    for ev in events {
        let label = if ev.detail.is_empty() {
            ev.kind.clone()
        } else {
            format!("{}/{}", ev.kind, ev.detail)
        };
        *report.by_kind.entry(label).or_insert(0) += 1;
        report.makespan_ms = report.makespan_ms.max(ev.at_ms);
        match (ev.kind.as_str(), ev.detail.as_str()) {
            ("wire", "complete") => {
                report.fetches += 1;
                report.queue_ms += ev.queue_ms;
                report.service_ms += ev.dur_ms.saturating_sub(ev.queue_ms);
                *report.conn_busy_ms.entry(ev.conn).or_insert(0) +=
                    ev.dur_ms.saturating_sub(ev.queue_ms);
            }
            ("retry", _) => {
                report.retries += 1;
                report.backoff_ms += ev.dur_ms;
            }
            ("cache", "hit") => report.cache_hits += 1,
            ("cache", "miss") => report.cache_misses += 1,
            ("stall", _) => report.stalls += 1,
            ("steal", _) => report.steals += 1,
            ("sample", _) => report.samples += 1,
            _ => {}
        }
    }
    report
}

impl fmt::Display for TraceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace report: {} events", self.events)?;
        writeln!(f, "  events by kind:")?;
        for (label, count) in &self.by_kind {
            writeln!(f, "    {label:<16} {count}")?;
        }
        writeln!(f, "  wire: {} fetches completed", self.fetches)?;
        if self.fetches > 0 {
            let n = self.fetches as u64;
            writeln!(
                f,
                "    queue   {} ms total, {} ms mean",
                self.queue_ms,
                self.queue_ms / n
            )?;
            writeln!(
                f,
                "    service {} ms total, {} ms mean",
                self.service_ms,
                self.service_ms / n
            )?;
        }
        writeln!(
            f,
            "  retries: {} ({} ms backoff)  stalls: {}  steals: {}",
            self.retries, self.backoff_ms, self.stalls, self.steals
        )?;
        let classified = self.cache_hits + self.cache_misses;
        if classified > 0 {
            writeln!(
                f,
                "  cache: {} hits / {} misses ({:.0}% saved)",
                self.cache_hits,
                self.cache_misses,
                self.cache_hits as f64 / classified as f64 * 100.0
            )?;
        }
        writeln!(f, "  samples: {}", self.samples)?;
        write!(f, "  critical path: makespan {} ms", self.makespan_ms)?;
        if let Some((conn, busy)) = self.critical_conn() {
            let share = if self.makespan_ms > 0 {
                busy as f64 / self.makespan_ms as f64 * 100.0
            } else {
                0.0
            };
            write!(
                f,
                "; busiest conn {conn} in service {busy} ms ({share:.0}%)"
            )?;
        }
        writeln!(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_core::{Sample, SampleMeta};
    use hdsampler_model::Row;

    fn ev(kind: &str, detail: &str) -> TraceEvent {
        TraceEvent {
            kind: kind.into(),
            detail: detail.into(),
            ..TraceEvent::default()
        }
    }

    #[test]
    fn journal_roundtrips_through_disk() {
        let events = vec![
            TraceEvent {
                kind: "wire".into(),
                detail: "submit".into(),
                span: 1,
                conn: 2,
                at_ms: 10,
                ..TraceEvent::default()
            },
            TraceEvent {
                kind: "wire".into(),
                detail: "complete".into(),
                span: 1,
                conn: 2,
                at_ms: 110,
                dur_ms: 100,
                queue_ms: 25,
                ..TraceEvent::default()
            },
        ];
        let dir = std::env::temp_dir().join("hds-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        write_journal(&path, &events).unwrap();
        let back = read_journal(&path).unwrap();
        assert_eq!(back, events);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "one JSON object per line");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wire_sample_event_roundtrips() {
        let sample = Sample {
            row: Row::new(42, vec![1, 2], vec![9.5]),
            weight: 0.25,
            meta: SampleMeta::default(),
        };
        let ev = SampleEvent {
            sample: &sample,
            site: 1,
            walker: 3,
            collected: 7,
            target: 100,
            queries: 19,
            requests: 31,
        };
        let json = sample_event_json(&ev);
        let back = WireSampleEvent::parse(&json).unwrap();
        assert_eq!(back.key, 42);
        assert_eq!(back.weight, 0.25);
        assert_eq!(back.collected, 7);
        assert_eq!(back.queries, 19);
        assert_eq!(back.requests, 31);
    }

    #[test]
    fn summarize_attributes_latency_per_stage() {
        let events = vec![
            TraceEvent {
                kind: "wire".into(),
                detail: "complete".into(),
                conn: 0,
                at_ms: 100,
                dur_ms: 100,
                queue_ms: 40,
                ..TraceEvent::default()
            },
            TraceEvent {
                kind: "wire".into(),
                detail: "complete".into(),
                conn: 1,
                at_ms: 250,
                dur_ms: 200,
                queue_ms: 0,
                ..TraceEvent::default()
            },
            TraceEvent {
                kind: "retry".into(),
                detail: "backoff".into(),
                dur_ms: 64,
                at_ms: 300,
                ..TraceEvent::default()
            },
            ev("cache", "hit"),
            ev("cache", "hit"),
            ev("cache", "miss"),
            ev("stall", "force"),
            ev("steal", "s0->s1"),
            ev("sample", ""),
        ];
        let report = summarize(&events);
        assert_eq!(report.events, 9);
        assert_eq!(report.fetches, 2);
        assert_eq!(report.queue_ms, 40);
        assert_eq!(report.service_ms, 60 + 200);
        assert_eq!(report.retries, 1);
        assert_eq!(report.backoff_ms, 64);
        assert_eq!(report.cache_hits, 2);
        assert_eq!(report.cache_misses, 1);
        assert_eq!(report.stalls, 1);
        assert_eq!(report.steals, 1);
        assert_eq!(report.samples, 1);
        assert_eq!(report.makespan_ms, 300);
        assert_eq!(report.critical_conn(), Some((1, 200)));
        assert_eq!(report.by_kind["wire/complete"], 2);
        assert_eq!(report.by_kind["sample"], 1);

        let text = report.to_string();
        assert!(text.contains("2 fetches completed"));
        assert!(text.contains("makespan 300 ms"));
    }

    #[test]
    fn malformed_journal_lines_are_reported_with_position() {
        let dir = std::env::temp_dir().join("hds-telemetry-test-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.jsonl");
        let good = event_json(&ev("sample", ""));
        std::fs::write(&path, format!("{good}\nnot json\n")).unwrap();
        let err = read_journal(&path).unwrap_err();
        assert!(err.contains("line 2"), "error names the line: {err}");
        std::fs::remove_file(&path).unwrap();
    }
}
