//! Non-blocking fetches over per-connection virtual clocks.
//!
//! The wire in this reproduction is simulated, so "async" here is an
//! explicit poll/completion design rather than a real reactor: a fetch is
//! *submitted* on a virtual connection, stays *pending* until the
//! connection's clock is advanced past its completion time, and is then
//! *completed*. What the design buys is the paper's actual cost model —
//! round trips, not CPU: requests on one connection serialize (HTTP
//! keep-alive semantics), requests on different connections overlap, and
//! the fleet's virtual wall clock is the **maximum** over connection
//! clocks, never the sum over fetches.
//!
//! Two faces share this machinery (see
//! [`LatencyTransport`](crate::transport::LatencyTransport)):
//!
//! * the blocking [`Transport`](crate::transport::Transport) face binds one
//!   connection per OS thread, so an unmodified sampler stack running on W
//!   walker threads gets W overlapping connections for free;
//! * the [`AsyncTransport`] face hands out explicit [`ConnId`]s, letting a
//!   single thread pipeline several requests and harvest completions in
//!   any order.

use hdsampler_model::InterfaceError;
use parking_lot::Mutex;

/// Identifier of one virtual connection (scraper → site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnId(pub(crate) u32);

impl ConnId {
    /// The connection's index within its transport.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Token for one in-flight fetch.
///
/// The handle is affine: polling consumes it and returns it back only while
/// the fetch is still pending, so a completed fetch cannot be polled twice.
/// A handle that is no longer wanted must be passed to
/// [`AsyncTransport::cancel`] — simply dropping it leaves the buffered
/// result parked in the transport until the transport itself drops.
#[derive(Debug)]
pub struct FetchHandle {
    pub(crate) conn: ConnId,
    pub(crate) id: u64,
    pub(crate) ready_at: u64,
    /// Virtual wait between submission and departure (queued behind
    /// earlier requests on the connection); 0 on real wires.
    pub(crate) queued_ms: u64,
    /// Virtual service time of the fetch itself; 0 on real wires.
    pub(crate) service_ms: u64,
}

impl FetchHandle {
    /// The connection this fetch occupies.
    pub fn conn(&self) -> ConnId {
        self.conn
    }

    /// Completion time on the connection's virtual clock (ms).
    pub fn ready_at_ms(&self) -> u64 {
        self.ready_at
    }

    /// Virtual time this fetch spent queued behind earlier requests on
    /// its connection before departing (0 on real wires) — the "queue"
    /// half of the wire-latency split trace spans report.
    pub fn queued_ms(&self) -> u64 {
        self.queued_ms
    }

    /// Virtual service time of the fetch itself, excluding queueing
    /// (0 on real wires).
    pub fn service_ms(&self) -> u64 {
        self.service_ms
    }
}

/// Outcome of a non-blocking [`AsyncTransport::poll`].
#[derive(Debug)]
pub enum FetchPoll {
    /// The connection's clock has not reached the completion time; the
    /// handle is handed back for re-polling (or completion).
    Pending(FetchHandle),
    /// Done: the page body, or the transport error the site produced.
    Ready(Result<String, InterfaceError>),
}

/// A non-blocking page fetcher with explicit poll/completion.
///
/// Contract: `submit` never blocks and never advances any clock; `poll`
/// reports `Ready` only once the connection's clock has passed the fetch's
/// completion time (typically because an earlier `complete` on the same
/// connection advanced it); `complete` advances the connection's clock to
/// the completion time and returns the result.
pub trait AsyncTransport: Send + Sync {
    /// Open a fresh virtual connection.
    fn connect(&self) -> ConnId;

    /// Begin fetching `path` (path + query string) on `conn`.
    ///
    /// Requests submitted on one connection serialize: each departs when
    /// the previous one completes.
    fn submit(&self, conn: ConnId, path: &str) -> FetchHandle;

    /// Check for completion without advancing virtual time.
    fn poll(&self, handle: FetchHandle) -> FetchPoll;

    /// Advance the connection's clock to the fetch's completion time and
    /// take the result.
    fn complete(&self, handle: FetchHandle) -> Result<String, InterfaceError>;

    /// Abandon an in-flight fetch, releasing its buffered result without
    /// advancing any clock. The connection time the request occupied stays
    /// occupied — the request was sent; cancelling does not un-send it.
    fn cancel(&self, handle: FetchHandle);

    /// Declare that the next submitter on `conn` has observed virtual time
    /// `now_ms` — e.g. a cooperative walker that just consumed a
    /// history-cache hit derived from a completion on *another*
    /// connection. Virtual-clock transports floor `conn`'s future
    /// departures at this time so a request can never depart before the
    /// result that motivated it (causality); real-wire transports ignore
    /// it — physical time cannot be rewound in the first place.
    fn observe_now(&self, _conn: ConnId, _now_ms: u64) {}

    /// Virtual wall clock so far: the maximum completion time any
    /// connection has observed (max over connections, not sum over
    /// fetches).
    fn virtual_elapsed_ms(&self) -> u64;

    /// Whether this wire's clock is virtual (simulated) rather than
    /// physical. Cooperative drivers waiting out a retry backoff can jump
    /// a virtual clock forward for free, but must genuinely wait on a
    /// real one.
    fn wire_is_virtual(&self) -> bool {
        true
    }

    /// Block until at least one in-flight fetch *may* have completed, or
    /// `timeout_ms` elapses — one readiness wait across **all** of this
    /// transport's connections, so a driver with hundreds of pipelined
    /// fetches never has to pick which one to block on.
    ///
    /// Returns `Some(n)` with the number of connections that made
    /// progress (0 on timeout or when nothing is in flight); callers
    /// re-poll their pending handles after any `Some`. Returns `None`
    /// when the transport has no readiness reactor — virtual wires, whose
    /// completions are a clock advance away, and real wires on platforms
    /// without epoll — in which case callers fall back to a blocking
    /// [`complete`](AsyncTransport::complete).
    fn wait_ready(&self, timeout_ms: u64) -> Option<usize> {
        let _ = timeout_ms;
        None
    }
}

impl<A: AsyncTransport + ?Sized> AsyncTransport for &A {
    fn connect(&self) -> ConnId {
        (**self).connect()
    }
    fn submit(&self, conn: ConnId, path: &str) -> FetchHandle {
        (**self).submit(conn, path)
    }
    fn poll(&self, handle: FetchHandle) -> FetchPoll {
        (**self).poll(handle)
    }
    fn complete(&self, handle: FetchHandle) -> Result<String, InterfaceError> {
        (**self).complete(handle)
    }
    fn cancel(&self, handle: FetchHandle) {
        (**self).cancel(handle)
    }
    fn observe_now(&self, conn: ConnId, now_ms: u64) {
        (**self).observe_now(conn, now_ms)
    }
    fn virtual_elapsed_ms(&self) -> u64 {
        (**self).virtual_elapsed_ms()
    }
    fn wire_is_virtual(&self) -> bool {
        (**self).wire_is_virtual()
    }
    fn wait_ready(&self, timeout_ms: u64) -> Option<usize> {
        (**self).wait_ready(timeout_ms)
    }
}

impl<A: AsyncTransport + ?Sized> AsyncTransport for std::sync::Arc<A> {
    fn connect(&self) -> ConnId {
        (**self).connect()
    }
    fn submit(&self, conn: ConnId, path: &str) -> FetchHandle {
        (**self).submit(conn, path)
    }
    fn poll(&self, handle: FetchHandle) -> FetchPoll {
        (**self).poll(handle)
    }
    fn complete(&self, handle: FetchHandle) -> Result<String, InterfaceError> {
        (**self).complete(handle)
    }
    fn cancel(&self, handle: FetchHandle) {
        (**self).cancel(handle)
    }
    fn observe_now(&self, conn: ConnId, now_ms: u64) {
        (**self).observe_now(conn, now_ms)
    }
    fn virtual_elapsed_ms(&self) -> u64 {
        (**self).virtual_elapsed_ms()
    }
    fn wire_is_virtual(&self) -> bool {
        (**self).wire_is_virtual()
    }
    fn wait_ready(&self, timeout_ms: u64) -> Option<usize> {
        (**self).wait_ready(timeout_ms)
    }
}

/// One connection's timeline.
#[derive(Debug, Default, Clone, Copy)]
struct ConnState {
    /// Virtual "now" as observed by completions on this connection.
    clock: u64,
    /// When the connection's last submitted request completes.
    busy_until: u64,
}

/// The per-connection virtual clocks behind a transport.
///
/// Each connection carries two marks: `busy_until` (when its last
/// submitted request will complete — submissions serialize behind it) and
/// `clock` (the latest completion it has *observed*). The fleet's elapsed
/// time is the maximum observed clock.
#[derive(Debug, Default)]
pub(crate) struct ConnClocks {
    conns: Mutex<Vec<ConnState>>,
}

impl ConnClocks {
    /// Open a new connection with both marks at zero.
    pub(crate) fn connect(&self) -> ConnId {
        let mut conns = self.conns.lock();
        let id = u32::try_from(conns.len()).expect("connection count fits u32");
        conns.push(ConnState::default());
        ConnId(id)
    }

    /// Occupy `conn` for `service_ms` of virtual time; returns the
    /// completion time.
    ///
    /// Departure is floored at the connection's *observed* clock, not just
    /// its queue tail: a fresh or idle connection whose submitter has
    /// already observed time `t` (its previous completion, or a
    /// cross-connection fact propagated via
    /// [`AsyncTransport::observe_now`]) cannot send a request into the
    /// past. Without the floor, a cooperative walker that learned a result
    /// at t = 200 on one connection could depart a follow-up at t = 0 on
    /// another — time-travel that undercharges the fleet clock.
    /// The second element of the returned pair is the queue wait: how
    /// long the request sat behind the connection's earlier traffic
    /// between the submitter's observed "now" and its actual departure
    /// (the queue/service split wire trace spans report).
    pub(crate) fn schedule_split(&self, conn: ConnId, service_ms: u64) -> (u64, u64) {
        let mut conns = self.conns.lock();
        let state = &mut conns[conn.index()];
        let departs = state.busy_until.max(state.clock);
        state.busy_until = departs + service_ms;
        (state.busy_until, departs - state.clock)
    }

    /// Move `conn`'s observed clock forward to `to_ms` (never backwards).
    pub(crate) fn advance_to(&self, conn: ConnId, to_ms: u64) {
        let mut conns = self.conns.lock();
        let state = &mut conns[conn.index()];
        state.clock = state.clock.max(to_ms);
    }

    /// `conn`'s observed clock.
    pub(crate) fn observed(&self, conn: ConnId) -> u64 {
        self.conns.lock()[conn.index()].clock
    }

    /// Fleet elapsed: max observed clock over all connections.
    pub(crate) fn elapsed(&self) -> u64 {
        self.conns.lock().iter().map(|c| c.clock).max().unwrap_or(0)
    }

    /// Number of connections opened so far.
    pub(crate) fn connections(&self) -> usize {
        self.conns.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clocks_serialize_per_connection_and_overlap_across() {
        let clocks = ConnClocks::default();
        let a = clocks.connect();
        let b = clocks.connect();
        assert_eq!(clocks.connections(), 2);

        // Two requests on `a` serialize; one on `b` overlaps both. The
        // second request on `a` spends 100 ms queued behind the first.
        assert_eq!(clocks.schedule_split(a, 100), (100, 0));
        assert_eq!(clocks.schedule_split(a, 100), (200, 100));
        assert_eq!(clocks.schedule_split(b, 150), (150, 0));

        clocks.advance_to(a, 200);
        clocks.advance_to(b, 150);
        assert_eq!(clocks.observed(a), 200);
        assert_eq!(clocks.elapsed(), 200, "max over connections, not 350");

        // Clocks never run backwards.
        clocks.advance_to(a, 10);
        assert_eq!(clocks.observed(a), 200);
    }

    #[test]
    fn departures_are_floored_at_the_observed_clock() {
        // Regression (causality): a connection whose submitter has
        // observed t = 200 must not depart a new request at t = 0.
        let clocks = ConnClocks::default();
        let a = clocks.connect();
        let b = clocks.connect();

        // One round trip on `a` completes at 200.
        assert_eq!(clocks.schedule_split(a, 200), (200, 0));
        clocks.advance_to(a, 200);

        // `b` is fresh, but its submitter learned the motivating result at
        // t = 200 (e.g. via a shared history cache); propagating that
        // knowledge floors the departure. The floor is not queueing, so
        // the queue-wait component stays zero.
        clocks.advance_to(b, 200);
        assert_eq!(
            clocks.schedule_split(b, 50),
            (250, 0),
            "fresh connection departs at its observed clock, not 0"
        );

        // An idle (fully drained) connection behaves the same.
        clocks.advance_to(a, 300);
        assert_eq!(
            clocks.schedule_split(a, 50),
            (350, 0),
            "idle connection departs at its observed clock, not its stale queue tail"
        );
    }

    #[test]
    fn empty_fleet_has_zero_elapsed() {
        let clocks = ConnClocks::default();
        assert_eq!(clocks.elapsed(), 0);
        assert_eq!(clocks.connections(), 0);
    }
}
