//! A real-TCP HTTP/1.1 client transport.
//!
//! [`HttpTransport`] is the live-wire counterpart of
//! [`LatencyTransport`](crate::transport::LatencyTransport): it implements
//! the blocking [`Transport`] face (one keep-alive TCP connection per
//! calling OS thread) *and* the explicit-connection [`AsyncTransport`]
//! face (one TCP connection per [`ConnId`], requests pipelined in FIFO
//! order, completions harvested by non-blocking polls) — so the unmodified
//! walker/driver/session stack samples a live
//! [`hdsampler-server`](https://docs.rs/hdsampler-server) end-to-end over
//! loopback or a real network.
//!
//! The client is dependency-free: request writing, response parsing
//! (`Content-Length` and `chunked` bodies), keep-alive reuse and
//! reconnect-on-stale-connection are hand-rolled on `std::net::TcpStream`.
//!
//! ## Error fidelity
//!
//! The server encodes site-side failures so this client can reconstruct
//! the *same* [`InterfaceError`] values the in-process
//! [`LocalSite`](crate::transport::LocalSite) produces: `404`/`400` bodies
//! carry the exact in-process message text (returned as
//! [`InterfaceError::Transport`]), and `429` responses carry an
//! `x-hds-issued` header from which [`InterfaceError::BudgetExhausted`] is
//! rebuilt — so a remote sampling session stops with the same
//! `StopReason::BudgetExhausted` a local one would.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::ThreadId;
use std::time::{Duration, Instant};

use hdsampler_model::InterfaceError;
use parking_lot::Mutex;

use crate::aio::{AsyncTransport, ConnId, FetchHandle, FetchPoll};
use crate::reactor::{Epoll, RawFd};
use crate::transport::{Clocked, Transport};

/// Hard ceiling on a single response's size (64 MiB): a runaway or
/// malicious server must not balloon the scraper's memory.
const MAX_RESPONSE_BYTES: usize = 64 << 20;

/// How long [`AsyncTransport::complete`] (and therefore a blocking fetch)
/// waits for a response before giving up.
const COMPLETE_TIMEOUT: Duration = Duration::from_secs(30);

/// One TCP connection's client-side state.
struct HttpConn {
    stream: Option<TcpStream>,
    /// Unparsed response bytes read so far.
    rx: Vec<u8>,
    /// Fetch ids awaiting responses on this connection, in request order —
    /// HTTP/1.1 answers pipelined requests strictly FIFO.
    outstanding: VecDeque<u64>,
    /// Resolved fetches not yet taken by poll/complete.
    done: HashMap<u64, Result<String, InterfaceError>>,
    /// Fetches abandoned via `cancel`; their responses are drained off the
    /// wire (FIFO alignment) and dropped.
    cancelled: std::collections::HashSet<u64>,
    /// Requests written on this connection so far — the per-connection
    /// sequence number inside the `x-hds-trace` id.
    sent: u64,
    /// The raw fd currently registered with the transport's epoll set.
    /// Tracked so teardown can deregister *before* the socket closes —
    /// a registration left behind a closed fd would alias whatever
    /// connection reuses that fd number.
    registered_fd: Option<RawFd>,
}

impl HttpConn {
    fn new() -> Self {
        HttpConn {
            stream: None,
            rx: Vec::new(),
            outstanding: VecDeque::new(),
            done: HashMap::new(),
            cancelled: std::collections::HashSet::new(),
            sent: 0,
            registered_fd: None,
        }
    }
}

/// A page fetcher over real TCP to an `hdsampler serve` front door.
pub struct HttpTransport {
    /// `host:port` of the server.
    addr: String,
    conns: Mutex<Vec<Arc<Mutex<HttpConn>>>>,
    /// Blocking-face binding: one connection per calling thread.
    by_thread: Mutex<HashMap<ThreadId, ConnId>>,
    next_fetch: AtomicU64,
    requests: AtomicU64,
    bytes_received: AtomicU64,
    /// Wall clock of the first submitted request, set once.
    start: Mutex<Option<Instant>>,
    /// Milliseconds from `start` to the most recent completion.
    last_done_ms: AtomicU64,
    /// Lazily-created epoll set behind [`AsyncTransport::wait_ready`]
    /// (`None` once initialization fails — non-Linux, or fd exhaustion).
    poller: OnceLock<Option<Epoll>>,
}

impl std::fmt::Debug for HttpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpTransport")
            .field("addr", &self.addr)
            .field("requests", &self.requests.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl HttpTransport {
    /// A transport that will fetch pages from `addr` (`host:port`).
    /// Connections are opened lazily, one per thread (blocking face) or
    /// per [`AsyncTransport::connect`] call.
    pub fn new(addr: impl Into<String>) -> Self {
        HttpTransport {
            addr: addr.into(),
            conns: Mutex::new(Vec::new()),
            by_thread: Mutex::new(HashMap::new()),
            next_fetch: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            start: Mutex::new(None),
            last_done_ms: AtomicU64::new(0),
            poller: OnceLock::new(),
        }
    }

    /// The server address this transport talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Requests written to the wire so far.
    pub fn requests_sent(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Response bytes received so far (headers + bodies).
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// TCP connections opened so far.
    pub fn connections(&self) -> usize {
        self.conns.lock().len()
    }

    /// Connections whose TCP socket is currently open.
    pub fn open_connections(&self) -> usize {
        self.conns
            .lock()
            .iter()
            .filter(|cell| cell.lock().stream.is_some())
            .count()
    }

    /// Live `ThreadId → ConnId` bindings held by the blocking face.
    pub fn thread_bindings(&self) -> usize {
        self.by_thread.lock().len()
    }

    /// Connections currently registered with the reactor's epoll set
    /// (0 when no reactor is available or nothing has waited yet).
    pub fn registered_conns(&self) -> usize {
        self.conns
            .lock()
            .iter()
            .filter(|cell| cell.lock().registered_fd.is_some())
            .count()
    }

    /// The shared epoll set, created on first use. `None` means this
    /// process has no reactor (non-Linux, or epoll creation failed) and
    /// every caller falls back to blocking reads.
    fn poller(&self) -> Option<&Epoll> {
        self.poller.get_or_init(|| Epoll::new().ok()).as_ref()
    }

    /// Remove `c`'s fd from the epoll set if it is registered. Safe to
    /// call with the stream already gone: the tracked fd, not the
    /// stream, drives the deregistration.
    fn deregister_conn(&self, c: &mut HttpConn) {
        if let Some(fd) = c.registered_fd.take() {
            if let Some(ep) = self.poller() {
                let _ = ep.deregister(fd);
            }
        }
    }

    /// Tear down `c`'s stream. Deregistration happens *before* the
    /// socket closes: the kernel would forget the epoll entry on close
    /// anyway, but our userspace `registered_fd` note would survive —
    /// and a later deregister against that stale number would silently
    /// detach whichever live connection reused the fd.
    fn drop_stream(&self, c: &mut HttpConn) {
        self.deregister_conn(c);
        c.stream = None;
    }

    /// Close every connection with no outstanding fetch and drop all
    /// per-thread bindings; returns the number of sockets closed.
    ///
    /// The blocking face binds one connection per calling `ThreadId` and
    /// — threads being unobservable once gone — used to keep both the
    /// binding and its open keep-alive socket for the life of the
    /// transport, so every dead walker thread stranded a TCP connection.
    /// Drivers call this between sites (and at the end of a run): sockets
    /// close, the map empties, and a thread that fetches again simply
    /// rebinds to a fresh connection on first use. Connections with an
    /// *awaited* in-flight request are left untouched; outstanding
    /// fetches that were all cancelled hold nothing anyone will take, so
    /// their connection closes too (the unread responses die with the
    /// socket).
    pub fn close_idle(&self) -> usize {
        // Take the binding map first so no new fetch can ride a connection
        // this sweep is about to close.
        self.by_thread.lock().clear();
        let conns = self.conns.lock();
        let mut closed = 0;
        for cell in conns.iter() {
            let mut c = cell.lock();
            let awaited = c.outstanding.iter().any(|id| !c.cancelled.contains(id));
            if !awaited && c.stream.is_some() {
                self.drop_stream(&mut c);
                c.rx.clear();
                c.outstanding.clear();
                c.cancelled.clear();
                closed += 1;
            }
        }
        closed
    }

    fn conn(&self, id: ConnId) -> Arc<Mutex<HttpConn>> {
        Arc::clone(&self.conns.lock()[id.index()])
    }

    /// The connection bound to the calling thread (opened on first use).
    fn thread_conn(&self) -> ConnId {
        let tid = std::thread::current().id();
        let mut map = self.by_thread.lock();
        *map.entry(tid).or_insert_with(|| self.connect())
    }

    fn note_start(&self) {
        let mut start = self.start.lock();
        if start.is_none() {
            *start = Some(Instant::now());
        }
    }

    fn note_done(&self) {
        if let Some(start) = *self.start.lock() {
            let ms = start.elapsed().as_millis() as u64;
            self.last_done_ms.fetch_max(ms.max(1), Ordering::Relaxed);
        }
    }

    /// Ensure `c` has a live stream, (re)connecting if needed.
    fn ensure_stream(&self, c: &mut HttpConn) -> std::io::Result<()> {
        if c.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(COMPLETE_TIMEOUT))?;
            c.stream = Some(stream);
            c.rx.clear();
        }
        Ok(())
    }

    /// Write one GET request for `path` on `c`'s stream, stamped with a
    /// deterministic `x-hds-trace: c{conn}-{seq}` id the server echoes
    /// into its per-request log — the cross-process span correlation.
    fn write_request(&self, c: &mut HttpConn, conn: ConnId, path: &str) -> std::io::Result<()> {
        self.ensure_stream(c)?;
        c.sent += 1;
        let req = format!(
            "GET {path} HTTP/1.1\r\nHost: {}\r\nUser-Agent: hdsampler\r\n\
             x-hds-trace: c{}-{}\r\nConnection: keep-alive\r\n\r\n",
            self.addr,
            conn.index(),
            c.sent
        );
        let stream = c.stream.as_mut().expect("stream ensured above");
        stream.write_all(req.as_bytes())?;
        self.requests.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Read whatever the stream will give (respecting its blocking mode)
    /// and resolve complete responses FIFO. Returns `false` once the
    /// connection is unusable (EOF or I/O error), after failing every
    /// still-outstanding fetch.
    fn pump(&self, c: &mut HttpConn) -> bool {
        let mut buf = [0u8; 16 * 1024];
        loop {
            // Resolve as many buffered responses as possible first, so a
            // closed connection still yields everything it delivered.
            loop {
                match try_parse_response(&c.rx) {
                    Ok(None) => break,
                    Ok(Some((resp, consumed))) => {
                        c.rx.drain(..consumed);
                        let keep_alive = !resp.connection_close;
                        let result = response_to_result(resp);
                        if let Some(id) = c.outstanding.pop_front() {
                            if !c.cancelled.remove(&id) {
                                c.done.insert(id, result);
                            }
                            self.note_done();
                        }
                        if !keep_alive {
                            self.drop_stream(c);
                        }
                        if c.stream.is_none() {
                            return self.fail_outstanding(c, "server closed the connection");
                        }
                    }
                    Err(msg) => {
                        return self.fail_outstanding(c, &format!("malformed response: {msg}"));
                    }
                }
            }
            if c.outstanding.is_empty() {
                return true;
            }
            let Some(stream) = c.stream.as_mut() else {
                return self.fail_outstanding(c, "connection lost");
            };
            match stream.read(&mut buf) {
                Ok(0) => {
                    return self.fail_outstanding(c, "server closed the connection");
                }
                Ok(n) => {
                    if c.rx.len() + n > MAX_RESPONSE_BYTES {
                        return self.fail_outstanding(c, "response exceeds size limit");
                    }
                    c.rx.extend_from_slice(&buf[..n]);
                    self.bytes_received.fetch_add(n as u64, Ordering::Relaxed);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    return self.fail_outstanding(c, &format!("read failed: {e}"));
                }
            }
        }
    }

    /// Fail every outstanding fetch on `c` with a transport error. Always
    /// returns `false` (the connection is gone).
    ///
    /// Unresolved bytes in the receive buffer belong to the front-of-FIFO
    /// fetch: its response started arriving, so the server *did* serve it
    /// (and charged for it) before the connection died. That fetch fails
    /// with a distinct "mid-response" message that no retry path treats as
    /// retryable — resubmitting it would double-charge the site and, under
    /// the old blanket message, desync the pipelined FIFO. The fetches
    /// behind it never got a byte and stay safely retryable.
    fn fail_outstanding(&self, c: &mut HttpConn, why: &str) -> bool {
        self.drop_stream(c);
        let mut partial = !c.rx.is_empty();
        c.rx.clear();
        while let Some(id) = c.outstanding.pop_front() {
            if !c.cancelled.remove(&id) {
                let msg = if partial {
                    format!(
                        "connection to {}: connection died mid-response (partial bytes \
                         discarded; {why})",
                        self.addr
                    )
                } else {
                    format!("connection to {}: {why}", self.addr)
                };
                c.done.insert(id, Err(InterfaceError::Transport(msg)));
            }
            partial = false;
        }
        false
    }

    /// Switch `c`'s stream between blocking and non-blocking mode.
    fn set_blocking(c: &mut HttpConn, blocking: bool) {
        if let Some(stream) = c.stream.as_ref() {
            let _ = stream.set_nonblocking(!blocking);
        }
    }

    /// Submit on an explicit connection, recording failures as the fetch's
    /// result (submit itself never errors, matching the trait contract).
    fn submit_on(&self, conn: ConnId, path: &str) -> FetchHandle {
        self.note_start();
        let id = self.next_fetch.fetch_add(1, Ordering::Relaxed);
        let cell = self.conn(conn);
        let mut c = cell.lock();
        Self::set_blocking(&mut c, true);
        match self.write_request(&mut c, conn, path) {
            Ok(()) => {
                c.outstanding.push_back(id);
            }
            Err(e) => {
                self.drop_stream(&mut c);
                c.done.insert(
                    id,
                    Err(InterfaceError::Transport(format!(
                        "connection to {}: write failed: {e}",
                        self.addr
                    ))),
                );
            }
        }
        FetchHandle {
            conn,
            id,
            ready_at: 0,
            queued_ms: 0,
            service_ms: 0,
        }
    }

    /// One `epoll_wait` across every connection with an awaited in-flight
    /// fetch; ready connections are pumped non-blocking. See
    /// [`AsyncTransport::wait_ready`] for the contract.
    #[cfg(unix)]
    fn wait_ready_impl(&self, timeout_ms: u64) -> Option<usize> {
        use crate::reactor::Interest;
        use std::os::fd::AsRawFd;

        let ep = self.poller()?;
        // Snapshot the cells so the vec lock is not held across the wait
        // (connect/submit from other threads must stay free to run).
        let cells: Vec<Arc<Mutex<HttpConn>>> = self.conns.lock().to_vec();
        let mut awaiting = 0usize;
        for (idx, cell) in cells.iter().enumerate() {
            let mut c = cell.lock();
            if !c.done.is_empty() {
                // A completion is already harvestable — report progress
                // instead of sleeping on the wire (lost-wakeup guard).
                return Some(1);
            }
            let awaited = c.outstanding.iter().any(|id| !c.cancelled.contains(id));
            let fd = match (&c.stream, awaited) {
                (Some(stream), true) => Some(stream.as_raw_fd()),
                _ => None,
            };
            match fd {
                Some(fd) => {
                    if c.registered_fd != Some(fd) {
                        // Reconnected under a new fd: retire the stale
                        // registration before adding the live one.
                        self.deregister_conn(&mut c);
                        if ep.register(fd, idx as u64, Interest::Read).is_ok() {
                            c.registered_fd = Some(fd);
                        }
                    }
                    awaiting += 1;
                }
                None => {
                    // Idle connections leave the set: a level-triggered
                    // EOF on an idle keep-alive socket would otherwise
                    // wake every wait without ever being consumed
                    // (`pump` deliberately ignores idle sockets).
                    self.deregister_conn(&mut c);
                }
            }
        }
        if awaiting == 0 {
            return Some(0);
        }
        let mut events = Vec::new();
        let timeout = timeout_ms.min(i32::MAX as u64) as i32;
        let n = ep.wait(&mut events, timeout).unwrap_or(0);
        let mut pumped = 0;
        for ev in events.iter().take(n) {
            let Some(cell) = cells.get(ev.token as usize) else {
                continue;
            };
            let mut c = cell.lock();
            Self::set_blocking(&mut c, false);
            // A dead connection fails its fetches inside `pump` (and
            // deregisters via `drop_stream`) — that still counts as
            // progress for the caller's re-poll.
            self.pump(&mut c);
            Self::set_blocking(&mut c, true);
            pumped += 1;
        }
        Some(pumped)
    }
}

impl AsyncTransport for HttpTransport {
    fn connect(&self) -> ConnId {
        let mut conns = self.conns.lock();
        let id = u32::try_from(conns.len()).expect("connection count fits u32");
        conns.push(Arc::new(Mutex::new(HttpConn::new())));
        ConnId(id)
    }

    fn submit(&self, conn: ConnId, path: &str) -> FetchHandle {
        self.submit_on(conn, path)
    }

    fn poll(&self, handle: FetchHandle) -> FetchPoll {
        let cell = self.conn(handle.conn);
        let mut c = cell.lock();
        if let Some(result) = c.done.remove(&handle.id) {
            return FetchPoll::Ready(result);
        }
        // Non-blocking progress: drain what the socket has, no more.
        Self::set_blocking(&mut c, false);
        self.pump(&mut c);
        Self::set_blocking(&mut c, true);
        match c.done.remove(&handle.id) {
            Some(result) => FetchPoll::Ready(result),
            None => FetchPoll::Pending(handle),
        }
    }

    fn complete(&self, handle: FetchHandle) -> Result<String, InterfaceError> {
        let cell = self.conn(handle.conn);
        let deadline = Instant::now() + COMPLETE_TIMEOUT;
        loop {
            let mut c = cell.lock();
            if let Some(result) = c.done.remove(&handle.id) {
                return result;
            }
            // Blocking progress: the stream's read timeout bounds each
            // wait, the deadline bounds the whole completion.
            Self::set_blocking(&mut c, true);
            self.pump(&mut c);
            if let Some(result) = c.done.remove(&handle.id) {
                return result;
            }
            if !c.outstanding.contains(&handle.id) {
                // Failed and consumed by an earlier error path.
                return Err(InterfaceError::Transport(format!(
                    "connection to {}: fetch was dropped",
                    self.addr
                )));
            }
            if Instant::now() >= deadline {
                return Err(InterfaceError::Transport(format!(
                    "connection to {}: response timed out",
                    self.addr
                )));
            }
        }
    }

    fn cancel(&self, handle: FetchHandle) {
        let cell = self.conn(handle.conn);
        let mut c = cell.lock();
        if c.done.remove(&handle.id).is_none() && c.outstanding.contains(&handle.id) {
            c.cancelled.insert(handle.id);
        }
    }

    fn virtual_elapsed_ms(&self) -> u64 {
        self.last_done_ms.load(Ordering::Relaxed)
    }

    fn wire_is_virtual(&self) -> bool {
        // TCP runs on the physical clock: backoffs must genuinely wait.
        false
    }

    fn wait_ready(&self, timeout_ms: u64) -> Option<usize> {
        #[cfg(unix)]
        {
            self.wait_ready_impl(timeout_ms)
        }
        #[cfg(not(unix))]
        {
            let _ = timeout_ms;
            None
        }
    }
}

impl Transport for HttpTransport {
    fn close_idle(&self) -> usize {
        HttpTransport::close_idle(self)
    }

    fn fetch(&self, path: &str) -> Result<String, InterfaceError> {
        let conn = self.thread_conn();
        let handle = self.submit_on(conn, path);
        let result = self.complete(handle);
        match result {
            // A stale keep-alive connection (server idled us out between
            // fetches) surfaces as a closed-connection error on an
            // otherwise quiet connection; GET is idempotent, so retry once
            // on a fresh connection. Never after partial response bytes
            // were consumed ("mid-response"): the server already served —
            // and charged — that request, so resubmitting it would
            // double-charge the site.
            Err(InterfaceError::Transport(ref msg))
                if msg.contains("closed the connection") && !msg.contains("mid-response") =>
            {
                let handle = self.submit_on(conn, path);
                self.complete(handle)
            }
            other => other,
        }
    }
}

impl Clocked for HttpTransport {
    fn elapsed_ms(&self) -> u64 {
        self.last_done_ms.load(Ordering::Relaxed)
    }
}

/// One parsed HTTP response.
struct ParsedResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
    connection_close: bool,
}

impl ParsedResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Map a parsed response onto the `Transport::fetch` result space,
/// reconstructing the in-process error values (see module docs).
fn response_to_result(resp: ParsedResponse) -> Result<String, InterfaceError> {
    let body = String::from_utf8_lossy(&resp.body).into_owned();
    match resp.status {
        200 => Ok(body),
        // Two different 429s come down this wire. A budget 429 carries the
        // server's `x-hds-issued` header and is terminal: the site will
        // never answer this client again. A throttle 429 carries only
        // `Retry-After` (exact milliseconds in `x-hds-retry-after-ms` when
        // the adversary supplies them) and is an invitation to back off
        // and retry.
        429 => match resp.header("x-hds-issued").and_then(|v| v.parse().ok()) {
            Some(issued) => Err(InterfaceError::BudgetExhausted { issued }),
            None => {
                let retry_after_ms = resp
                    .header("x-hds-retry-after-ms")
                    .and_then(|v| v.parse().ok())
                    .or_else(|| {
                        resp.header("retry-after")
                            .and_then(|v| v.parse::<u64>().ok())
                            .map(|secs| secs * 1_000)
                    })
                    .unwrap_or(1_000);
                Err(InterfaceError::Throttled { retry_after_ms })
            }
        },
        // A 400 is the server refusing the *request shape* itself — the
        // client's schema has drifted from the served form. Rebuild the
        // terminal in-process error (body carried verbatim) so remote
        // drivers fail as fast as in-process ones instead of retrying.
        400 => Err(InterfaceError::SchemaMismatch(if body.is_empty() {
            "HTTP 400".into()
        } else {
            body
        })),
        status => Err(InterfaceError::Transport(if body.is_empty() {
            format!("HTTP {status}")
        } else {
            body
        })),
    }
}

/// Find the end of an HTTP header section; returns the offset *past* the
/// blank line. Accepts both CRLF and bare-LF line endings. Shared with the
/// server crate (`hdsampler-server`), whose request parser must agree with
/// this client byte for byte on where headers stop.
pub fn find_header_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
                return Some(i + 3);
            }
            if buf.get(i + 1) == Some(&b'\n') {
                return Some(i + 2);
            }
        }
        i += 1;
    }
    None
}

/// Try to parse one complete response from the front of `buf`.
///
/// Returns `Ok(Some((response, bytes_consumed)))` when complete,
/// `Ok(None)` when more bytes are needed, `Err` on malformed data.
fn try_parse_response(buf: &[u8]) -> Result<Option<(ParsedResponse, usize)>, String> {
    let Some(header_end) = find_header_end(buf) else {
        if buf.len() > 64 * 1024 {
            return Err("header section exceeds 64 KiB".into());
        }
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..header_end]).map_err(|_| "non-UTF-8 header bytes")?;
    let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
    let status_line = lines.next().ok_or("missing status line")?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(format!("bad version `{version}`"));
    }
    let status: u16 = parts
        .next()
        .ok_or("missing status code")?
        .parse()
        .map_err(|_| "non-numeric status code")?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or("header line without colon")?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
    let header = |name: &str| {
        headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    };
    let connection_close = header("connection")
        .map(|v| v.eq_ignore_ascii_case("close"))
        .unwrap_or(false);

    let chunked = header("transfer-encoding")
        .map(|v| v.eq_ignore_ascii_case("chunked"))
        .unwrap_or(false);
    if chunked {
        let Some((body, consumed_body)) = parse_chunked_body(&buf[header_end..])? else {
            return Ok(None);
        };
        return Ok(Some((
            ParsedResponse {
                status,
                headers,
                body,
                connection_close,
            },
            header_end + consumed_body,
        )));
    }

    let len: usize = match header("content-length") {
        Some(v) => v.parse().map_err(|_| "bad content-length")?,
        None => 0,
    };
    if len > MAX_RESPONSE_BYTES {
        return Err("content-length exceeds size limit".into());
    }
    if buf.len() < header_end + len {
        return Ok(None);
    }
    Ok(Some((
        ParsedResponse {
            status,
            headers,
            body: buf[header_end..header_end + len].to_vec(),
            connection_close,
        },
        header_end + len,
    )))
}

/// Parse a chunked body from `buf`; `Ok(Some((body, consumed)))` when the
/// terminating 0-chunk (and trailing blank line) is present.
fn parse_chunked_body(buf: &[u8]) -> Result<Option<(Vec<u8>, usize)>, String> {
    let mut body = Vec::new();
    let mut i = 0;
    loop {
        // Chunk-size line.
        let Some(nl) = buf[i..].iter().position(|&b| b == b'\n') else {
            return Ok(None);
        };
        let line = std::str::from_utf8(&buf[i..i + nl])
            .map_err(|_| "non-UTF-8 chunk size")?
            .trim_end_matches('\r');
        // Chunk extensions (";ext=...") are allowed by the grammar; strip.
        let size_str = line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_str, 16).map_err(|_| "bad chunk size")?;
        if body.len() + size > MAX_RESPONSE_BYTES {
            return Err("chunked body exceeds size limit".into());
        }
        i += nl + 1;
        if size == 0 {
            // Optional trailers, then a blank line.
            loop {
                let Some(nl) = buf[i..].iter().position(|&b| b == b'\n') else {
                    return Ok(None);
                };
                let line = &buf[i..i + nl];
                i += nl + 1;
                if line.is_empty() || line == b"\r" {
                    return Ok(Some((body, i)));
                }
            }
        }
        // Chunk data + CRLF.
        if buf.len() < i + size + 1 {
            return Ok(None);
        }
        body.extend_from_slice(&buf[i..i + size]);
        i += size;
        // Consume the chunk's trailing CRLF (or LF).
        if buf.get(i) == Some(&b'\r') {
            i += 1;
        }
        match buf.get(i) {
            Some(&b'\n') => i += 1,
            Some(_) => return Err("chunk data not followed by CRLF".into()),
            None => return Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> (ParsedResponse, usize) {
        try_parse_response(bytes)
            .expect("well-formed")
            .expect("complete")
    }

    #[test]
    fn content_length_response_parses() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: 5\r\n\r\nhello";
        let (resp, used) = parse_all(raw);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"hello");
        assert_eq!(used, raw.len());
        assert!(!resp.connection_close);
    }

    #[test]
    fn chunked_response_parses() {
        let raw =
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        let (resp, used) = parse_all(raw);
        assert_eq!(resp.body, b"hello world");
        assert_eq!(used, raw.len());
    }

    #[test]
    fn partial_responses_ask_for_more() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nhell";
        assert!(try_parse_response(raw).unwrap().is_none());
        let raw = b"HTTP/1.1 200 OK\r\nContent-Len";
        assert!(try_parse_response(raw).unwrap().is_none());
        let raw = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhel";
        assert!(try_parse_response(raw).unwrap().is_none());
    }

    #[test]
    fn pipelined_responses_split_correctly() {
        let one = b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\nA".to_vec();
        let two = b"HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\nBB".to_vec();
        let mut both = one.clone();
        both.extend_from_slice(&two);
        let (first, used) = parse_all(&both);
        assert_eq!(first.body, b"A");
        let (second, used2) = parse_all(&both[used..]);
        assert_eq!(second.status, 404);
        assert_eq!(second.body, b"BB");
        assert_eq!(used + used2, both.len());
    }

    #[test]
    fn malformed_responses_are_errors() {
        assert!(try_parse_response(b"NOPE 200\r\n\r\n").is_err());
        assert!(try_parse_response(b"HTTP/1.1 abc OK\r\n\r\n").is_err());
        assert!(try_parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: banana\r\n\r\n").is_err());
        assert!(
            try_parse_response(b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n")
                .is_err()
        );
    }

    #[test]
    fn status_mapping_reconstructs_interface_errors() {
        let ok = ParsedResponse {
            status: 200,
            headers: vec![],
            body: b"page".to_vec(),
            connection_close: false,
        };
        assert_eq!(response_to_result(ok).unwrap(), "page");

        let budget = ParsedResponse {
            status: 429,
            headers: vec![("x-hds-issued".into(), "42".into())],
            body: b"query budget exhausted after 42 queries".to_vec(),
            connection_close: false,
        };
        assert_eq!(
            response_to_result(budget).unwrap_err(),
            InterfaceError::BudgetExhausted { issued: 42 }
        );

        let not_found = ParsedResponse {
            status: 404,
            headers: vec![],
            body: b"404 not found: `/x` (this site serves `/search`)".to_vec(),
            connection_close: false,
        };
        match response_to_result(not_found).unwrap_err() {
            InterfaceError::Transport(msg) => assert!(msg.starts_with("404 not found")),
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn throttle_429_is_distinct_from_budget_429() {
        // Only an `x-hds-issued`-bearing 429 is budget exhaustion.
        let throttled = ParsedResponse {
            status: 429,
            headers: vec![
                ("Retry-After".into(), "2".into()),
                ("x-hds-retry-after-ms".into(), "250".into()),
            ],
            body: b"slow down".to_vec(),
            connection_close: false,
        };
        assert_eq!(
            response_to_result(throttled).unwrap_err(),
            InterfaceError::Throttled {
                retry_after_ms: 250
            },
            "exact-ms header wins"
        );
        let coarse = ParsedResponse {
            status: 429,
            headers: vec![("Retry-After".into(), "2".into())],
            body: Vec::new(),
            connection_close: false,
        };
        assert_eq!(
            response_to_result(coarse).unwrap_err(),
            InterfaceError::Throttled {
                retry_after_ms: 2_000
            },
            "Retry-After seconds convert to ms"
        );
        let bare = ParsedResponse {
            status: 429,
            headers: vec![],
            body: Vec::new(),
            connection_close: false,
        };
        assert!(matches!(
            response_to_result(bare).unwrap_err(),
            InterfaceError::Throttled { .. }
        ));
        assert!(response_to_result(ParsedResponse {
            status: 429,
            headers: vec![("x-hds-issued".into(), "7".into())],
            body: Vec::new(),
            connection_close: false,
        })
        .unwrap_err()
        .eq(&InterfaceError::BudgetExhausted { issued: 7 }));
    }

    #[test]
    fn mid_response_death_is_never_retried() {
        // Regression (pipelined-FIFO desync): a server dribbling part of a
        // response and dying must fail the fetch terminally — retrying a
        // request the server already served would double-charge the site.
        use std::io::{Read as _, Write as _};
        use std::net::TcpListener;
        use std::sync::atomic::AtomicUsize;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let accepted = Arc::new(AtomicUsize::new(0));
        let accepted_srv = Arc::clone(&accepted);
        let srv = std::thread::spawn(move || {
            // Serve exactly one connection: read the request, dribble a
            // partial response, die mid-body. The listener then drops, so
            // any retry attempt would surface as a different error.
            let (mut s, _) = listener.accept().unwrap();
            accepted_srv.fetch_add(1, Ordering::Relaxed);
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf);
            s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 1000\r\n\r\n")
                .unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(20));
            s.write_all(b"only the start of the body").unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(20));
            // Drop: FIN mid-body.
        });

        let t = HttpTransport::new(addr);
        let err = t.fetch("/search").unwrap_err();
        srv.join().unwrap();
        match &err {
            InterfaceError::Transport(msg) => {
                assert!(msg.contains("mid-response"), "got: {msg}");
            }
            other => panic!("wrong error {other:?}"),
        }
        assert!(!err.is_transient(), "mid-response death is terminal");
        assert_eq!(
            accepted.load(Ordering::Relaxed),
            1,
            "the request must not have been resubmitted"
        );
        assert_eq!(t.requests_sent(), 1);
    }

    #[test]
    fn stale_keep_alive_clean_close_still_retries() {
        // The good half of the retry-once heuristic must survive the
        // mid-response fix: a keep-alive connection the server idled out
        // *between* requests (zero response bytes) is retried on a fresh
        // connection, invisibly to the caller.
        use std::io::{Read as _, Write as _};
        use std::net::{Shutdown, TcpListener};

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let srv = std::thread::spawn(move || {
            let page = |body: &str| {
                format!(
                    "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n{}",
                    body.len(),
                    body
                )
            };
            // Connection 1: serve one response, then half-close (FIN) and
            // drain — the client's next request lands on a stale socket
            // and reads a clean EOF, never an RST.
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf);
            s.write_all(page("first").as_bytes()).unwrap();
            s.shutdown(Shutdown::Write).unwrap();
            while matches!(s.read(&mut buf), Ok(n) if n > 0) {}
            // Connection 2: the retry; serve it for real.
            let (mut s, _) = listener.accept().unwrap();
            let _ = s.read(&mut buf);
            s.write_all(page("second").as_bytes()).unwrap();
        });

        let t = HttpTransport::new(addr);
        assert_eq!(t.fetch("/a").unwrap(), "first");
        // Give the FIN time to arrive so the staleness is guaranteed.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(t.fetch("/b").unwrap(), "second", "retried transparently");
        srv.join().unwrap();
        assert_eq!(t.requests_sent(), 3, "two fetches, one retry");
    }
}
