//! Client-side scraping of result pages.
//!
//! A small, purpose-built extractor (no external parser): it locates the
//! count banner, the overflow notice, and the `<table class="results">`,
//! then walks `<tr>`/`<td>` pairs, mapping display labels back to domain
//! indices through the schema. Malformed pages surface as
//! [`InterfaceError::Parse`] — the error a real scraper must handle when a
//! site changes its markup.

use hdsampler_model::{DomIx, InterfaceError, QueryResponse, Row, Schema};

use crate::render::unescape_html;

/// Extract the inner text of the first `<div class="CLASS">…</div>`.
fn div_text<'a>(html: &'a str, class: &str) -> Option<&'a str> {
    let marker = format!("<div class=\"{class}\">");
    let start = html.find(&marker)? + marker.len();
    let end = html[start..].find("</div>")? + start;
    Some(&html[start..end])
}

/// All inner texts of `tag` within `fragment` (non-nested, as rendered).
fn cell_texts<'a>(fragment: &'a str, tag: &str) -> Vec<&'a str> {
    let open_prefix = format!("<{tag}");
    let close = format!("</{tag}>");
    let mut cells = Vec::new();
    let mut pos = 0;
    while let Some(rel) = fragment[pos..].find(&open_prefix) {
        let tag_start = pos + rel;
        let Some(gt) = fragment[tag_start..].find('>') else {
            break;
        };
        let content_start = tag_start + gt + 1;
        let Some(rel_end) = fragment[content_start..].find(&close) else {
            break;
        };
        cells.push(&fragment[content_start..content_start + rel_end]);
        pos = content_start + rel_end + close.len();
    }
    cells
}

/// Parse a count banner "About 12,000 results" into the number.
fn parse_count_banner(text: &str) -> Option<u64> {
    let digits: String = text.chars().filter(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Scrape a results page back into a [`QueryResponse`].
///
/// # Errors
/// [`InterfaceError::Parse`] when the page lacks the results table, a row
/// has the wrong number of cells, or a label/number fails to parse.
pub fn scrape_results_page(schema: &Schema, html: &str) -> Result<QueryResponse, InterfaceError> {
    let reported_count = div_text(html, "count").and_then(parse_count_banner);
    let overflow = div_text(html, "overflow").is_some();

    let table_start = html
        .find("<table class=\"results\">")
        .ok_or_else(|| InterfaceError::Parse("results table missing".into()))?;
    let table_end = html[table_start..]
        .find("</table>")
        .map(|e| table_start + e)
        .ok_or_else(|| InterfaceError::Parse("results table unterminated".into()))?;
    let table = &html[table_start..table_end];

    let expected_cells = 1 + schema.arity() + schema.measure_arity();
    let mut rows = Vec::new();
    for (tr_ix, tr) in cell_texts(table, "tr").into_iter().enumerate() {
        if tr_ix == 0 {
            // Header row: sanity-check the column count so schema drift is
            // detected loudly rather than mis-scraped silently.
            let headers = cell_texts(tr, "th");
            if headers.len() != expected_cells {
                return Err(InterfaceError::Parse(format!(
                    "header has {} columns, schema expects {expected_cells}",
                    headers.len()
                )));
            }
            continue;
        }
        let cells = cell_texts(tr, "td");
        if cells.len() != expected_cells {
            return Err(InterfaceError::Parse(format!(
                "row {tr_ix} has {} cells, expected {expected_cells}",
                cells.len()
            )));
        }
        let key: u64 = cells[0]
            .trim()
            .parse()
            .map_err(|_| InterfaceError::Parse(format!("bad listing key `{}`", cells[0])))?;
        let mut values: Vec<DomIx> = Vec::with_capacity(schema.arity());
        for (id, attr) in schema.iter() {
            let text = unescape_html(cells[1 + id.index()].trim());
            let v = attr.parse_label(&text).ok_or_else(|| {
                InterfaceError::Parse(format!(
                    "unknown label `{text}` for attribute `{}`",
                    attr.name()
                ))
            })?;
            values.push(v);
        }
        let mut measures = Vec::with_capacity(schema.measure_arity());
        for m in 0..schema.measure_arity() {
            let text = cells[1 + schema.arity() + m].trim();
            let x: f64 = text
                .parse()
                .map_err(|_| InterfaceError::Parse(format!("bad measure `{text}`")))?;
            measures.push(x);
        }
        rows.push(Row::new(key, values, measures));
    }
    Ok(QueryResponse {
        rows,
        overflow,
        reported_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::render_results_page;
    use hdsampler_model::{Attribute, Measure, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new()
            .attribute(Attribute::categorical("make", ["Toyota", "A&B <Cars>"]).unwrap())
            .attribute(Attribute::boolean("used"))
            .measure(Measure::new("price"))
            .finish()
            .unwrap()
    }

    fn response() -> QueryResponse {
        QueryResponse {
            rows: vec![
                Row::new(42, vec![1, 0], vec![19_999.5]),
                Row::new(7, vec![0, 1], vec![0.1 + 0.2]), // non-round float
            ],
            overflow: true,
            reported_count: Some(12_000),
        }
    }

    #[test]
    fn render_scrape_roundtrip_is_exact() {
        let s = schema();
        let resp = response();
        let html = render_results_page(&s, &resp, 500);
        let back = scrape_results_page(&s, &html).unwrap();
        assert_eq!(back, resp, "bit-exact round trip incl. floats and entities");
    }

    #[test]
    fn empty_page_roundtrip() {
        let s = schema();
        let resp = QueryResponse {
            rows: vec![],
            overflow: false,
            reported_count: None,
        };
        let html = render_results_page(&s, &resp, 500);
        let back = scrape_results_page(&s, &html).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn count_banner_parsing() {
        assert_eq!(parse_count_banner("About 12,000 results"), Some(12_000));
        assert_eq!(parse_count_banner("About 7 results"), Some(7));
        assert_eq!(parse_count_banner("no digits"), None);
    }

    #[test]
    fn missing_table_is_a_parse_error() {
        let s = schema();
        let err = scrape_results_page(&s, "<html><body>oops</body></html>").unwrap_err();
        assert!(matches!(err, InterfaceError::Parse(_)));
    }

    #[test]
    fn schema_drift_detected_via_header() {
        let s = schema();
        let html = "<table class=\"results\">\
                    <tr><th>id</th><th>make</th></tr>\
                    </table>";
        let err = scrape_results_page(&s, html).unwrap_err();
        assert!(matches!(err, InterfaceError::Parse(msg) if msg.contains("header")));
    }

    #[test]
    fn corrupt_cells_detected() {
        let s = schema();
        let html = "<table class=\"results\">\
            <tr><th>id</th><th>make</th><th>used</th><th>price</th></tr>\
            <tr><td>notanumber</td><td>Toyota</td><td>no</td><td>1.0</td></tr>\
            </table>";
        assert!(matches!(
            scrape_results_page(&s, html),
            Err(InterfaceError::Parse(msg)) if msg.contains("listing key")
        ));

        let html = "<table class=\"results\">\
            <tr><th>id</th><th>make</th><th>used</th><th>price</th></tr>\
            <tr><td>1</td><td>Tesla</td><td>no</td><td>1.0</td></tr>\
            </table>";
        assert!(matches!(
            scrape_results_page(&s, html),
            Err(InterfaceError::Parse(msg)) if msg.contains("Tesla")
        ));
    }
}
