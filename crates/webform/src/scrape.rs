//! Client-side scraping of result pages.
//!
//! A small, purpose-built extractor (no external parser): it locates the
//! count banner, the overflow notice, and the `<table class="results">`,
//! then walks `<tr>`/`<td>` pairs, mapping display labels back to domain
//! indices through the schema. Malformed pages surface as
//! [`InterfaceError::Parse`] — the error a real scraper must handle when a
//! site changes its markup.

use hdsampler_model::{
    Attribute, Bucket, DomIx, InterfaceError, Measure, QueryResponse, Row, Schema, SchemaBuilder,
};

use crate::render::unescape_html;

/// Extract the inner text of the first `<div class="CLASS">…</div>`.
fn div_text<'a>(html: &'a str, class: &str) -> Option<&'a str> {
    let marker = format!("<div class=\"{class}\">");
    let start = html.find(&marker)? + marker.len();
    let end = html[start..].find("</div>")? + start;
    Some(&html[start..end])
}

/// All inner texts of `tag` within `fragment` (non-nested, as rendered).
fn cell_texts<'a>(fragment: &'a str, tag: &str) -> Vec<&'a str> {
    let open_prefix = format!("<{tag}");
    let close = format!("</{tag}>");
    let mut cells = Vec::new();
    let mut pos = 0;
    while let Some(rel) = fragment[pos..].find(&open_prefix) {
        let tag_start = pos + rel;
        let Some(gt) = fragment[tag_start..].find('>') else {
            break;
        };
        let content_start = tag_start + gt + 1;
        let Some(rel_end) = fragment[content_start..].find(&close) else {
            break;
        };
        cells.push(&fragment[content_start..content_start + rel_end]);
        pos = content_start + rel_end + close.len();
    }
    cells
}

/// Parse a count banner "About 12,000 results" into the number.
fn parse_count_banner(text: &str) -> Option<u64> {
    let digits: String = text.chars().filter(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Scrape a results page back into a [`QueryResponse`].
///
/// # Errors
/// [`InterfaceError::Parse`] when the page lacks the results table, a row
/// has the wrong number of cells, or a label/number fails to parse.
pub fn scrape_results_page(schema: &Schema, html: &str) -> Result<QueryResponse, InterfaceError> {
    let reported_count = div_text(html, "count").and_then(parse_count_banner);
    let overflow = div_text(html, "overflow").is_some();

    let table_start = html
        .find("<table class=\"results\">")
        .ok_or_else(|| InterfaceError::Parse("results table missing".into()))?;
    let table_end = html[table_start..]
        .find("</table>")
        .map(|e| table_start + e)
        .ok_or_else(|| InterfaceError::Parse("results table unterminated".into()))?;
    let table = &html[table_start..table_end];

    let expected_cells = 1 + schema.arity() + schema.measure_arity();
    let mut rows = Vec::new();
    for (tr_ix, tr) in cell_texts(table, "tr").into_iter().enumerate() {
        if tr_ix == 0 {
            // Header row: sanity-check the column count so schema drift is
            // detected loudly rather than mis-scraped silently.
            let headers = cell_texts(tr, "th");
            if headers.len() != expected_cells {
                return Err(InterfaceError::Parse(format!(
                    "header has {} columns, schema expects {expected_cells}",
                    headers.len()
                )));
            }
            continue;
        }
        let cells = cell_texts(tr, "td");
        if cells.len() != expected_cells {
            return Err(InterfaceError::Parse(format!(
                "row {tr_ix} has {} cells, expected {expected_cells}",
                cells.len()
            )));
        }
        let key: u64 = cells[0]
            .trim()
            .parse()
            .map_err(|_| InterfaceError::Parse(format!("bad listing key `{}`", cells[0])))?;
        let mut values: Vec<DomIx> = Vec::with_capacity(schema.arity());
        for (id, attr) in schema.iter() {
            let text = unescape_html(cells[1 + id.index()].trim());
            let v = attr.parse_label(&text).ok_or_else(|| {
                InterfaceError::Parse(format!(
                    "unknown label `{text}` for attribute `{}`",
                    attr.name()
                ))
            })?;
            values.push(v);
        }
        let mut measures = Vec::with_capacity(schema.measure_arity());
        for m in 0..schema.measure_arity() {
            let text = cells[1 + schema.arity() + m].trim();
            let x: f64 = text
                .parse()
                .map_err(|_| InterfaceError::Parse(format!("bad measure `{text}`")))?;
            measures.push(x);
        }
        rows.push(Row::new(key, values, measures));
    }
    Ok(QueryResponse {
        rows,
        overflow,
        reported_count,
    })
}

/// Everything schema discovery learns from one fetch of a site's form
/// page: the typed schema (attribute kinds, vocabularies, numeric bucket
/// bounds, measures), the submit action, and the site's interface
/// parameters (top-k limit, count-banner support).
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveredForm {
    /// The reconstructed schema.
    pub schema: Schema,
    /// The form's submit path (e.g. `/search`).
    pub action: String,
    /// The advertised top-k display limit (`data-hds-k`).
    pub k: usize,
    /// Whether the site prints a count banner (`data-hds-count`).
    pub supports_count: bool,
    /// The site's advertised identity fingerprint
    /// (`data-hds-fingerprint`), when the page carries one. Older pages
    /// without the attribute scrape fine; clients derive a fingerprint
    /// from the scraped schema instead.
    pub fingerprint: Option<String>,
}

/// Extract the value of `name="..."` from one tag's attribute text.
///
/// The needle must start the text or follow whitespace, so `lo` never
/// matches inside `data-lo`. Values are entity-unescaped; a literal `"`
/// can never appear inside one (it renders as `&quot;`), so the closing
/// quote is unambiguous.
fn tag_attr(tag: &str, name: &str) -> Option<String> {
    let needle = format!("{name}=\"");
    let mut pos = 0;
    while let Some(rel) = tag[pos..].find(&needle) {
        let start = pos + rel;
        let vstart = start + needle.len();
        let vend = tag[vstart..].find('"')? + vstart;
        if start == 0 || tag[..start].ends_with(|c: char| c.is_whitespace()) {
            return Some(unescape_html(&tag[vstart..vend]));
        }
        pos = vend + 1;
    }
    None
}

/// All elements `<tag ...>inner</tag>` within `fragment`, as
/// `(attribute_text, inner_text)` pairs (non-nested, as rendered).
fn elements<'a>(fragment: &'a str, tag: &str) -> Vec<(&'a str, &'a str)> {
    let open_prefix = format!("<{tag}");
    let close = format!("</{tag}>");
    let mut out = Vec::new();
    let mut pos = 0;
    while let Some(rel) = fragment[pos..].find(&open_prefix) {
        let tag_start = pos + rel;
        let attrs_start = tag_start + open_prefix.len();
        let Some(gt) = fragment[attrs_start..].find('>') else {
            break;
        };
        let content_start = attrs_start + gt + 1;
        let Some(rel_end) = fragment[content_start..].find(&close) else {
            break;
        };
        out.push((
            &fragment[attrs_start..attrs_start + gt],
            &fragment[content_start..content_start + rel_end],
        ));
        pos = content_start + rel_end + close.len();
    }
    out
}

fn parse_err(msg: impl Into<String>) -> InterfaceError {
    InterfaceError::Parse(msg.into())
}

/// Rebuild one attribute from its `<select>` element.
fn scrape_select(attrs: &str, inner: &str) -> Result<Attribute, InterfaceError> {
    let name = tag_attr(attrs, "name").ok_or_else(|| parse_err("form select carries no name"))?;
    let kind = tag_attr(attrs, "data-kind")
        .ok_or_else(|| parse_err(format!("select `{name}` carries no data-kind")))?;
    let mut labels: Vec<String> = Vec::new();
    let mut buckets: Vec<Bucket> = Vec::new();
    for (o_attrs, _) in elements(inner, "option") {
        let value = tag_attr(o_attrs, "value")
            .ok_or_else(|| parse_err(format!("option of `{name}` carries no value")))?;
        if value.is_empty() {
            // The "any" placeholder — not a domain value.
            continue;
        }
        if kind == "numeric" {
            let bound = |which: &str| -> Result<f64, InterfaceError> {
                tag_attr(o_attrs, which)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| {
                        parse_err(format!(
                            "numeric option `{value}` of `{name}` has no parseable {which}"
                        ))
                    })
            };
            buckets.push(Bucket::new(bound("data-lo")?, bound("data-hi")?, value));
        } else {
            labels.push(value);
        }
    }
    match kind.as_str() {
        "boolean" => {
            if labels != ["no", "yes"] {
                return Err(parse_err(format!(
                    "boolean select `{name}` lists {labels:?}, expected [\"no\", \"yes\"]"
                )));
            }
            Ok(Attribute::boolean(name))
        }
        "categorical" => Attribute::categorical(&name, labels)
            .map_err(|e| parse_err(format!("select `{name}`: {e}"))),
        "numeric" => Attribute::numeric(&name, buckets)
            .map_err(|e| parse_err(format!("select `{name}`: {e}"))),
        other => Err(parse_err(format!(
            "select `{name}` has unknown data-kind `{other}`"
        ))),
    }
}

/// Scrape a served form page back into a [`DiscoveredForm`] — the typed
/// schema, submit action, k, and count support, reconstructed from the
/// markup [`WebForm::render_html_with_meta`](crate::form::WebForm::render_html_with_meta)
/// emits. This is the whole of schema discovery: a connector fetches `/`
/// once and needs no configuration beyond the site's address.
///
/// # Errors
/// [`InterfaceError::Parse`] when the page has no form, the form lacks
/// the `data-hds-k`/`data-hds-count` metadata, or any select/option is
/// malformed.
pub fn scrape_form_page(html: &str) -> Result<DiscoveredForm, InterfaceError> {
    let form_start = html
        .find("<form")
        .ok_or_else(|| parse_err("page carries no <form>"))?;
    let form_tag_end = html[form_start..]
        .find('>')
        .map(|e| form_start + e)
        .ok_or_else(|| parse_err("form tag unterminated"))?;
    let form_attrs = &html[form_start + "<form".len()..form_tag_end];
    let form_end = html[form_tag_end..]
        .find("</form>")
        .map(|e| form_tag_end + e)
        .ok_or_else(|| parse_err("form unterminated"))?;
    let form_body = &html[form_tag_end + 1..form_end];

    let action =
        tag_attr(form_attrs, "action").ok_or_else(|| parse_err("form carries no action"))?;
    let k: usize = tag_attr(form_attrs, "data-hds-k")
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err("form advertises no top-k limit (data-hds-k)"))?;
    let supports_count = match tag_attr(form_attrs, "data-hds-count").as_deref() {
        Some("yes") => true,
        Some("no") => false,
        _ => {
            return Err(parse_err(
                "form advertises no count support (data-hds-count)",
            ))
        }
    };

    let mut builder = SchemaBuilder::new();
    let selects = elements(form_body, "select");
    if selects.is_empty() {
        return Err(parse_err("form has no select fields"));
    }
    for (attrs, inner) in selects {
        builder = builder.attribute(scrape_select(attrs, inner)?);
    }
    if let Some((_, ul)) = elements(form_body, "ul")
        .into_iter()
        .find(|(attrs, _)| tag_attr(attrs, "class").as_deref() == Some("measures"))
    {
        for li in cell_texts(ul, "li") {
            builder = builder.measure(Measure::new(unescape_html(li.trim())));
        }
    }
    let schema = builder
        .finish()
        .map_err(|e| parse_err(format!("scraped form is not a valid schema: {e}")))?;
    Ok(DiscoveredForm {
        schema,
        action,
        k,
        supports_count,
        fingerprint: tag_attr(form_attrs, "data-hds-fingerprint"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::render_results_page;
    use hdsampler_model::{Attribute, Measure, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new()
            .attribute(Attribute::categorical("make", ["Toyota", "A&B <Cars>"]).unwrap())
            .attribute(Attribute::boolean("used"))
            .measure(Measure::new("price"))
            .finish()
            .unwrap()
    }

    fn response() -> QueryResponse {
        QueryResponse {
            rows: vec![
                Row::new(42, vec![1, 0], vec![19_999.5]),
                Row::new(7, vec![0, 1], vec![0.1 + 0.2]), // non-round float
            ],
            overflow: true,
            reported_count: Some(12_000),
        }
    }

    #[test]
    fn render_scrape_roundtrip_is_exact() {
        let s = schema();
        let resp = response();
        let html = render_results_page(&s, &resp, 500);
        let back = scrape_results_page(&s, &html).unwrap();
        assert_eq!(back, resp, "bit-exact round trip incl. floats and entities");
    }

    #[test]
    fn empty_page_roundtrip() {
        let s = schema();
        let resp = QueryResponse {
            rows: vec![],
            overflow: false,
            reported_count: None,
        };
        let html = render_results_page(&s, &resp, 500);
        let back = scrape_results_page(&s, &html).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn count_banner_parsing() {
        assert_eq!(parse_count_banner("About 12,000 results"), Some(12_000));
        assert_eq!(parse_count_banner("About 7 results"), Some(7));
        assert_eq!(parse_count_banner("no digits"), None);
    }

    #[test]
    fn missing_table_is_a_parse_error() {
        let s = schema();
        let err = scrape_results_page(&s, "<html><body>oops</body></html>").unwrap_err();
        assert!(matches!(err, InterfaceError::Parse(_)));
    }

    #[test]
    fn schema_drift_detected_via_header() {
        let s = schema();
        let html = "<table class=\"results\">\
                    <tr><th>id</th><th>make</th></tr>\
                    </table>";
        let err = scrape_results_page(&s, html).unwrap_err();
        assert!(matches!(err, InterfaceError::Parse(msg) if msg.contains("header")));
    }

    #[test]
    fn corrupt_cells_detected() {
        let s = schema();
        let html = "<table class=\"results\">\
            <tr><th>id</th><th>make</th><th>used</th><th>price</th></tr>\
            <tr><td>notanumber</td><td>Toyota</td><td>no</td><td>1.0</td></tr>\
            </table>";
        assert!(matches!(
            scrape_results_page(&s, html),
            Err(InterfaceError::Parse(msg)) if msg.contains("listing key")
        ));

        let html = "<table class=\"results\">\
            <tr><th>id</th><th>make</th><th>used</th><th>price</th></tr>\
            <tr><td>1</td><td>Tesla</td><td>no</td><td>1.0</td></tr>\
            </table>";
        assert!(matches!(
            scrape_results_page(&s, html),
            Err(InterfaceError::Parse(msg)) if msg.contains("Tesla")
        ));
    }
}
