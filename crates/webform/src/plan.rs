//! [`RunPlan`]: one front door for every execution path.
//!
//! PRs past grew four ways to run a sampling fleet —
//! [`SamplingSession::run`](hdsampler_core::SamplingSession::run) and its
//! parallel variant, [`MultiSiteDriver`]'s concurrent/serial modes, and
//! the cooperative [`CoopDriver`] — each with its own config plumbing and
//! report shape. [`RunPlan`] normalizes them: one builder describing
//! *what* to run (target, walkers, seed, slider, scope), *how* to run it
//! ([`Driver`]), and *who watches* (attached
//! [`SampleSink`](hdsampler_core::SampleSink)s observing every accepted
//! sample live), returning one [`RunReport`] whichever driver executed.
//!
//! ```no_run
//! # use hdsampler_webform::{RunPlan, Driver, SiteTask, LatencyTransport, LocalSite};
//! # fn demo(mut fleet: Vec<SiteTask<LatencyTransport<LocalSite<std::sync::Arc<()>>>>>) {
//! # }
//! ```
//!
//! Typical use:
//!
//! ```text
//! let report = RunPlan::target(200)
//!     .walkers(8)
//!     .driver(Driver::Coop { conns: Some(4) })
//!     .seed(2009)
//!     .attach(&mut histogram)     // any SampleSink, updated live
//!     .run(&mut fleet);
//! ```

use std::sync::Arc;

use hdsampler_core::{trace_all, SampleSink, SampleTraceSink, TraceSink};
use hdsampler_model::{ConjunctiveQuery, Schema};

use crate::adapter::WebFormInterface;
use crate::aio::AsyncTransport;
use crate::connect::{BoxTransport, ConnectOptions, ConnectorRegistry};
use crate::coop::{CoopDriver, CoopSiteDetail};
use crate::driver::{FleetConfig, FleetReport, MultiSiteDriver, SiteReport, SiteTask};
use crate::httpc::HttpTransport;
use crate::locator::SiteLocator;
use crate::transport::{Clocked, Transport};

/// Which execution engine a [`RunPlan`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// Thread-per-walker: one runner thread per site, W walker threads
    /// per runner ([`MultiSiteDriver::run_concurrent`]). With one site
    /// and one walker this is the plain blocking session.
    Threaded,
    /// The serial baseline: sites one after another, one walker each
    /// ([`MultiSiteDriver::run_serial`]).
    Serial,
    /// Cooperative: one OS thread multiplexing every site's walker
    /// machines over `conns` pipelined connections per site (`None` =
    /// one connection per walker) — [`CoopDriver`].
    Coop {
        /// Wire connections per site the walkers share.
        conns: Option<usize>,
    },
}

/// Outcome of a [`RunPlan`]: the fleet report plus which driver ran and,
/// for the cooperative driver, its per-walker detail.
#[derive(Debug)]
pub struct RunReport {
    /// Which engine executed the plan.
    pub driver: Driver,
    /// Per-site outcomes and fleet clocks.
    pub fleet: FleetReport,
    /// Per-walker sequences and connection counts (cooperative driver
    /// only).
    pub details: Option<Vec<CoopSiteDetail>>,
}

impl RunReport {
    /// The first (often only) site's report.
    pub fn site(&self) -> &SiteReport {
        &self.fleet.sites[0]
    }

    /// Samples collected across the fleet.
    pub fn total_samples(&self) -> usize {
        self.fleet.total_samples()
    }
}

/// A single builder describing one sampling run, whatever the driver.
///
/// The lifetime `'a` covers attached sinks: the caller keeps ownership
/// and reads their final (or, for a live display, mid-run) state after
/// [`RunPlan::run`] returns.
pub struct RunPlan<'a> {
    target: usize,
    walkers: usize,
    seed: u64,
    slider: f64,
    scope: ConjunctiveQuery,
    driver: Driver,
    steal: bool,
    l2: Option<String>,
    sinks: Vec<&'a mut dyn SampleSink>,
    trace_sinks: Vec<&'a mut dyn TraceSink>,
}

impl<'a> RunPlan<'a> {
    /// Plan a run collecting `target` samples per site.
    pub fn target(target: usize) -> Self {
        RunPlan {
            target,
            walkers: 1,
            seed: 2009,
            slider: 0.0,
            scope: ConjunctiveQuery::empty(),
            driver: Driver::Threaded,
            steal: false,
            l2: None,
            sinks: Vec::new(),
            trace_sinks: Vec::new(),
        }
    }

    /// Walkers per site (threads for [`Driver::Threaded`], machines for
    /// [`Driver::Coop`]; ignored by [`Driver::Serial`], which is
    /// single-walker by definition).
    pub fn walkers(mut self, walkers: usize) -> Self {
        self.walkers = walkers.max(1);
        self
    }

    /// Base RNG seed ([`FleetConfig::walker_config`] derives per-walker
    /// seeds).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Efficiency ↔ skew slider position for every walker.
    pub fn slider(mut self, slider: f64) -> Self {
        self.slider = slider;
        self
    }

    /// Pinned bindings applied fleet-wide.
    pub fn scope(mut self, scope: ConjunctiveQuery) -> Self {
        self.scope = scope;
        self
    }

    /// Which engine runs the plan.
    pub fn driver(mut self, driver: Driver) -> Self {
        self.driver = driver;
        self
    }

    /// Enable cross-site work-stealing: sites that finish early donate
    /// their walker slots to the hungriest still-running site
    /// ([`CoopDriver::with_stealing`]). Only the cooperative driver
    /// steals; the flag is ignored by the others.
    pub fn steal(mut self, steal: bool) -> Self {
        self.steal = steal;
        self
    }

    /// Root directory for the persistent L2 fact log. Every site the
    /// plan connects keeps its history under
    /// `<root>/<site fingerprint>/`, so a later run against the same
    /// site version warm-starts from disk instead of the wire. Only
    /// takes effect through the locator paths
    /// ([`run_locators`](RunPlan::run_locators) /
    /// [`run_locators_with`](RunPlan::run_locators_with)); a per-site
    /// `l2=` locator parameter still wins.
    pub fn l2(mut self, root: impl Into<String>) -> Self {
        self.l2 = Some(root.into());
        self
    }

    /// Attach a streaming sink observing every accepted sample across the
    /// whole fleet, live. Repeatable. The caller keeps ownership and
    /// inspects the sink after the run.
    pub fn attach(mut self, sink: &'a mut dyn SampleSink) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Attach a [`TraceSink`] observing the run's trace events.
    /// Repeatable; attaching none keeps tracing off (no events are even
    /// constructed).
    ///
    /// Fidelity depends on the driver: the cooperative driver emits the
    /// full span stream (cache, wire, retry, stall, steal, sample); the
    /// threaded and serial drivers bridge accepted-sample events only,
    /// via [`SampleTraceSink`], without touching their hot paths.
    pub fn attach_trace(mut self, sink: &'a mut dyn TraceSink) -> Self {
        self.trace_sinks.push(sink);
        self
    }

    /// The [`FleetConfig`] this plan resolves to (what the drivers see).
    pub fn fleet_config(&self) -> FleetConfig {
        FleetConfig {
            walkers_per_site: self.walkers,
            target_per_site: self.target,
            seed: self.seed,
            slider: self.slider,
            scope: self.scope.clone(),
        }
    }

    /// Execute the plan over `sites` — simulated wires or live TCP, any
    /// transport implementing both the blocking and the explicit-
    /// connection face. Per-site [`SiteTask`] sinks observe alongside the
    /// plan's attached run-level sinks.
    pub fn run<T>(mut self, sites: &mut [SiteTask<T>]) -> RunReport
    where
        T: Transport + AsyncTransport + Clocked + Send,
    {
        let cfg = self.fleet_config();
        let mut bridge = SampleTraceSink::new();
        let mut run_sinks: Vec<&mut dyn SampleSink> =
            self.sinks.drain(..).map(|s| &mut *s).collect();
        let mut trace_sinks: Vec<&mut dyn TraceSink> =
            self.trace_sinks.drain(..).map(|s| &mut *s).collect();
        // The threaded/serial drivers have no native trace stream; mirror
        // their accepted samples through a bridge sink instead.
        let bridging = !trace_sinks.is_empty() && !matches!(self.driver, Driver::Coop { .. });
        if bridging {
            run_sinks.push(&mut bridge);
        }
        let report = match self.driver {
            Driver::Threaded => RunReport {
                driver: self.driver,
                fleet: MultiSiteDriver::new(cfg).run_concurrent_observed(sites, &mut run_sinks),
                details: None,
            },
            Driver::Serial => RunReport {
                driver: self.driver,
                fleet: MultiSiteDriver::new(cfg).run_serial_observed(sites, &mut run_sinks),
                details: None,
            },
            Driver::Coop { conns } => {
                let mut coop = CoopDriver::new(cfg).with_stealing(self.steal);
                if let Some(c) = conns {
                    coop = coop.with_connections(c);
                }
                let (fleet, details) = coop.run_traced(sites, &mut run_sinks, &mut trace_sinks);
                RunReport {
                    driver: self.driver,
                    fleet,
                    details: Some(details),
                }
            }
        };
        if bridging {
            drop(run_sinks);
            for event in bridge.take() {
                trace_all(&mut trace_sinks, &event);
            }
        }
        report
    }

    /// Connect every locator through the standard
    /// [`ConnectorRegistry`] — building in-process sites, dialing live
    /// servers, loading tapes, discovering each site's schema off its own
    /// `/` — and execute the plan over the resulting *heterogeneous*
    /// fleet. Returns the report and the tasks, so wire statistics and
    /// per-site sinks remain inspectable.
    ///
    /// The fleet shares one [`FleetConfig`]; with per-site schemas, the
    /// plan's `scope` must be empty or resolvable against every site.
    ///
    /// # Errors
    /// The first locator that fails to connect (unknown dataset,
    /// unreachable host, missing tape, unscrapable landing page).
    pub fn run_locators(
        self,
        locators: &[SiteLocator],
    ) -> Result<(RunReport, Vec<SiteTask<BoxTransport>>), String> {
        self.run_locators_with(locators, &ConnectOptions::default())
    }

    /// [`run_locators`](RunPlan::run_locators) with explicit
    /// [`ConnectOptions`] (e.g. recording the session to a tape).
    pub fn run_locators_with(
        self,
        locators: &[SiteLocator],
        opts: &ConnectOptions,
    ) -> Result<(RunReport, Vec<SiteTask<BoxTransport>>), String> {
        if locators.is_empty() {
            return Err("run_locators: empty locator list".into());
        }
        let merged;
        let opts = match &self.l2 {
            Some(root) => {
                merged = ConnectOptions {
                    l2: Some(root.clone()),
                    ..opts.clone()
                };
                &merged
            }
            None => opts,
        };
        let registry = ConnectorRegistry::standard();
        let mut tasks = locators
            .iter()
            .map(|loc| registry.connect(loc, opts))
            .collect::<Result<Vec<_>, String>>()?;
        let report = self.run(&mut tasks);
        Ok((report, tasks))
    }

    /// Build one [`SiteTask`] per live server address over real TCP and
    /// execute the plan against them. `schema`/`k`/`supports_count`
    /// describe the served form (the scraper "reads the site's
    /// documentation"). Returns the report and the tasks, so wire
    /// statistics and per-site sinks remain inspectable.
    pub fn run_remote(
        self,
        addrs: &[&str],
        schema: Arc<Schema>,
        k: usize,
        supports_count: bool,
    ) -> Result<(RunReport, Vec<SiteTask<HttpTransport>>), String> {
        if addrs.is_empty() || addrs.iter().any(|a| a.trim().is_empty()) {
            return Err("run_remote: empty address list or blank address".into());
        }
        let mut tasks: Vec<SiteTask<HttpTransport>> = addrs
            .iter()
            .map(|addr| {
                SiteTask::new(
                    addr.to_string(),
                    WebFormInterface::new(
                        HttpTransport::new(*addr),
                        Arc::clone(&schema),
                        k,
                        supports_count,
                    ),
                )
            })
            .collect();
        let report = self.run(&mut tasks);
        Ok((report, tasks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{LatencyTransport, LocalSite};
    use hdsampler_core::{SampleSetSink, StopReason};
    use hdsampler_hidden_db::HiddenDb;
    use hdsampler_model::FormInterface as _;
    use hdsampler_workload::figure1_db;

    fn figure1_task(
        name: &str,
        latency_ms: u64,
    ) -> SiteTask<LatencyTransport<LocalSite<HiddenDb>>> {
        let db = figure1_db(1);
        let schema = Arc::new(db.schema().clone());
        let site = LocalSite::new(db, Arc::clone(&schema));
        let wire = LatencyTransport::new(site, latency_ms);
        SiteTask::new(name, WebFormInterface::new(wire, schema, 1, false))
    }

    #[test]
    fn one_front_door_runs_all_three_drivers() {
        for driver in [
            Driver::Threaded,
            Driver::Serial,
            Driver::Coop { conns: Some(2) },
        ] {
            let mut fleet = vec![figure1_task("a", 50), figure1_task("b", 50)];
            let mut collected = SampleSetSink::new();
            let report = RunPlan::target(20)
                .walkers(3)
                .seed(5)
                .driver(driver)
                .attach(&mut collected)
                .run(&mut fleet);
            assert_eq!(report.driver, driver);
            assert_eq!(report.total_samples(), 40, "{driver:?}");
            assert_eq!(
                collected.set().len(),
                40,
                "run-level sink sees the whole fleet under {driver:?}"
            );
            for site in &report.fleet.sites {
                assert_eq!(site.stopped, StopReason::TargetReached);
                assert!(site.stats.accepted >= 20);
                assert!(site.history.shard_count > 0);
            }
            assert_eq!(
                report.details.is_some(),
                matches!(driver, Driver::Coop { .. })
            );
        }
    }

    #[test]
    fn per_site_and_run_level_sinks_compose() {
        let mut fleet = vec![
            figure1_task("a", 30).with_sink(Box::new(SampleSetSink::new())),
            figure1_task("b", 30).with_sink(Box::new(SampleSetSink::new())),
        ];
        let mut all = SampleSetSink::new();
        let report = RunPlan::target(15)
            .walkers(2)
            .driver(Driver::Coop { conns: None })
            .attach(&mut all)
            .run(&mut fleet);
        assert_eq!(all.set().len(), 30);
        for (task, site) in fleet.iter_mut().zip(&report.fleet.sites) {
            let sink = task.take_sink().expect("sink attached");
            let sink = sink
                .as_any()
                .downcast_ref::<SampleSetSink>()
                .expect("concrete type");
            assert_eq!(
                sink.set().keys(),
                site.samples.keys(),
                "per-site sink saw exactly the site's samples, in order"
            );
        }
    }

    #[test]
    fn fleet_config_resolves_the_builder() {
        let plan = RunPlan::target(7).walkers(3).seed(42).slider(0.5);
        let cfg = plan.fleet_config();
        assert_eq!(cfg.target_per_site, 7);
        assert_eq!(cfg.walkers_per_site, 3);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.slider, 0.5);
    }

    #[test]
    fn tracing_does_not_perturb_the_sample_sequence() {
        // Acceptance: disabling tracing changes no sample sequence. Run
        // the cooperative driver twice from one seed, traced and
        // untraced, and require identical per-site sample key sequences
        // and identical fleet clocks.
        use hdsampler_core::TraceLog;
        let run = |trace: Option<&mut TraceLog>| {
            let mut fleet = vec![figure1_task("a", 40), figure1_task("b", 60)];
            let plan = RunPlan::target(25)
                .walkers(3)
                .seed(77)
                .driver(Driver::Coop { conns: Some(2) });
            let report = match trace {
                Some(log) => plan.attach_trace(log).run(&mut fleet),
                None => plan.run(&mut fleet),
            };
            (
                report
                    .fleet
                    .sites
                    .iter()
                    .map(|s| s.samples.keys())
                    .collect::<Vec<_>>(),
                report.fleet.fleet_elapsed_ms,
            )
        };
        let mut log = TraceLog::new();
        let traced = run(Some(&mut log));
        let untraced = run(None);
        assert_eq!(traced, untraced, "tracing must be a pure observer");
        assert!(
            log.events().iter().any(|e| e.kind == "wire"),
            "the traced run journaled wire events"
        );
        assert!(log.events().iter().any(|e| e.kind == "sample"));
    }

    #[test]
    fn threaded_and_serial_drivers_bridge_samples_into_trace_sinks() {
        use hdsampler_core::TraceLog;
        for driver in [Driver::Threaded, Driver::Serial] {
            let mut fleet = vec![figure1_task("a", 10)];
            let mut log = TraceLog::new();
            let report = RunPlan::target(10)
                .walkers(2)
                .seed(3)
                .driver(driver)
                .attach_trace(&mut log)
                .run(&mut fleet);
            assert_eq!(
                log.events().len(),
                report.total_samples(),
                "one bridged sample event per accepted sample under {driver:?}"
            );
            assert!(log.events().iter().all(|e| e.kind == "sample"));
        }
    }

    #[test]
    fn run_remote_rejects_blank_addresses() {
        let schema = Arc::new(figure1_db(1).schema().clone());
        assert!(RunPlan::target(1)
            .run_remote(&[], schema.clone(), 1, false)
            .is_err());
        assert!(RunPlan::target(1)
            .run_remote(&["a:1", " "], schema, 1, false)
            .is_err());
    }
}
