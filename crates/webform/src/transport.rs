//! The simulated wire between scraper and site.
//!
//! [`Transport`] abstracts "fetch this path, get a page". [`LocalSite`]
//! is the in-process server: it parses the request with the site's
//! [`WebForm`], executes it on the backing
//! [`FormInterface`](hdsampler_model::FormInterface) (typically a
//! [`HiddenDb`](hdsampler_hidden_db::HiddenDb), which enforces top-k,
//! budgets and count noise), and renders the page. [`LatencyTransport`]
//! adds a *virtual* per-request latency so time-to-insight experiments can
//! report wall-clock numbers without actually sleeping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hdsampler_model::{FormInterface, InterfaceError, Schema};

use crate::form::WebForm;
use crate::render::render_results_page;

/// A page fetcher.
pub trait Transport: Send + Sync {
    /// Fetch `path` (path + query string) and return the page body.
    fn fetch(&self, path: &str) -> Result<String, InterfaceError>;
}

/// The in-process web site serving a hidden database as HTML.
#[derive(Debug)]
pub struct LocalSite<F> {
    backend: F,
    form: WebForm,
}

impl<F: FormInterface> LocalSite<F> {
    /// Serve `backend` at `/search`.
    pub fn new(backend: F, schema: Arc<Schema>) -> Self {
        LocalSite {
            backend,
            form: WebForm::new(schema, "/search"),
        }
    }

    /// The site's form definition (what a scraper would read off the
    /// landing page).
    pub fn form(&self) -> &WebForm {
        &self.form
    }

    /// The backing interface.
    pub fn backend(&self) -> &F {
        &self.backend
    }
}

impl<F: FormInterface> Transport for LocalSite<F> {
    fn fetch(&self, path: &str) -> Result<String, InterfaceError> {
        let query = self
            .form
            .parse_request_path(path)
            .map_err(|e| InterfaceError::Transport(format!("400 bad request: {e}")))?;
        let response = self.backend.execute(&query)?;
        Ok(render_results_page(
            self.form.schema(),
            &response,
            self.backend.result_limit(),
        ))
    }
}

/// Decorator adding fixed virtual latency per fetch.
///
/// Latency is *accounted*, not slept: [`LatencyTransport::virtual_elapsed_ms`]
/// returns what the wall clock would have shown at ~`latency_ms` per
/// round trip — the way the paper's "matter of minutes" claim is checked
/// without a multi-minute benchmark.
#[derive(Debug)]
pub struct LatencyTransport<T> {
    inner: T,
    latency_ms: u64,
    elapsed_ms: AtomicU64,
}

impl<T: Transport> LatencyTransport<T> {
    /// Wrap `inner` with `latency_ms` per request.
    pub fn new(inner: T, latency_ms: u64) -> Self {
        LatencyTransport {
            inner,
            latency_ms,
            elapsed_ms: AtomicU64::new(0),
        }
    }

    /// Virtual wall-clock consumed so far.
    pub fn virtual_elapsed_ms(&self) -> u64 {
        self.elapsed_ms.load(Ordering::Relaxed)
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: Transport> Transport for LatencyTransport<T> {
    fn fetch(&self, path: &str) -> Result<String, InterfaceError> {
        self.elapsed_ms
            .fetch_add(self.latency_ms, Ordering::Relaxed);
        self.inner.fetch(path)
    }
}

impl<T: Transport + ?Sized> Transport for &T {
    fn fetch(&self, path: &str) -> Result<String, InterfaceError> {
        (**self).fetch(path)
    }
}

impl<T: Transport + ?Sized> Transport for Arc<T> {
    fn fetch(&self, path: &str) -> Result<String, InterfaceError> {
        (**self).fetch(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_hidden_db::HiddenDb;
    use hdsampler_model::{Attribute, SchemaBuilder, Tuple};

    fn site() -> LocalSite<HiddenDb> {
        let schema = SchemaBuilder::new()
            .attribute(Attribute::categorical("make", ["Toyota", "Honda"]).unwrap())
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(Arc::clone(&schema)).result_limit(1);
        for v in [0u16, 0, 1] {
            b.push(&Tuple::new(&schema, vec![v], vec![]).unwrap())
                .unwrap();
        }
        LocalSite::new(b.finish(), schema)
    }

    #[test]
    fn serves_pages() {
        let site = site();
        let page = site.fetch("/search?make=Honda").unwrap();
        assert!(page.contains("<table class=\"results\">"));
        assert!(page.contains("Honda"));
        let overflowing = site.fetch("/search?make=Toyota").unwrap();
        assert!(overflowing.contains("class=\"overflow\""));
    }

    #[test]
    fn bad_requests_are_transport_errors() {
        let site = site();
        let err = site.fetch("/search?bogus=1").unwrap_err();
        assert!(matches!(err, InterfaceError::Transport(msg) if msg.contains("400")));
    }

    #[test]
    fn latency_accumulates_virtually() {
        let site = site();
        let t = LatencyTransport::new(&site, 150);
        let before = std::time::Instant::now();
        for _ in 0..10 {
            t.fetch("/search?make=Honda").unwrap();
        }
        assert_eq!(t.virtual_elapsed_ms(), 1_500);
        assert!(
            before.elapsed().as_millis() < 1_000,
            "must not actually sleep"
        );
    }
}
