//! The simulated wire between scraper and site.
//!
//! [`Transport`] abstracts "fetch this path, get a page". [`LocalSite`]
//! is the in-process server: it routes the request (anything off the
//! form's action 404s, like a real site), parses it with the site's
//! [`WebForm`], executes it on the backing
//! [`FormInterface`](hdsampler_model::FormInterface) (typically a
//! [`HiddenDb`](hdsampler_hidden_db::HiddenDb), which enforces top-k,
//! budgets and count noise), and renders the page. [`LatencyTransport`]
//! adds *virtual* per-request latency over per-connection clocks
//! ([`crate::aio`]) so time-to-insight experiments can report wall-clock
//! numbers without actually sleeping — and so overlapping requests are
//! billed like overlapping requests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;

use hdsampler_model::{FormInterface, InterfaceError, Schema};
use parking_lot::Mutex;

use crate::aio::{AsyncTransport, ConnClocks, ConnId, FetchHandle, FetchPoll};
use crate::form::WebForm;
use crate::render::render_results_page;

/// A page fetcher.
pub trait Transport: Send + Sync {
    /// Fetch `path` (path + query string) and return the page body.
    fn fetch(&self, path: &str) -> Result<String, InterfaceError>;

    /// Close idle keep-alive connections (those with no outstanding work),
    /// releasing their sockets and any per-thread bindings; returns how
    /// many were closed. Drivers call this between sites so a transport
    /// whose walker threads have exited does not strand open sockets for
    /// its whole lifetime. Virtual and in-process wires hold no OS
    /// resources per connection, so the default closes nothing.
    fn close_idle(&self) -> usize {
        0
    }

    /// Wait out a retry backoff of `ms` milliseconds on whatever clock
    /// this wire runs on. Real wires sleep; virtual wires advance the
    /// calling thread's connection clock instead, so backoff is *billed*
    /// (it delays later departures and raises the site's elapsed figure)
    /// without slowing the experiment down.
    fn backoff(&self, ms: u64) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// A transport that can report the wall-clock time its traffic consumed —
/// *virtual* for simulated wires ([`LatencyTransport`]), *real* for TCP
/// ones ([`HttpTransport`](crate::httpc::HttpTransport)). The fleet driver
/// ([`crate::driver`]) only needs this figure, so it drives simulated and
/// live sites through one code path.
pub trait Clocked {
    /// Elapsed milliseconds attributable to this transport's traffic.
    fn elapsed_ms(&self) -> u64;
}

impl<T: Clocked + ?Sized> Clocked for &T {
    fn elapsed_ms(&self) -> u64 {
        (**self).elapsed_ms()
    }
}

impl<T: Clocked + ?Sized> Clocked for Arc<T> {
    fn elapsed_ms(&self) -> u64 {
        (**self).elapsed_ms()
    }
}

/// The in-process web site serving a hidden database as HTML.
#[derive(Debug)]
pub struct LocalSite<F> {
    backend: F,
    form: WebForm,
}

impl<F: FormInterface> LocalSite<F> {
    /// Serve `backend` at `/search`.
    pub fn new(backend: F, schema: Arc<Schema>) -> Self {
        LocalSite {
            backend,
            form: WebForm::new(schema, "/search"),
        }
    }

    /// The site's form definition (what a scraper would read off the
    /// landing page).
    pub fn form(&self) -> &WebForm {
        &self.form
    }

    /// The backing interface.
    pub fn backend(&self) -> &F {
        &self.backend
    }
}

impl<F: FormInterface> Transport for LocalSite<F> {
    fn fetch(&self, path: &str) -> Result<String, InterfaceError> {
        // Route first: only the form's action (and the landing page) is
        // served. A request off them (e.g. `/nosuchpage?make=Honda`) is a
        // 404, not a form parse.
        let route = path.split_once('?').map_or(path, |(p, _)| p);
        if route == "/" && self.form.action() != "/" {
            // The landing page: the self-describing form, the same markup a
            // live server's `/` serves — so schema discovery works
            // identically against in-process, HTTP and replayed sites.
            // The fingerprint advertised here keys persistent (L2) caches;
            // it folds in the backend's dataset digest, so editing the data
            // retires the old cache directory automatically.
            let fp = hdsampler_core::l2::SiteFingerprint::derive(
                self.form.schema(),
                self.backend.result_limit(),
                self.backend.supports_count(),
                self.backend.dataset_digest(),
            );
            return Ok(self.form.render_html_with_fingerprint(
                self.backend.result_limit(),
                self.backend.supports_count(),
                fp.as_str(),
            ));
        }
        if route != self.form.action() {
            return Err(InterfaceError::Transport(format!(
                "404 not found: `{route}` (this site serves `{}`)",
                self.form.action()
            )));
        }
        let query = self
            .form
            .parse_request_path(path)
            .map_err(|e| InterfaceError::SchemaMismatch(format!("400 bad request: {e}")))?;
        let response = self.backend.execute(&query)?;
        Ok(render_results_page(
            self.form.schema(),
            &response,
            self.backend.result_limit(),
        ))
    }
}

/// Decorator adding fixed virtual latency per fetch, billed per
/// connection.
///
/// Latency is *accounted*, not slept: [`LatencyTransport::virtual_elapsed_ms`]
/// returns what the wall clock would have shown — the way the paper's
/// "matter of minutes" claim is checked without a multi-minute benchmark.
/// Each connection has its own virtual clock; requests on one connection
/// serialize while requests on different connections overlap, so the
/// elapsed figure is the **max over connections**, never the sum over
/// fetches (10 concurrent 150 ms fetches cost 150 ms, not 1500 ms).
///
/// Two ways to ride a connection:
///
/// * blocking [`Transport::fetch`] binds one connection per calling OS
///   thread — a multi-threaded walker pool overlaps automatically;
/// * the [`AsyncTransport`] face hands out explicit [`ConnId`]s with
///   non-blocking submit/poll/complete, so one thread can keep several
///   requests in flight.
#[derive(Debug)]
pub struct LatencyTransport<T> {
    inner: T,
    latency_ms: u64,
    /// Half-width of the per-request jitter band around `latency_ms`.
    jitter_ms: u64,
    /// State of the jitter RNG (a splitmix64 stream keyed off the seed).
    jitter_state: AtomicU64,
    clocks: ConnClocks,
    /// Blocking-face binding: one connection per calling thread.
    by_thread: Mutex<HashMap<ThreadId, ConnId>>,
    /// Results of submitted fetches awaiting poll/complete.
    in_flight: Mutex<HashMap<u64, Result<String, InterfaceError>>>,
    next_fetch: AtomicU64,
    charged_ms: AtomicU64,
}

impl<T: Transport> LatencyTransport<T> {
    /// Wrap `inner` with a fixed `latency_ms` per request.
    pub fn new(inner: T, latency_ms: u64) -> Self {
        Self::with_jitter(inner, latency_ms, 0, 0)
    }

    /// Wrap `inner` with per-request latency drawn uniformly from
    /// `latency_ms ± jitter_ms` (clamped to ≥ 1 ms), deterministically from
    /// `seed`. Heterogeneous fleets give every site its own base latency
    /// and jitter, so the concurrent driver's win is measured against
    /// realistic straggler sites rather than a lock-step wire.
    pub fn with_jitter(inner: T, latency_ms: u64, jitter_ms: u64, seed: u64) -> Self {
        LatencyTransport {
            inner,
            latency_ms,
            jitter_ms,
            jitter_state: AtomicU64::new(seed),
            clocks: ConnClocks::default(),
            by_thread: Mutex::new(HashMap::new()),
            in_flight: Mutex::new(HashMap::new()),
            next_fetch: AtomicU64::new(0),
            charged_ms: AtomicU64::new(0),
        }
    }

    /// The latency to bill for the next request: the fixed base, or a draw
    /// from the jitter band. Atomic counter + splitmix64 keeps draws
    /// deterministic in *aggregate* across threads (each request consumes
    /// exactly one stream position) without a lock.
    fn draw_latency_ms(&self) -> u64 {
        if self.jitter_ms == 0 {
            return self.latency_ms;
        }
        let n = self.jitter_state.fetch_add(1, Ordering::Relaxed);
        let mut z = n.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let span = 2 * self.jitter_ms + 1;
        (self.latency_ms + z % span)
            .saturating_sub(self.jitter_ms)
            .max(1)
    }

    /// Virtual wall-clock consumed so far: the maximum over all
    /// connections' clocks (overlapping requests overlap).
    pub fn virtual_elapsed_ms(&self) -> u64 {
        self.clocks.elapsed()
    }

    /// Total latency charged across all fetches (the old serial
    /// accounting: sum over fetches). Useful as a cost figure; not a wall
    /// clock.
    pub fn total_charged_ms(&self) -> u64 {
        self.charged_ms.load(Ordering::Relaxed)
    }

    /// Number of virtual connections opened (threads and explicit
    /// [`AsyncTransport::connect`] calls).
    pub fn connections(&self) -> usize {
        self.clocks.connections()
    }

    /// Submitted fetches whose results have not yet been taken
    /// (completed or cancelled). A figure that grows without bound means
    /// some caller drops handles instead of cancelling them.
    pub fn pending_fetches(&self) -> usize {
        self.in_flight.lock().len()
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The connection bound to the calling thread (opened on first use).
    fn thread_conn(&self) -> ConnId {
        let tid = std::thread::current().id();
        let mut map = self.by_thread.lock();
        *map.entry(tid).or_insert_with(|| self.clocks.connect())
    }
}

impl<T: Transport> Transport for LatencyTransport<T> {
    fn fetch(&self, path: &str) -> Result<String, InterfaceError> {
        let conn = self.thread_conn();
        let handle = self.submit(conn, path);
        self.complete(handle)
    }

    fn backoff(&self, ms: u64) {
        // Virtual wire: bill the wait on the calling thread's connection
        // clock instead of sleeping.
        let conn = self.thread_conn();
        let now = self.clocks.observed(conn);
        self.clocks.advance_to(conn, now + ms);
    }
}

impl<T: Transport> Clocked for LatencyTransport<T> {
    fn elapsed_ms(&self) -> u64 {
        self.virtual_elapsed_ms()
    }
}

impl<T: Transport> AsyncTransport for LatencyTransport<T> {
    fn connect(&self) -> ConnId {
        self.clocks.connect()
    }

    fn submit(&self, conn: ConnId, path: &str) -> FetchHandle {
        let latency_ms = self.draw_latency_ms();
        let (ready_at, queued_ms) = self.clocks.schedule_split(conn, latency_ms);
        self.charged_ms.fetch_add(latency_ms, Ordering::Relaxed);
        // The inner fetch is CPU work; only the wire is virtual. Executing
        // it eagerly keeps submit non-blocking in virtual time while the
        // result waits for the clock to catch up.
        let result = self.inner.fetch(path);
        let id = self.next_fetch.fetch_add(1, Ordering::Relaxed);
        self.in_flight.lock().insert(id, result);
        FetchHandle {
            conn,
            id,
            ready_at,
            queued_ms,
            service_ms: latency_ms,
        }
    }

    fn poll(&self, handle: FetchHandle) -> FetchPoll {
        if self.clocks.observed(handle.conn) >= handle.ready_at {
            let result = self
                .in_flight
                .lock()
                .remove(&handle.id)
                .expect("pending fetch has a stored result");
            FetchPoll::Ready(result)
        } else {
            FetchPoll::Pending(handle)
        }
    }

    fn complete(&self, handle: FetchHandle) -> Result<String, InterfaceError> {
        self.clocks.advance_to(handle.conn, handle.ready_at);
        self.in_flight
            .lock()
            .remove(&handle.id)
            .expect("pending fetch has a stored result")
    }

    fn cancel(&self, handle: FetchHandle) {
        self.in_flight.lock().remove(&handle.id);
    }

    fn observe_now(&self, conn: ConnId, now_ms: u64) {
        self.clocks.advance_to(conn, now_ms);
    }

    fn virtual_elapsed_ms(&self) -> u64 {
        self.clocks.elapsed()
    }
}

impl<T: Transport + ?Sized> Transport for &T {
    fn fetch(&self, path: &str) -> Result<String, InterfaceError> {
        (**self).fetch(path)
    }
    fn close_idle(&self) -> usize {
        (**self).close_idle()
    }
    fn backoff(&self, ms: u64) {
        (**self).backoff(ms)
    }
}

impl<T: Transport + ?Sized> Transport for Arc<T> {
    fn fetch(&self, path: &str) -> Result<String, InterfaceError> {
        (**self).fetch(path)
    }
    fn close_idle(&self) -> usize {
        (**self).close_idle()
    }
    fn backoff(&self, ms: u64) {
        (**self).backoff(ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_hidden_db::HiddenDb;
    use hdsampler_model::{Attribute, SchemaBuilder, Tuple};

    fn site() -> LocalSite<HiddenDb> {
        let schema = SchemaBuilder::new()
            .attribute(Attribute::categorical("make", ["Toyota", "Honda"]).unwrap())
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(Arc::clone(&schema)).result_limit(1);
        for v in [0u16, 0, 1] {
            b.push(&Tuple::new(&schema, vec![v], vec![]).unwrap())
                .unwrap();
        }
        LocalSite::new(b.finish(), schema)
    }

    #[test]
    fn serves_pages() {
        let site = site();
        let page = site.fetch("/search?make=Honda").unwrap();
        assert!(page.contains("<table class=\"results\">"));
        assert!(page.contains("Honda"));
        let overflowing = site.fetch("/search?make=Toyota").unwrap();
        assert!(overflowing.contains("class=\"overflow\""));
    }

    #[test]
    fn default_form_submission_is_served() {
        // Regression: the site's own rendered form submits `make=` for the
        // "any" default; a browser pressing Search untouched must get the
        // unconstrained results page, not a 400.
        let site = site();
        let page = site.fetch("/search?make=").unwrap();
        assert!(page.contains("<table class=\"results\">"));
        assert!(page.contains("class=\"overflow\""), "root query overflows");
    }

    #[test]
    fn bad_requests_are_schema_mismatches() {
        let site = site();
        let err = site.fetch("/search?bogus=1").unwrap_err();
        assert!(matches!(err, InterfaceError::SchemaMismatch(msg) if msg.contains("400")));
    }

    #[test]
    fn landing_page_serves_the_discoverable_form() {
        let site = site();
        let page = site.fetch("/").unwrap();
        let form = crate::scrape::scrape_form_page(&page).unwrap();
        assert_eq!(&form.schema, site.form().schema().as_ref());
        assert_eq!(form.action, "/search");
        assert_eq!(form.k, 1);
        assert!(!form.supports_count);
    }

    #[test]
    fn requests_off_the_form_action_are_404() {
        let site = site();
        // A valid query string does not rescue a wrong path.
        for path in ["/nosuchpage?make=Honda", "/search/extra", "/Search"] {
            let err = site.fetch(path).unwrap_err();
            assert!(
                matches!(&err, InterfaceError::Transport(msg) if msg.contains("404")),
                "path {path:?} must 404, got {err:?}"
            );
        }
        // The bare action (no query string) is still served.
        assert!(site.fetch("/search").is_ok());
    }

    #[test]
    fn latency_accumulates_virtually() {
        let site = site();
        let t = LatencyTransport::new(&site, 150);
        let before = std::time::Instant::now();
        for _ in 0..10 {
            t.fetch("/search?make=Honda").unwrap();
        }
        // One thread = one connection: sequential fetches serialize.
        assert_eq!(t.virtual_elapsed_ms(), 1_500);
        assert_eq!(t.total_charged_ms(), 1_500);
        assert_eq!(t.connections(), 1);
        assert!(
            before.elapsed().as_millis() < 1_000,
            "must not actually sleep"
        );
    }

    #[test]
    fn overlapping_fetches_cost_max_not_sum() {
        // Regression for the serial accounting bug: 10 concurrent fetches
        // at 150 ms must report ~150 ms of virtual wall clock, not 1500 ms.
        let site = site();
        let t = LatencyTransport::new(&site, 150);
        std::thread::scope(|s| {
            for _ in 0..10 {
                s.spawn(|| t.fetch("/search?make=Honda").unwrap());
            }
        });
        assert_eq!(t.virtual_elapsed_ms(), 150, "overlap bills the max");
        assert_eq!(t.total_charged_ms(), 1_500, "total cost still sums");
        assert_eq!(t.connections(), 10, "one connection per thread");
    }

    #[test]
    fn async_face_pipelines_on_one_connection() {
        let site = site();
        let t = LatencyTransport::new(&site, 100);
        let conn = t.connect();
        let first = t.submit(conn, "/search?make=Honda");
        let second = t.submit(conn, "/search?make=Toyota");
        assert_eq!(first.ready_at_ms(), 100);
        assert_eq!(second.ready_at_ms(), 200, "same connection serializes");

        // Nothing has advanced the clock: both are pending.
        let first = match t.poll(first) {
            FetchPoll::Pending(h) => h,
            FetchPoll::Ready(_) => panic!("clock has not advanced"),
        };
        // Completing the *second* advances the clock past the first.
        let page2 = t.complete(second).unwrap();
        assert!(page2.contains("overflow"));
        match t.poll(first) {
            FetchPoll::Ready(Ok(page1)) => assert!(page1.contains("Honda")),
            other => panic!("first fetch must now be ready, got {other:?}"),
        }
        assert_eq!(t.virtual_elapsed_ms(), 200);
    }

    #[test]
    fn async_connections_overlap() {
        let site = site();
        let t = LatencyTransport::new(&site, 150);
        let handles: Vec<_> = (0..10)
            .map(|_| {
                let conn = t.connect();
                t.submit(conn, "/search?make=Honda")
            })
            .collect();
        for h in handles {
            t.complete(h).unwrap();
        }
        assert_eq!(t.virtual_elapsed_ms(), 150, "ten connections, one RTT");
    }

    #[test]
    fn cancel_releases_buffered_results() {
        let site = site();
        let t = LatencyTransport::new(&site, 100);
        let conn = t.connect();
        let keep = t.submit(conn, "/search?make=Honda");
        let abandon = t.submit(conn, "/search?make=Toyota");
        assert_eq!(t.pending_fetches(), 2);
        t.cancel(abandon);
        assert_eq!(t.pending_fetches(), 1, "cancel frees the buffered page");
        t.complete(keep).unwrap();
        assert_eq!(t.pending_fetches(), 0);
        // Cancelling does not un-send: the connection time stays occupied.
        assert_eq!(t.total_charged_ms(), 200);
    }

    #[test]
    fn jitter_stays_in_band_and_is_deterministic() {
        let run = |seed: u64| {
            let site = site();
            let t = LatencyTransport::with_jitter(&site, 100, 30, seed);
            let mut charges = Vec::new();
            let mut prev_total = 0;
            for _ in 0..50 {
                t.fetch("/search?make=Honda").unwrap();
                let total = t.total_charged_ms();
                charges.push(total - prev_total);
                prev_total = total;
            }
            charges
        };
        let a = run(7);
        assert!(a.iter().all(|&ms| (70..=130).contains(&ms)), "{a:?}");
        assert!(
            a.iter().collect::<std::collections::HashSet<_>>().len() > 5,
            "jitter must actually vary: {a:?}"
        );
        assert_eq!(a, run(7), "same seed, same draws");
        assert_ne!(a, run(8), "different seed, different draws");
        // Zero jitter is the old fixed-latency behaviour.
        let site = site();
        let t = LatencyTransport::with_jitter(&site, 100, 0, 9);
        t.fetch("/search?make=Honda").unwrap();
        assert_eq!(t.total_charged_ms(), 100);
    }

    #[test]
    fn async_face_propagates_errors() {
        let site = site();
        let t = LatencyTransport::new(&site, 50);
        let conn = t.connect();
        let h = t.submit(conn, "/nosuchpage");
        let err = t.complete(h).unwrap_err();
        assert!(matches!(err, InterfaceError::Transport(msg) if msg.contains("404")));
    }
}
