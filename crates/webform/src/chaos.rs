//! Seeded, deterministic fault injection for the wire.
//!
//! Real hidden databases throttle, flake and drift; the sampler's
//! convergence claim is only credible if the stack survives them. This
//! module supplies the client half of the robustness layer (the server
//! half is `Adversary` in `hdsampler-server`): a [`ChaosSpec`] describing
//! a fault schedule that is a *pure function of (seed, request index)* —
//! replaying a run with the same seed replays byte-identical faults — and
//! a [`ChaosTransport`] decorator that injects those faults over any
//! blocking [`Transport`] while billing service time on the same
//! per-connection virtual clocks as
//! [`LatencyTransport`](crate::transport::LatencyTransport).
//!
//! Fault classes (each independently configurable, all off by default):
//!
//! * **throttle** — probabilistic 429-style rate limiting surfaced as the
//!   retryable [`InterfaceError::Throttled`] with the advertised
//!   `retry_after` interval;
//! * **fail** — transient 503s surfaced as retryable transport errors;
//! * **drop** — connection drops/resets surfaced as retryable transport
//!   errors;
//! * **slow-start** — extra service time that decays linearly over the
//!   first `warmup` requests (a cold cache warming up);
//! * **jitter** — per-request service-time noise on top of the base
//!   latency;
//! * **count-noise** — episodes during which the result page's "About N
//!   results" banner is rewritten by a factor in [0.5, 1.5). Harmless to
//!   classification (which reads the overflow notice and the result rows,
//!   never the banner) — exactly the drift a scraper must shrug off.
//!
//! [`RetryPolicy`] is the client's answer: capped exponential backoff that
//! honors a server-advertised `Retry-After`, used by the blocking
//! [`WebFormInterface`](crate::adapter::WebFormInterface) execute path and
//! by the cooperative driver's parked-walker backoff.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::ThreadId;

use hdsampler_model::InterfaceError;
use parking_lot::Mutex;

use crate::aio::{AsyncTransport, ConnClocks, ConnId, FetchHandle, FetchPoll};
use crate::render::format_thousands;
use crate::transport::{Clocked, Transport};

use std::collections::HashMap;

/// Requests per count-noise episode: the banner multiplier holds for a
/// stretch of requests (drifting index snapshots), not per request.
const NOISE_EPISODE_LEN: u64 = 32;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// No fault: the request is served.
    None,
    /// Rate limited: 429 + `Retry-After`.
    Throttle {
        /// Advertised backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// Transient server error (503).
    Transient,
    /// The connection dies mid-request.
    Drop,
}

/// The chaos verdict for one request — a pure function of
/// `(spec.seed, request index)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// The fault injected, if any (at most one per request; priority
    /// drop > throttle > transient).
    pub fault: Fault,
    /// Extra service time beyond the base latency (slow-start + jitter).
    pub extra_delay_ms: u64,
    /// When `Some`, multiply the page's reported count by this factor.
    pub count_factor: Option<f64>,
}

/// A seeded, deterministic fault schedule.
///
/// Parsed from the CLI `--chaos` spec grammar: comma-separated
/// `key=value` pairs, e.g.
/// `seed=7,latency=40,throttle=0.2,retry_after=250,fail=0.1,drop=0.05,slow=400x50,jitter=30,count_noise=0.3`.
/// Every knob defaults to "off"; an empty spec injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Seed for every fault draw. Same seed ⇒ byte-identical schedule.
    pub seed: u64,
    /// Base virtual service time per request (ms).
    pub latency_ms: u64,
    /// Probability a request is rate-limited.
    pub throttle: f64,
    /// `Retry-After` advertised by throttles (ms).
    pub retry_after_ms: u64,
    /// Probability of a transient 503.
    pub fail: f64,
    /// Probability the connection drops mid-request.
    pub drop: f64,
    /// Extra service time at request 0, decaying linearly to zero.
    pub slow_start_ms: u64,
    /// Number of requests the slow-start decay spans.
    pub slow_warmup: u64,
    /// Half-width of per-request uniform service-time jitter (ms).
    pub jitter_ms: u64,
    /// Probability a 32-request episode reports noisy counts.
    pub count_noise: f64,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            seed: 0,
            latency_ms: 0,
            throttle: 0.0,
            retry_after_ms: 250,
            fail: 0.0,
            drop: 0.0,
            slow_start_ms: 0,
            slow_warmup: 0,
            jitter_ms: 0,
            count_noise: 0.0,
        }
    }
}

/// splitmix64's finalizer: a cheap, high-avalanche 64-bit mixer.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// Per-fault-category salts: each category reads its own independent
// stream, so tuning one probability never shifts another's draws.
const SALT_DROP: u64 = 0x5EED_0001;
const SALT_THROTTLE: u64 = 0x5EED_0002;
const SALT_FAIL: u64 = 0x5EED_0003;
const SALT_JITTER: u64 = 0x5EED_0004;
const SALT_NOISE_GATE: u64 = 0x5EED_0005;
const SALT_NOISE_FACTOR: u64 = 0x5EED_0006;

/// A uniform draw in [0, 1) for request/episode `n` in category `salt`.
fn unit(seed: u64, salt: u64, n: u64) -> f64 {
    let z = mix64(mix64(seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ n);
    // 53 high bits → the full f64 mantissa.
    (z >> 11) as f64 / (1u64 << 53) as f64
}

impl ChaosSpec {
    /// Parse the CLI spec grammar (see the type docs). Returns a
    /// human-readable error naming the offending pair.
    pub fn parse(spec: &str) -> Result<ChaosSpec, String> {
        let mut out = ChaosSpec::default();
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("chaos spec: `{pair}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let bad = |what: &str| format!("chaos spec: `{key}={value}`: {what}");
            let prob = |value: &str| -> Result<f64, String> {
                let p: f64 = value
                    .parse()
                    .map_err(|_| bad("expected a probability in [0, 1]"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(bad("probability out of [0, 1]"));
                }
                Ok(p)
            };
            let ms = |value: &str| -> Result<u64, String> {
                value.parse().map_err(|_| bad("expected milliseconds"))
            };
            match key {
                "seed" => out.seed = value.parse().map_err(|_| bad("expected an integer"))?,
                "latency" => out.latency_ms = ms(value)?,
                "throttle" => out.throttle = prob(value)?,
                "retry_after" => out.retry_after_ms = ms(value)?,
                "fail" => out.fail = prob(value)?,
                "drop" => out.drop = prob(value)?,
                "slow" => {
                    let (extra, warmup) = value
                        .split_once('x')
                        .ok_or_else(|| bad("expected <extra_ms>x<warmup_requests>"))?;
                    out.slow_start_ms = ms(extra)?;
                    out.slow_warmup = warmup
                        .parse()
                        .map_err(|_| bad("expected a request count after `x`"))?;
                }
                "jitter" => out.jitter_ms = ms(value)?,
                "count_noise" => out.count_noise = prob(value)?,
                _ => return Err(format!("chaos spec: unknown key `{key}`")),
            }
        }
        Ok(out)
    }

    /// The chaos verdict for the `n`-th request (0-based, counted across
    /// all connections). Pure: same `(seed, n)` ⇒ same [`Decision`].
    pub fn decide(&self, n: u64) -> Decision {
        let fault = if self.drop > 0.0 && unit(self.seed, SALT_DROP, n) < self.drop {
            Fault::Drop
        } else if self.throttle > 0.0 && unit(self.seed, SALT_THROTTLE, n) < self.throttle {
            Fault::Throttle {
                retry_after_ms: self.retry_after_ms,
            }
        } else if self.fail > 0.0 && unit(self.seed, SALT_FAIL, n) < self.fail {
            Fault::Transient
        } else {
            Fault::None
        };
        let slow = if self.slow_warmup > 0 && n < self.slow_warmup {
            // Linear decay: full extra at request 0, zero after warmup.
            self.slow_start_ms * (self.slow_warmup - n) / self.slow_warmup
        } else {
            0
        };
        let jitter = if self.jitter_ms > 0 {
            (unit(self.seed, SALT_JITTER, n) * (self.jitter_ms + 1) as f64) as u64
        } else {
            0
        };
        let episode = n / NOISE_EPISODE_LEN;
        let count_factor = if self.count_noise > 0.0
            && unit(self.seed, SALT_NOISE_GATE, episode) < self.count_noise
        {
            Some(0.5 + unit(self.seed, SALT_NOISE_FACTOR, episode))
        } else {
            None
        };
        Decision {
            fault,
            extra_delay_ms: slow + jitter,
            count_factor,
        }
    }

    /// Whether any fault class is enabled at all.
    pub fn is_quiet(&self) -> bool {
        self.throttle == 0.0
            && self.fail == 0.0
            && self.drop == 0.0
            && self.slow_start_ms == 0
            && self.jitter_ms == 0
            && self.count_noise == 0.0
    }
}

/// Capped exponential backoff with `Retry-After` override.
///
/// Attempt `a` (0-based) waits `base_backoff_ms << a`, capped at
/// `max_backoff_ms` — unless the server advertised its own interval, which
/// wins (still capped). `max_retries` bounds attempts *beyond* the first:
/// a policy of 3 allows 4 total attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry (ms); doubles per attempt.
    pub base_backoff_ms: u64,
    /// Ceiling on any single backoff interval (ms).
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 25,
            max_backoff_ms: 2_000,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The wait before retry number `attempt` (0-based), honoring a
    /// server-advertised interval when present.
    pub fn backoff_ms(&self, attempt: u32, retry_after_ms: Option<u64>) -> u64 {
        let exponential = self.base_backoff_ms.saturating_mul(1u64 << attempt.min(20));
        retry_after_ms
            .unwrap_or(exponential)
            .min(self.max_backoff_ms)
    }
}

/// Running totals of faults a [`ChaosTransport`] has injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosCounters {
    /// Requests rate-limited.
    pub throttles: u64,
    /// Requests failed with a transient 503.
    pub transient_fails: u64,
    /// Requests whose connection dropped.
    pub drops: u64,
    /// Pages whose count banner was rewritten.
    pub noisy_pages: u64,
    /// Total extra service time injected (slow-start + jitter), ms.
    pub extra_delay_ms: u64,
}

/// Multiply a page's "About N results" banner by `factor`, leaving the
/// rest of the page untouched. Pages without a banner pass through
/// unchanged; the flag reports whether a rewrite happened. Shared with the
/// server-side `Adversary`, which injects the same drift over HTTP.
pub fn rewrite_count_banner(page: &str, factor: f64) -> (String, bool) {
    const PREFIX: &str = "<div class=\"count\">About ";
    const SUFFIX: &str = " results</div>";
    let Some(start) = page.find(PREFIX) else {
        return (page.to_string(), false);
    };
    let digits_at = start + PREFIX.len();
    let Some(end) = page[digits_at..].find(SUFFIX) else {
        return (page.to_string(), false);
    };
    let digits = &page[digits_at..digits_at + end];
    let Ok(count) = digits.replace(',', "").parse::<u64>() else {
        return (page.to_string(), false);
    };
    let noisy = (count as f64 * factor).round().max(0.0) as u64;
    let mut out = String::with_capacity(page.len());
    out.push_str(&page[..digits_at]);
    out.push_str(&format_thousands(noisy));
    out.push_str(&page[digits_at + end..]);
    (out, true)
}

/// Fault-injecting decorator over any blocking [`Transport`].
///
/// The wire-free mirror of the server-side `Adversary`: requests are
/// billed on per-connection virtual clocks exactly like
/// [`LatencyTransport`](crate::transport::LatencyTransport) (base latency
/// plus slow-start plus jitter, elapsed = max over connections), and each
/// request consumes one position of the seeded fault schedule. Faulted
/// requests never reach the inner transport — a dropped or throttled
/// request costs wire time and an error, not a backend query, so the
/// site's query budget is only charged for requests actually served.
///
/// Both transport faces are implemented: blocking [`Transport::fetch`]
/// (one connection per OS thread) and the poll/completion
/// [`AsyncTransport`] for the cooperative driver.
#[derive(Debug)]
pub struct ChaosTransport<T> {
    inner: T,
    spec: ChaosSpec,
    /// Global request index: position in the fault schedule.
    requests: AtomicU64,
    clocks: ConnClocks,
    by_thread: Mutex<HashMap<ThreadId, ConnId>>,
    in_flight: Mutex<HashMap<u64, Result<String, InterfaceError>>>,
    next_fetch: AtomicU64,
    throttles: AtomicU64,
    transient_fails: AtomicU64,
    drops: AtomicU64,
    noisy_pages: AtomicU64,
    extra_delay_ms: AtomicU64,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wrap `inner` with the fault schedule `spec`.
    pub fn new(inner: T, spec: ChaosSpec) -> Self {
        ChaosTransport {
            inner,
            spec,
            requests: AtomicU64::new(0),
            clocks: ConnClocks::default(),
            by_thread: Mutex::new(HashMap::new()),
            in_flight: Mutex::new(HashMap::new()),
            next_fetch: AtomicU64::new(0),
            throttles: AtomicU64::new(0),
            transient_fails: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            noisy_pages: AtomicU64::new(0),
            extra_delay_ms: AtomicU64::new(0),
        }
    }

    /// The fault schedule.
    pub fn spec(&self) -> &ChaosSpec {
        &self.spec
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Fault totals so far.
    pub fn counters(&self) -> ChaosCounters {
        ChaosCounters {
            throttles: self.throttles.load(Ordering::Relaxed),
            transient_fails: self.transient_fails.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
            noisy_pages: self.noisy_pages.load(Ordering::Relaxed),
            extra_delay_ms: self.extra_delay_ms.load(Ordering::Relaxed),
        }
    }

    /// Virtual wall clock so far (max over connections).
    pub fn virtual_elapsed_ms(&self) -> u64 {
        self.clocks.elapsed()
    }

    /// Number of virtual connections opened.
    pub fn connections(&self) -> usize {
        self.clocks.connections()
    }

    fn thread_conn(&self) -> ConnId {
        let tid = std::thread::current().id();
        let mut map = self.by_thread.lock();
        *map.entry(tid).or_insert_with(|| self.clocks.connect())
    }

    /// Serve (or fault) one request and record its chaos accounting.
    fn serve(&self, path: &str) -> (Result<String, InterfaceError>, u64) {
        let n = self.requests.fetch_add(1, Ordering::Relaxed);
        let d = self.spec.decide(n);
        if d.extra_delay_ms > 0 {
            self.extra_delay_ms
                .fetch_add(d.extra_delay_ms, Ordering::Relaxed);
        }
        let result = match d.fault {
            Fault::Drop => {
                self.drops.fetch_add(1, Ordering::Relaxed);
                Err(InterfaceError::Transport(
                    "connection reset by peer (injected)".into(),
                ))
            }
            Fault::Throttle { retry_after_ms } => {
                self.throttles.fetch_add(1, Ordering::Relaxed);
                Err(InterfaceError::Throttled { retry_after_ms })
            }
            Fault::Transient => {
                self.transient_fails.fetch_add(1, Ordering::Relaxed);
                Err(InterfaceError::Transport(
                    "503 service unavailable (injected)".into(),
                ))
            }
            Fault::None => self.inner.fetch(path).map(|page| match d.count_factor {
                Some(factor) => {
                    let (page, rewritten) = rewrite_count_banner(&page, factor);
                    if rewritten {
                        self.noisy_pages.fetch_add(1, Ordering::Relaxed);
                    }
                    page
                }
                None => page,
            }),
        };
        (result, self.spec.latency_ms + d.extra_delay_ms)
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn fetch(&self, path: &str) -> Result<String, InterfaceError> {
        let conn = self.thread_conn();
        let handle = AsyncTransport::submit(self, conn, path);
        AsyncTransport::complete(self, handle)
    }

    fn backoff(&self, ms: u64) {
        // The wire is virtual: waiting out a backoff advances the calling
        // thread's connection clock instead of sleeping.
        let conn = self.thread_conn();
        let now = self.clocks.observed(conn);
        self.clocks.advance_to(conn, now + ms);
    }
}

impl<T: Transport> Clocked for ChaosTransport<T> {
    fn elapsed_ms(&self) -> u64 {
        self.virtual_elapsed_ms()
    }
}

impl<T: Transport> AsyncTransport for ChaosTransport<T> {
    fn connect(&self) -> ConnId {
        self.clocks.connect()
    }

    fn submit(&self, conn: ConnId, path: &str) -> FetchHandle {
        let (result, service_ms) = self.serve(path);
        let service_ms = service_ms.max(1);
        let (ready_at, queued_ms) = self.clocks.schedule_split(conn, service_ms);
        let id = self.next_fetch.fetch_add(1, Ordering::Relaxed);
        self.in_flight.lock().insert(id, result);
        FetchHandle {
            conn,
            id,
            ready_at,
            queued_ms,
            service_ms,
        }
    }

    fn poll(&self, handle: FetchHandle) -> FetchPoll {
        if self.clocks.observed(handle.conn) >= handle.ready_at {
            let result = self
                .in_flight
                .lock()
                .remove(&handle.id)
                .expect("pending fetch has a stored result");
            FetchPoll::Ready(result)
        } else {
            FetchPoll::Pending(handle)
        }
    }

    fn complete(&self, handle: FetchHandle) -> Result<String, InterfaceError> {
        self.clocks.advance_to(handle.conn, handle.ready_at);
        self.in_flight
            .lock()
            .remove(&handle.id)
            .expect("pending fetch has a stored result")
    }

    fn cancel(&self, handle: FetchHandle) {
        self.in_flight.lock().remove(&handle.id);
    }

    fn observe_now(&self, conn: ConnId, now_ms: u64) {
        self.clocks.advance_to(conn, now_ms);
    }

    fn virtual_elapsed_ms(&self) -> u64 {
        self.clocks.elapsed()
    }
}

impl<T> ChaosTransport<Arc<T>> {
    /// Share the inner transport (e.g. to read backend counters while the
    /// chaos wrapper is owned by an interface).
    pub fn inner_arc(&self) -> Arc<T> {
        Arc::clone(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LocalSite;
    use hdsampler_hidden_db::{CountMode, HiddenDb};
    use hdsampler_model::{Attribute, FormInterface, SchemaBuilder, Tuple};

    fn site(count_mode: CountMode) -> LocalSite<HiddenDb> {
        let schema = SchemaBuilder::new()
            .attribute(Attribute::categorical("make", ["Toyota", "Honda"]).unwrap())
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(Arc::clone(&schema))
            .result_limit(1)
            .count_mode(count_mode);
        for v in [0u16, 0, 1] {
            b.push(&Tuple::new(&schema, vec![v], vec![]).unwrap())
                .unwrap();
        }
        LocalSite::new(b.finish(), schema)
    }

    #[test]
    fn spec_grammar_round_trips() {
        let spec = ChaosSpec::parse(
            "seed=7,latency=40,throttle=0.2,retry_after=250,fail=0.1,drop=0.05,\
             slow=400x50,jitter=30,count_noise=0.3",
        )
        .unwrap();
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.latency_ms, 40);
        assert_eq!(spec.throttle, 0.2);
        assert_eq!(spec.retry_after_ms, 250);
        assert_eq!(spec.fail, 0.1);
        assert_eq!(spec.drop, 0.05);
        assert_eq!(spec.slow_start_ms, 400);
        assert_eq!(spec.slow_warmup, 50);
        assert_eq!(spec.jitter_ms, 30);
        assert_eq!(spec.count_noise, 0.3);
        assert!(!spec.is_quiet());

        assert_eq!(ChaosSpec::parse("").unwrap(), ChaosSpec::default());
        assert!(ChaosSpec::default().is_quiet());
        assert!(ChaosSpec::parse("throttle=1.5").is_err());
        assert!(ChaosSpec::parse("bogus=1").is_err());
        assert!(ChaosSpec::parse("slow=400").is_err());
        assert!(ChaosSpec::parse("throttle").is_err());
    }

    #[test]
    fn fault_schedule_hits_every_class() {
        let spec = ChaosSpec::parse(
            "seed=11,throttle=0.15,fail=0.1,drop=0.05,slow=200x20,jitter=10,count_noise=0.5",
        )
        .unwrap();
        let mut seen = (false, false, false, false);
        let mut slow = false;
        for n in 0..1_000 {
            let d = spec.decide(n);
            match d.fault {
                Fault::None => seen.0 = true,
                Fault::Throttle { retry_after_ms } => {
                    assert_eq!(retry_after_ms, spec.retry_after_ms);
                    seen.1 = true;
                }
                Fault::Transient => seen.2 = true,
                Fault::Drop => seen.3 = true,
            }
            if d.extra_delay_ms > 0 {
                slow = true;
            }
        }
        assert_eq!(seen, (true, true, true, true), "every fault class fires");
        assert!(slow, "slow-start/jitter delay fires");
        assert!(
            spec.decide(0).extra_delay_ms >= 190,
            "full slow-start at n=0"
        );
        assert!(
            (0..1_000).any(|n| spec.decide(n).count_factor.is_some()),
            "noisy episodes occur"
        );
        assert!(
            (0..1_000).any(|n| spec.decide(n).count_factor.is_none()),
            "clean episodes occur"
        );
    }

    #[test]
    fn retry_policy_backoff_schedule() {
        let p = RetryPolicy {
            max_retries: 5,
            base_backoff_ms: 25,
            max_backoff_ms: 150,
        };
        assert_eq!(p.backoff_ms(0, None), 25);
        assert_eq!(p.backoff_ms(1, None), 50);
        assert_eq!(p.backoff_ms(2, None), 100);
        assert_eq!(p.backoff_ms(3, None), 150, "capped");
        assert_eq!(p.backoff_ms(0, Some(99)), 99, "Retry-After wins");
        assert_eq!(
            p.backoff_ms(0, Some(9_999)),
            150,
            "Retry-After still capped"
        );
        assert_eq!(RetryPolicy::none().max_retries, 0);
    }

    #[test]
    fn count_noise_rewrites_only_the_banner() {
        let site = site(CountMode::Exact);
        let clean = site.fetch("/search?make=Toyota").unwrap();
        assert!(clean.contains("About 2 results"));
        let (noisy, rewritten) = rewrite_count_banner(&clean, 1.5);
        assert!(rewritten);
        assert!(noisy.contains("About 3 results"), "{noisy}");
        assert_eq!(
            noisy.replace("About 3", "About 2"),
            clean,
            "only the banner digits change"
        );
        // Pages without a banner pass through untouched.
        let bare = site.fetch("/search?make=Honda").unwrap();
        let (same, rewritten) = rewrite_count_banner(&bare.replace("class=\"count\"", "x"), 1.5);
        assert!(!rewritten);
        assert_eq!(same, bare.replace("class=\"count\"", "x"));
        // Large counts keep their thousands separators.
        let page = "<div class=\"count\">About 12,000 results</div>";
        let (doubled, _) = rewrite_count_banner(page, 2.0);
        assert_eq!(doubled, "<div class=\"count\">About 24,000 results</div>");
    }

    #[test]
    fn chaos_transport_injects_and_bills_deterministically() {
        let run = |seed: u64| {
            let t = ChaosTransport::new(
                site(CountMode::Exact),
                ChaosSpec {
                    seed,
                    latency_ms: 50,
                    throttle: 0.2,
                    retry_after_ms: 250,
                    fail: 0.1,
                    drop: 0.1,
                    slow_start_ms: 100,
                    slow_warmup: 10,
                    jitter_ms: 20,
                    count_noise: 0.5,
                },
            );
            let mut outcomes = Vec::new();
            for _ in 0..200 {
                outcomes.push(format!("{:?}", t.fetch("/search?make=Toyota")));
            }
            (outcomes, t.counters(), t.virtual_elapsed_ms())
        };
        let (a, counters, elapsed) = run(3);
        assert!(counters.throttles > 0, "{counters:?}");
        assert!(counters.transient_fails > 0, "{counters:?}");
        assert!(counters.drops > 0, "{counters:?}");
        assert!(counters.noisy_pages > 0, "{counters:?}");
        assert!(counters.extra_delay_ms > 0, "{counters:?}");
        assert!(
            elapsed >= 200 * 50,
            "single connection serializes: {elapsed}"
        );
        let (b, counters_b, elapsed_b) = run(3);
        assert_eq!(a, b, "same seed, same outcomes");
        assert_eq!(counters, counters_b);
        assert_eq!(elapsed, elapsed_b);
        let (c, ..) = run(4);
        assert_ne!(a, c, "different seed, different outcomes");
    }

    #[test]
    fn throttle_error_carries_retry_after() {
        let t = ChaosTransport::new(
            site(CountMode::Absent),
            ChaosSpec {
                throttle: 1.0,
                retry_after_ms: 777,
                ..ChaosSpec::default()
            },
        );
        let err = t.fetch("/search?make=Honda").unwrap_err();
        assert_eq!(
            err,
            InterfaceError::Throttled {
                retry_after_ms: 777
            }
        );
        assert!(err.is_transient());
    }

    #[test]
    fn faulted_requests_never_reach_the_backend() {
        let t = ChaosTransport::new(
            site(CountMode::Absent),
            ChaosSpec {
                drop: 1.0,
                ..ChaosSpec::default()
            },
        );
        for _ in 0..10 {
            assert!(t.fetch("/search?make=Honda").is_err());
        }
        assert_eq!(
            t.inner().backend().queries_issued(),
            0,
            "dropped requests must not charge the budget"
        );
    }

    #[test]
    fn virtual_backoff_advances_the_clock_without_sleeping() {
        let t = ChaosTransport::new(site(CountMode::Absent), ChaosSpec::default());
        let before = std::time::Instant::now();
        t.fetch("/search?make=Honda").unwrap();
        Transport::backoff(&t, 5_000);
        assert!(before.elapsed().as_millis() < 1_000, "must not sleep");
        assert!(t.virtual_elapsed_ms() >= 5_000, "backoff is billed");
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(32))]

        /// Satellite: any seeded fault schedule is replay-deterministic —
        /// the same seed yields a byte-identical fault sequence, and the
        /// schedule actually depends on the seed.
        #[test]
        fn fault_schedule_is_replay_deterministic(seed in 0u64..1_000_000, len in 1u64..512) {
            let spec = ChaosSpec {
                seed,
                throttle: 0.2,
                fail: 0.15,
                drop: 0.1,
                slow_start_ms: 300,
                slow_warmup: 40,
                jitter_ms: 25,
                count_noise: 0.4,
                ..ChaosSpec::default()
            };
            let render = |spec: &ChaosSpec| -> Vec<u8> {
                let mut bytes = Vec::new();
                for n in 0..len {
                    bytes.extend_from_slice(format!("{:?};", spec.decide(n)).as_bytes());
                }
                bytes
            };
            let first = render(&spec);
            proptest::prop_assert_eq!(&first, &render(&spec), "replay must be byte-identical");
            let reseeded = ChaosSpec { seed: seed ^ 0xDEAD_BEEF, ..spec };
            if len >= 64 {
                proptest::prop_assert_ne!(&first, &render(&reseeded), "seed must matter");
            }
        }
    }
}
