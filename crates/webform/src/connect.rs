//! Connecting a [`SiteLocator`] to a ready-to-walk [`SiteTask`].
//!
//! A locator only *names* a site. The [`ConnectorRegistry`] turns the name
//! into a running stack: it builds (or dials, or loads) the wire, fetches
//! the site's landing page `/` through it, scrapes the page into a typed
//! schema plus the advertised `k` and count support
//! ([`scrape_form_page`](crate::scrape::scrape_form_page)), and assembles a
//! [`WebFormInterface`] configured entirely from what the site *said* —
//! zero schema flags, for every scheme:
//!
//! * `local:` — resolves the dataset in the workload registry, builds the
//!   [`HiddenDb`](hdsampler_hidden_db::HiddenDb) from the locator's
//!   parameters, and serves it in-process behind a virtual-latency wire;
//! * `http://` — dials the address with
//!   [`HttpTransport`](crate::HttpTransport);
//! * `replay:` — loads the JSONL tape into a [`ReplaySite`]; since the
//!   tape contains the recorded discovery page, replayed discovery is
//!   byte-identical to the original.
//!
//! Every connector returns the same concrete type, `SiteTask<BoxTransport>`
//! — which is what lets one [`RunPlan`](crate::RunPlan) drive a
//! *heterogeneous* fleet (simulated + live + replayed legs, each with its
//! own schema) through a single `run` call. Passing
//! [`ConnectOptions::record`] interposes a [`RecordingTransport`] under
//! the scraper, so the whole session — discovery included — lands on a
//! tape a later `replay:` locator can serve.

use std::fmt;
use std::sync::Arc;

use hdsampler_core::{L2Log, SiteFingerprint};
use hdsampler_hidden_db::CountMode;
use hdsampler_model::{FormInterface as _, InterfaceError};
use hdsampler_workload::{DbConfig, WorkloadSpec};

use crate::adapter::WebFormInterface;
use crate::aio::{AsyncTransport, ConnId, FetchHandle, FetchPoll};
use crate::chaos::RetryPolicy;
use crate::driver::SiteTask;
use crate::form::WebForm;
use crate::httpc::HttpTransport;
use crate::locator::SiteLocator;
use crate::replay::{RecordingTransport, ReplaySite};
use crate::scrape::scrape_form_page;
use crate::transport::{Clocked, LatencyTransport, LocalSite, Transport};

/// The full wire contract a connected site rides on: both transport faces
/// plus a clock, behind one vtable.
trait DynTransport: Transport + AsyncTransport + Clocked + fmt::Debug {}

impl<T: Transport + AsyncTransport + Clocked + fmt::Debug> DynTransport for T {}

/// A type-erased wire. Whatever the connector built — virtual-latency
/// in-process site, live TCP, replayed tape, with or without a recorder —
/// this is the one concrete transport type a heterogeneous fleet shares.
pub struct BoxTransport(Box<dyn DynTransport>);

impl BoxTransport {
    /// Erase `transport`.
    pub fn new<T: Transport + AsyncTransport + Clocked + fmt::Debug + 'static>(
        transport: T,
    ) -> Self {
        BoxTransport(Box::new(transport))
    }
}

impl fmt::Debug for BoxTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BoxTransport({:?})", self.0)
    }
}

impl Transport for BoxTransport {
    fn fetch(&self, path: &str) -> Result<String, InterfaceError> {
        self.0.fetch(path)
    }
    fn close_idle(&self) -> usize {
        self.0.close_idle()
    }
    fn backoff(&self, ms: u64) {
        self.0.backoff(ms)
    }
}

impl AsyncTransport for BoxTransport {
    fn connect(&self) -> ConnId {
        self.0.connect()
    }
    fn submit(&self, conn: ConnId, path: &str) -> FetchHandle {
        self.0.submit(conn, path)
    }
    fn poll(&self, handle: FetchHandle) -> FetchPoll {
        self.0.poll(handle)
    }
    fn complete(&self, handle: FetchHandle) -> Result<String, InterfaceError> {
        self.0.complete(handle)
    }
    fn cancel(&self, handle: FetchHandle) {
        self.0.cancel(handle)
    }
    fn observe_now(&self, conn: ConnId, now_ms: u64) {
        self.0.observe_now(conn, now_ms)
    }
    fn virtual_elapsed_ms(&self) -> u64 {
        self.0.virtual_elapsed_ms()
    }
    fn wire_is_virtual(&self) -> bool {
        self.0.wire_is_virtual()
    }
    fn wait_ready(&self, timeout_ms: u64) -> Option<usize> {
        self.0.wait_ready(timeout_ms)
    }
}

impl Clocked for BoxTransport {
    fn elapsed_ms(&self) -> u64 {
        self.0.elapsed_ms()
    }
}

/// Options shared by every connector.
#[derive(Debug, Clone, Default)]
pub struct ConnectOptions {
    /// Record every exchange (discovery page included) to this JSONL tape,
    /// ready for a later `replay:` locator.
    pub record: Option<String>,
    /// Root directory for the persistent history cache (L2). Each site
    /// files its facts under `<root>/<fingerprint>/`, so many sites — and
    /// many *versions* of one site — share a root without mixing facts.
    /// A `local:` locator's `l2=` parameter overrides this per site.
    pub l2: Option<String>,
}

/// How a scheme connects: locator + options in, ready task out.
pub type ConnectFn = fn(&SiteLocator, &ConnectOptions) -> Result<SiteTask<BoxTransport>, String>;

/// One registered scheme.
#[derive(Clone, Copy)]
pub struct Connector {
    /// The locator scheme this connector serves (`local`, `http`,
    /// `replay`).
    pub scheme: &'static str,
    /// One-line description for listings.
    pub summary: &'static str,
    connect: ConnectFn,
}

/// The scheme → connector table.
pub struct ConnectorRegistry {
    connectors: Vec<Connector>,
}

impl ConnectorRegistry {
    /// The standard registry: `local:`, `http://` and `replay:`.
    pub fn standard() -> Self {
        ConnectorRegistry {
            connectors: vec![
                Connector {
                    scheme: "local",
                    summary: "in-process simulated site over a named dataset",
                    connect: connect_local,
                },
                Connector {
                    scheme: "http",
                    summary: "live HTTP front door",
                    connect: connect_http,
                },
                Connector {
                    scheme: "replay",
                    summary: "recorded tape served offline",
                    connect: connect_replay,
                },
            ],
        }
    }

    /// The registered schemes, in listing order.
    pub fn schemes(&self) -> Vec<&'static str> {
        self.connectors.iter().map(|c| c.scheme).collect()
    }

    /// Resolve `locator` to a ready [`SiteTask`]: build/dial/load the
    /// wire, discover the schema off `/`, assemble the scraper.
    ///
    /// # Errors
    /// Anything the connector hit: unknown dataset, bad parameter,
    /// unreachable host, missing tape, unscrapable landing page.
    pub fn connect(
        &self,
        locator: &SiteLocator,
        opts: &ConnectOptions,
    ) -> Result<SiteTask<BoxTransport>, String> {
        let scheme = locator.scheme();
        let connector = self
            .connectors
            .iter()
            .find(|c| c.scheme == scheme)
            .ok_or_else(|| format!("no connector registered for scheme `{scheme}:`"))?;
        (connector.connect)(locator, opts)
    }
}

/// Erase a built wire, interposing a recorder when asked.
fn erase<T: Transport + AsyncTransport + Clocked + fmt::Debug + 'static>(
    transport: T,
    opts: &ConnectOptions,
) -> Result<BoxTransport, String> {
    Ok(match &opts.record {
        Some(tape) => BoxTransport::new(RecordingTransport::create(transport, tape)?),
        None => BoxTransport::new(transport),
    })
}

/// Scrape-based schema discovery: fetch `/`, then assemble a scraper
/// configured entirely from the page — schema, action, k, count support.
/// The fetch rides out transient faults (throttles, 503s, severed
/// connections) the way the sampler's own fetches do, so one unlucky
/// request against an adversarial site does not kill the connect.
fn discover(
    transport: BoxTransport,
    who: &str,
    opts: &ConnectOptions,
) -> Result<SiteTask<BoxTransport>, String> {
    let retry = RetryPolicy {
        max_retries: 8,
        ..RetryPolicy::default()
    };
    let mut attempt = 0u32;
    let page = loop {
        match transport.fetch("/") {
            Ok(page) => break page,
            Err(e) if e.is_transient() && attempt < retry.max_retries => {
                transport.backoff(retry.backoff_ms(attempt, e.retry_after_ms()));
                attempt += 1;
            }
            Err(e) => return Err(format!("{who}: schema discovery failed fetching `/`: {e}")),
        }
    };
    let found = scrape_form_page(&page)
        .map_err(|e| format!("{who}: landing page is not a discoverable form: {e}"))?;
    let advertised = found
        .fingerprint
        .as_deref()
        .and_then(SiteFingerprint::parse);
    let form = WebForm::new(Arc::new(found.schema), found.action);
    let mut task = SiteTask::new(
        who,
        WebFormInterface::with_form(transport, form, found.k, found.supports_count),
    );
    if let Some(root) = &opts.l2 {
        // Prefer the fingerprint the site advertised — it folds in the
        // dataset digest only the server side can see. Pages predating the
        // attribute (old tapes, foreign sites) fall back to a client-side
        // derivation over what discovery scraped.
        let fp = advertised.unwrap_or_else(|| {
            SiteFingerprint::derive(
                task.iface.schema(),
                task.iface.result_limit(),
                task.iface.supports_count(),
                None,
            )
        });
        let log = L2Log::open(std::path::Path::new(root), fp)
            .map_err(|e| format!("{who}: cannot open L2 history under `{root}`: {e}"))?;
        task = task.with_l2(Arc::new(log));
    }
    Ok(task)
}

/// `local:` parameters, with the same defaults the CLI's flags have.
struct LocalParams {
    n: usize,
    k: usize,
    seed: u64,
    counts: CountMode,
    budget: Option<u64>,
    latency: u64,
    jitter: u64,
    l2: Option<String>,
}

fn parse_local_params(params: &[(String, String)], who: &str) -> Result<LocalParams, String> {
    let mut out = LocalParams {
        n: 8_000,
        k: 250,
        seed: 2_009,
        counts: CountMode::Absent,
        budget: None,
        latency: 1,
        jitter: 0,
        l2: None,
    };
    for (key, value) in params {
        let parse_num = |what: &str| -> Result<u64, String> {
            value
                .parse::<u64>()
                .map_err(|_| format!("{who}: parameter `{key}={value}` is not a valid {what}"))
        };
        match key.as_str() {
            "n" => out.n = parse_num("tuple count")? as usize,
            "k" => out.k = parse_num("top-k limit")? as usize,
            "seed" => out.seed = parse_num("seed")?,
            "budget" => out.budget = Some(parse_num("query budget")?),
            "latency" => out.latency = parse_num("latency (ms)")?,
            "jitter" => out.jitter = parse_num("jitter (ms)")?,
            "l2" => out.l2 = Some(value.clone()),
            "counts" => {
                out.counts = match value.as_str() {
                    "absent" => CountMode::Absent,
                    "exact" => CountMode::Exact,
                    "noisy" => CountMode::Noisy {
                        sigma: 0.15,
                        seed: out.seed,
                    },
                    other => {
                        return Err(format!(
                            "{who}: counts=`{other}` (valid: absent, exact, noisy)"
                        ))
                    }
                }
            }
            other => {
                return Err(format!(
                    "{who}: unknown parameter `{other}` \
                     (valid: n, k, seed, counts, budget, latency, jitter, l2)"
                ))
            }
        }
    }
    // `counts=noisy` before `seed=…` must still use the final seed.
    if let CountMode::Noisy { sigma, .. } = out.counts {
        out.counts = CountMode::Noisy {
            sigma,
            seed: out.seed,
        };
    }
    Ok(out)
}

fn connect_local(
    locator: &SiteLocator,
    opts: &ConnectOptions,
) -> Result<SiteTask<BoxTransport>, String> {
    let SiteLocator::Local { dataset, params } = locator else {
        return Err(format!(
            "local connector got a {} locator",
            locator.scheme()
        ));
    };
    let who = locator.to_string();
    let p = parse_local_params(params, &who)?;
    let def = hdsampler_workload::resolve_dataset(dataset).map_err(|e| format!("{who}: {e}"))?;
    let mut db_cfg = DbConfig {
        count_mode: p.counts,
        ..DbConfig::no_counts().with_k(p.k)
    };
    if let Some(b) = p.budget {
        db_cfg = db_cfg.with_budget(b);
    }
    let db = WorkloadSpec {
        data: def.data_spec(p.n, p.seed),
        db: db_cfg,
        seed: p.seed,
    }
    .build();
    let schema = Arc::new(db.schema().clone());
    let site = LocalSite::new(db, schema);
    let wire = LatencyTransport::with_jitter(site, p.latency.max(1), p.jitter, p.seed);
    // A locator-level `l2=` parameter overrides the shared option, so one
    // multi-site run can warm-start only the legs that want it.
    let opts = &match p.l2 {
        Some(root) => ConnectOptions {
            l2: Some(root),
            ..opts.clone()
        },
        None => opts.clone(),
    };
    discover(erase(wire, opts)?, &who, opts)
}

fn connect_http(
    locator: &SiteLocator,
    opts: &ConnectOptions,
) -> Result<SiteTask<BoxTransport>, String> {
    let SiteLocator::Http { addr } = locator else {
        return Err(format!("http connector got a {} locator", locator.scheme()));
    };
    let who = locator.to_string();
    discover(erase(HttpTransport::new(addr), opts)?, &who, opts)
}

fn connect_replay(
    locator: &SiteLocator,
    opts: &ConnectOptions,
) -> Result<SiteTask<BoxTransport>, String> {
    let SiteLocator::Replay { path } = locator else {
        return Err(format!(
            "replay connector got a {} locator",
            locator.scheme()
        ));
    };
    let who = locator.to_string();
    let site = ReplaySite::load(path)?;
    // A tape is a blocking-face site; the 1 ms virtual wire grants it the
    // async face and a clock, same as an in-process site.
    let wire = LatencyTransport::new(site, 1);
    discover(erase(wire, opts)?, &who, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connect(s: &str) -> Result<SiteTask<BoxTransport>, String> {
        let loc = SiteLocator::parse(s)?;
        ConnectorRegistry::standard().connect(&loc, &ConnectOptions::default())
    }

    #[test]
    fn local_connector_discovers_everything_from_the_page() {
        let task = connect("local:boolean?n=200&k=20&seed=3&counts=exact").unwrap();
        assert_eq!(task.name, "local:boolean?n=200&k=20&seed=3&counts=exact");
        assert_eq!(task.iface.schema().arity(), 14, "m=14 Boolean dataset");
        assert_eq!(task.iface.result_limit(), 20, "k scraped off the page");
        assert!(
            task.iface.supports_count(),
            "count mode scraped off the page"
        );
        // The stack works end to end: the unconstrained query overflows.
        let resp = task
            .iface
            .execute(&hdsampler_model::ConjunctiveQuery::empty())
            .unwrap();
        assert_eq!(resp.rows.len(), 20);
    }

    #[test]
    fn local_defaults_mirror_the_cli() {
        let task = connect("local:vehicles-compact?n=300").unwrap();
        assert_eq!(task.iface.result_limit(), 250, "default k");
        assert!(!task.iface.supports_count(), "default counts=absent");
    }

    #[test]
    fn bad_locators_fail_with_the_registry_message() {
        let err = connect("local:vehicles-compat?n=100").unwrap_err();
        assert!(err.contains("unknown dataset"), "{err}");
        assert!(err.contains("did you mean `vehicles-compact`?"), "{err}");

        let err = connect("local:boolean?frobnicate=1").unwrap_err();
        assert!(err.contains("unknown parameter `frobnicate`"), "{err}");
        assert!(err.contains("valid: n, k, seed"), "{err}");

        let err = connect("local:boolean?n=many").unwrap_err();
        assert!(err.contains("n=many"), "{err}");

        let err = connect("local:boolean?counts=sometimes").unwrap_err();
        assert!(err.contains("valid: absent, exact, noisy"), "{err}");

        assert!(connect("replay:/nonexistent/tape.jsonl").is_err());
    }

    #[test]
    fn record_then_replay_locators_round_trip() {
        let tape =
            std::env::temp_dir().join(format!("hds_connect_tape_{}.jsonl", std::process::id()));
        let tape_str = tape.to_str().unwrap().to_string();

        // Record a session against a local site: discovery plus two pages.
        let loc = SiteLocator::parse("local:boolean?n=120&k=10&seed=5").unwrap();
        let recorded = ConnectorRegistry::standard()
            .connect(
                &loc,
                &ConnectOptions {
                    record: Some(tape_str.clone()),
                    l2: None,
                },
            )
            .unwrap();
        let q = hdsampler_model::ConjunctiveQuery::from_named(
            &recorded.iface.schema().clone(),
            [("a1", "yes")],
        )
        .unwrap();
        let live_root = recorded
            .iface
            .execute(&hdsampler_model::ConjunctiveQuery::empty())
            .unwrap();
        let live_q = recorded.iface.execute(&q).unwrap();

        // Replay it with zero knowledge beyond the tape path: discovery
        // comes off the tape, and the pages come back byte-identical.
        let replayed = connect(&format!("replay:{tape_str}")).unwrap();
        assert_eq!(replayed.iface.schema(), recorded.iface.schema());
        assert_eq!(replayed.iface.result_limit(), 10);
        assert_eq!(
            replayed
                .iface
                .execute(&hdsampler_model::ConjunctiveQuery::empty())
                .unwrap(),
            live_root
        );
        assert_eq!(replayed.iface.execute(&q).unwrap(), live_q);
        std::fs::remove_file(&tape).ok();
    }

    #[test]
    fn standard_registry_lists_its_schemes() {
        assert_eq!(
            ConnectorRegistry::standard().schemes(),
            vec!["local", "http", "replay"]
        );
    }
}
