//! The web form a site derives from its schema — the machine-readable
//! counterpart of the demo's Figure 3 attribute-settings page.

use std::sync::Arc;

use hdsampler_model::{AttrKind, ConjunctiveQuery, ModelError, Schema};

use crate::render::escape_html;
use crate::urlenc;

/// A conjunctive web form: one select field per attribute, each with an
/// "any" default plus the attribute's domain values.
#[derive(Debug, Clone)]
pub struct WebForm {
    schema: Arc<Schema>,
    action: String,
}

impl WebForm {
    /// Form for `schema`, submitting to `action` (e.g. `/search`).
    pub fn new(schema: Arc<Schema>, action: impl Into<String>) -> Self {
        WebForm {
            schema,
            action: action.into(),
        }
    }

    /// The form's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The submit path.
    pub fn action(&self) -> &str {
        &self.action
    }

    /// Encode a query as the GET request path this form would submit.
    pub fn request_path(&self, query: &ConjunctiveQuery) -> String {
        let pairs: Vec<(String, String)> = query
            .predicates()
            .iter()
            .map(|p| {
                let attr = self.schema.attr_unchecked(p.attr);
                (attr.name().to_owned(), attr.label(p.value).into_owned())
            })
            .collect();
        if pairs.is_empty() {
            self.action.clone()
        } else {
            format!("{}?{}", self.action, urlenc::build_query(&pairs))
        }
    }

    /// Decode a GET request path back into a query (server side).
    ///
    /// An empty-valued pair (`make=`) is the form's own "any" default — a
    /// browser submitting the rendered form sends every field, so empty
    /// values are skipped as unconstrained rather than rejected. Duplicate
    /// fields binding the same value collapse to one predicate; duplicates
    /// binding different values are contradictory and rejected.
    ///
    /// # Errors
    /// [`ModelError`] when a field or value does not belong to the schema
    /// or a field is bound to two different values
    /// ([`ModelError::ConflictingPredicate`]); malformed encodings surface
    /// as [`ModelError::UnknownAttribute`] with the raw text.
    pub fn parse_request_path(&self, path: &str) -> Result<ConjunctiveQuery, ModelError> {
        let qs = match path.split_once('?') {
            None => return Ok(ConjunctiveQuery::empty()),
            Some((_, qs)) => qs,
        };
        let pairs = urlenc::parse_query(qs).ok_or_else(|| ModelError::UnknownAttribute {
            name: format!("<malformed: {qs}>"),
        })?;
        let mut query = ConjunctiveQuery::empty();
        for (name, label) in &pairs {
            // The field must exist even when left at "any" — a field the
            // form never rendered is still a bad request.
            let attr = self.schema.attr_by_name(name)?;
            if label.is_empty() {
                continue;
            }
            let value = self
                .schema
                .attr_unchecked(attr)
                .parse_label(label)
                .ok_or_else(|| ModelError::ValueOutOfRange {
                    attr: name.clone(),
                    value: u16::MAX,
                    domain_size: self.schema.domain_size(attr),
                })?;
            query = query.refine(attr, value)?;
        }
        Ok(query)
    }

    /// Render the form as HTML (`<select>` per attribute) — the Figure 3
    /// page.
    ///
    /// The markup is self-describing: every `<select>` carries a
    /// `data-kind` (`boolean` / `categorical` / `numeric`), numeric options
    /// carry their bucket bounds as `data-lo`/`data-hi` (Debug-formatted
    /// floats, which round-trip exactly), and the site's measures are
    /// listed in a `<ul class="measures">`. A scraper can therefore
    /// reconstruct the *typed* schema from the page alone — see
    /// [`scrape_form_page`](crate::scrape::scrape_form_page).
    pub fn render_html(&self) -> String {
        self.render_html_inner(None)
    }

    /// [`render_html`](WebForm::render_html) plus site metadata on the
    /// `<form>` tag: `data-hds-k` (the top-k display limit) and
    /// `data-hds-count` (`yes`/`no` count-banner support). Served landing
    /// pages use this variant so schema discovery needs nothing beyond one
    /// fetch of `/`.
    pub fn render_html_with_meta(&self, k: usize, supports_count: bool) -> String {
        self.render_html_inner(Some((k, supports_count, None)))
    }

    /// [`render_html_with_meta`](WebForm::render_html_with_meta) plus the
    /// site's versioned identity fingerprint as `data-hds-fingerprint` —
    /// the key persistent history caches file their facts under. Older
    /// pages without the attribute stay scrapeable; clients fall back to
    /// deriving the fingerprint themselves.
    pub fn render_html_with_fingerprint(
        &self,
        k: usize,
        supports_count: bool,
        fingerprint: &str,
    ) -> String {
        self.render_html_inner(Some((k, supports_count, Some(fingerprint))))
    }

    fn render_html_inner(&self, meta: Option<(usize, bool, Option<&str>)>) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "<form action=\"{}\" method=\"get\"",
            escape_html(&self.action)
        );
        if let Some((k, supports_count, fingerprint)) = meta {
            let _ = write!(
                out,
                " data-hds-k=\"{k}\" data-hds-count=\"{}\"",
                if supports_count { "yes" } else { "no" }
            );
            if let Some(fp) = fingerprint {
                let _ = write!(out, " data-hds-fingerprint=\"{}\"", escape_html(fp));
            }
        }
        let _ = writeln!(out, ">");
        for (_, attr) in self.schema.iter() {
            let name = escape_html(attr.name());
            let kind = match attr.kind() {
                AttrKind::Boolean => "boolean",
                AttrKind::Categorical { .. } => "categorical",
                AttrKind::Numeric { .. } => "numeric",
            };
            let _ = writeln!(out, "  <label for=\"{name}\">{name}</label>");
            let _ = writeln!(
                out,
                "  <select name=\"{name}\" id=\"{name}\" data-kind=\"{kind}\">"
            );
            let _ = writeln!(out, "    <option value=\"\" selected>any</option>");
            if let AttrKind::Numeric { buckets } = attr.kind() {
                for b in buckets {
                    let label = escape_html(&b.label);
                    let _ = writeln!(
                        out,
                        "    <option value=\"{label}\" data-lo=\"{:?}\" data-hi=\"{:?}\">{label}</option>",
                        b.lo, b.hi
                    );
                }
            } else {
                for v in attr.domain() {
                    let label = escape_html(&attr.label(v));
                    let _ = writeln!(out, "    <option value=\"{label}\">{label}</option>");
                }
            }
            let _ = writeln!(out, "  </select>");
        }
        let _ = writeln!(out, "  <input type=\"submit\" value=\"Search\"/>");
        if !self.schema.measures().is_empty() {
            let _ = writeln!(out, "  <ul class=\"measures\">");
            for m in self.schema.measures() {
                let _ = writeln!(out, "    <li>{}</li>", escape_html(m.name()));
            }
            let _ = writeln!(out, "  </ul>");
        }
        let _ = writeln!(out, "</form>");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_model::{Attribute, Bucket, SchemaBuilder};

    fn form() -> WebForm {
        let schema = SchemaBuilder::new()
            .attribute(Attribute::categorical("make", ["Toyota", "Town & Country style"]).unwrap())
            .attribute(
                Attribute::numeric(
                    "price",
                    vec![
                        Bucket::new(0.0, 5e3, "under $5k"),
                        Bucket::new(5e3, f64::INFINITY, "$5k–up"),
                    ],
                )
                .unwrap(),
            )
            .finish()
            .unwrap()
            .into_shared();
        WebForm::new(schema, "/search")
    }

    #[test]
    fn request_path_roundtrip() {
        let f = form();
        let q = ConjunctiveQuery::from_named(
            f.schema(),
            [("make", "Town & Country style"), ("price", "$5k–up")],
        )
        .unwrap();
        let path = f.request_path(&q);
        assert!(path.starts_with("/search?"));
        assert_eq!(f.parse_request_path(&path).unwrap(), q);
    }

    #[test]
    fn empty_query_is_bare_action() {
        let f = form();
        assert_eq!(f.request_path(&ConjunctiveQuery::empty()), "/search");
        assert_eq!(
            f.parse_request_path("/search").unwrap(),
            ConjunctiveQuery::empty()
        );
    }

    #[test]
    fn default_form_submission_is_the_empty_query() {
        // A browser submitting the rendered form with every select left on
        // "any" sends `?make=&price=` — that is the unconstrained query,
        // not a 400.
        let f = form();
        assert_eq!(
            f.parse_request_path("/search?make=&price=").unwrap(),
            ConjunctiveQuery::empty()
        );
        // Partially constrained: only the non-empty field binds.
        let q = f.parse_request_path("/search?make=Toyota&price=").unwrap();
        assert_eq!(
            q,
            ConjunctiveQuery::from_named(f.schema(), [("make", "Toyota")]).unwrap()
        );
        // An unknown field is rejected even when left at "any".
        assert!(f.parse_request_path("/search?colour=").is_err());
    }

    #[test]
    fn duplicate_fields_dedupe_or_conflict() {
        let f = form();
        // Identical duplicate collapses to one predicate.
        let q = f
            .parse_request_path("/search?make=Toyota&make=Toyota")
            .unwrap();
        assert_eq!(
            q,
            ConjunctiveQuery::from_named(f.schema(), [("make", "Toyota")]).unwrap()
        );
        // Conflicting duplicate is a clear 400-class error.
        let err = f
            .parse_request_path("/search?make=Toyota&make=Town%20%26%20Country%20style")
            .unwrap_err();
        assert!(matches!(
            err,
            hdsampler_model::ModelError::ConflictingPredicate { .. }
        ));
        // An "any" next to a real binding is not a conflict.
        let q = f.parse_request_path("/search?make=&make=Toyota").unwrap();
        assert_eq!(
            q,
            ConjunctiveQuery::from_named(f.schema(), [("make", "Toyota")]).unwrap()
        );
    }

    #[test]
    fn unknown_fields_rejected() {
        let f = form();
        assert!(f.parse_request_path("/search?colour=red").is_err());
        assert!(f.parse_request_path("/search?make=Tesla").is_err());
        assert!(f.parse_request_path("/search?make=%ZZ").is_err());
    }

    #[test]
    fn form_html_lists_all_options() {
        let f = form();
        let html = f.render_html();
        assert!(html.contains("<select name=\"make\""));
        assert!(html.contains("Town &amp; Country style"));
        assert!(html.contains(">any</option>"));
        assert!(html.contains("$5k–up"));
    }
}
