//! A thin, std-only epoll readiness reactor.
//!
//! Both halves of the real wire multiplex on this module: the
//! [`HttpTransport`](crate::httpc::HttpTransport) client blocks in one
//! `epoll_wait` across every pipelined connection instead of a blocking
//! read on the causally-earliest fetch, and the `hdsampler-server` crate
//! runs its event-driven serve mode (a resumable per-connection state
//! machine, thread-per-core) over the same wrapper.
//!
//! The wrapper is dependency-free by design: the three `epoll` entry
//! points are declared directly (`std` already links libc on Linux, so no
//! `libc` crate is needed) and the epoll fd is owned through
//! `std::os::fd::OwnedFd`. On non-Linux targets the same API exists but
//! [`Epoll::new`] fails with `Unsupported` and
//! [`reactor_supported`] returns `false` — callers fall back to their
//! blocking paths (the client's deadline-bounded `complete`, the server's
//! bounded thread pool).
//!
//! Level-triggered semantics throughout: an fd reported readable stays
//! reported until drained, so a missed wakeup costs one extra `wait`
//! round, never a lost connection.

use std::io;

#[cfg(unix)]
pub use std::os::fd::RawFd;
/// Raw fd placeholder on targets without `std::os::fd`.
#[cfg(not(unix))]
pub type RawFd = i32;

/// Whether this build has a working readiness reactor (Linux epoll).
pub fn reactor_supported() -> bool {
    cfg!(target_os = "linux")
}

/// What readiness a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Wake when the fd is readable (or hung up).
    Read,
    /// Wake when the fd is writable.
    Write,
    /// Wake on either.
    ReadWrite,
}

/// One readiness event out of [`Epoll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct ReadyEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// Data (or EOF) can be read without blocking.
    pub readable: bool,
    /// The fd can be written without blocking.
    pub writable: bool,
    /// The peer hung up or the fd is in an error state; the owner should
    /// drain and close.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::c_int;

    /// Mirror of the kernel's `struct epoll_event`. On x86-64 the kernel
    /// ABI packs it (no padding between `events` and `data`); other
    /// architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
}

/// Most events one [`Epoll::wait`] call surfaces; excess readiness is
/// simply reported on the next call (level-triggered).
const MAX_EVENTS: usize = 1024;

/// An epoll instance. All methods take `&self`: the kernel serializes
/// concurrent `epoll_ctl`/`epoll_wait` on one instance, so registration
/// from one thread while another waits is safe without a userspace lock.
#[derive(Debug)]
pub struct Epoll {
    #[cfg(target_os = "linux")]
    fd: std::os::fd::OwnedFd,
}

#[cfg(target_os = "linux")]
impl Epoll {
    /// Create an epoll instance (close-on-exec).
    pub fn new() -> io::Result<Self> {
        // SAFETY: plain syscall; a negative return is an error, otherwise
        // the fd is fresh and exclusively ours to own.
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: `fd` is a live fd we exclusively own (just created).
        Ok(Epoll {
            fd: unsafe { std::os::fd::FromRawFd::from_raw_fd(fd) },
        })
    }

    fn ctl(
        &self,
        op: std::os::raw::c_int,
        fd: RawFd,
        event: Option<sys::EpollEvent>,
    ) -> io::Result<()> {
        use std::os::fd::AsRawFd;
        let mut event = event;
        let ptr = event
            .as_mut()
            .map_or(std::ptr::null_mut(), |e| e as *mut sys::EpollEvent);
        // SAFETY: `ptr` is null only for EPOLL_CTL_DEL (which ignores it)
        // and otherwise points at a live stack value for the call's
        // duration.
        let rc = unsafe { sys::epoll_ctl(self.fd.as_raw_fd(), op, fd, ptr) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn mask(interest: Interest) -> u32 {
        let base = sys::EPOLLRDHUP;
        match interest {
            Interest::Read => sys::EPOLLIN | base,
            Interest::Write => sys::EPOLLOUT | base,
            Interest::ReadWrite => sys::EPOLLIN | sys::EPOLLOUT | base,
        }
    }

    /// Register `fd` under `token` with the given interest.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            sys::EPOLL_CTL_ADD,
            fd,
            Some(sys::EpollEvent {
                events: Self::mask(interest),
                data: token,
            }),
        )
    }

    /// Change an existing registration's token or interest.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(
            sys::EPOLL_CTL_MOD,
            fd,
            Some(sys::EpollEvent {
                events: Self::mask(interest),
                data: token,
            }),
        )
    }

    /// Remove `fd` from the set. Must be called *before* the fd is closed:
    /// the kernel forgets closed fds on its own, but a userspace
    /// registration map that outlives the close can alias a reused fd
    /// number and deregister someone else's live socket.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, None)
    }

    /// Block until readiness or `timeout_ms` (negative blocks forever,
    /// zero polls). Fills `events` (cleared first) and returns the count;
    /// an `EINTR`-interrupted wait reports zero events rather than
    /// erroring.
    pub fn wait(&self, events: &mut Vec<ReadyEvent>, timeout_ms: i32) -> io::Result<usize> {
        use std::os::fd::AsRawFd;
        events.clear();
        let mut raw = [sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        // SAFETY: `raw` outlives the call and `MAX_EVENTS` bounds what the
        // kernel may write.
        let n = unsafe {
            sys::epoll_wait(
                self.fd.as_raw_fd(),
                raw.as_mut_ptr(),
                MAX_EVENTS as std::os::raw::c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for ev in raw.iter().take(n as usize) {
            let bits = ev.events;
            events.push(ReadyEvent {
                token: ev.data,
                readable: bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
            });
        }
        Ok(events.len())
    }
}

#[cfg(not(target_os = "linux"))]
impl Epoll {
    /// No reactor on this target; callers fall back to blocking paths.
    pub fn new() -> io::Result<Self> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll reactor is Linux-only",
        ))
    }

    /// Unreachable: [`Epoll::new`] never succeeds here.
    pub fn register(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
        unreachable!("no Epoll value exists on non-Linux targets")
    }

    /// Unreachable: [`Epoll::new`] never succeeds here.
    pub fn modify(&self, _fd: RawFd, _token: u64, _interest: Interest) -> io::Result<()> {
        unreachable!("no Epoll value exists on non-Linux targets")
    }

    /// Unreachable: [`Epoll::new`] never succeeds here.
    pub fn deregister(&self, _fd: RawFd) -> io::Result<()> {
        unreachable!("no Epoll value exists on non-Linux targets")
    }

    /// Unreachable: [`Epoll::new`] never succeeds here.
    pub fn wait(&self, _events: &mut Vec<ReadyEvent>, _timeout_ms: i32) -> io::Result<usize> {
        unreachable!("no Epoll value exists on non-Linux targets")
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readiness_is_level_triggered_and_tokened() {
        let ep = Epoll::new().unwrap();
        let (mut a, b) = pair();
        ep.register(b.as_raw_fd(), 7, Interest::Read).unwrap();

        let mut events = Vec::new();
        // Nothing written yet: a zero-timeout wait reports nothing.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        a.write_all(b"x").unwrap();
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: unread data keeps reporting.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 1);

        let mut buf = [0u8; 8];
        let mut b = b;
        assert_eq!(b.read(&mut buf).unwrap(), 1);
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "drained fd is quiet");
    }

    #[test]
    fn peer_hangup_reports_readable_and_hangup() {
        let ep = Epoll::new().unwrap();
        let (a, b) = pair();
        ep.register(b.as_raw_fd(), 1, Interest::Read).unwrap();
        drop(a);
        let mut events = Vec::new();
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
        assert!(events[0].readable, "EOF must wake a reader");
        assert!(events[0].hangup);
    }

    #[test]
    fn deregister_silences_an_fd() {
        let ep = Epoll::new().unwrap();
        let (mut a, b) = pair();
        ep.register(b.as_raw_fd(), 1, Interest::Read).unwrap();
        a.write_all(b"x").unwrap();
        let mut events = Vec::new();
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
        ep.deregister(b.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        // Double-deregister errors (ENOENT) instead of corrupting state.
        assert!(ep.deregister(b.as_raw_fd()).is_err());
    }

    #[test]
    fn modify_switches_interest() {
        let ep = Epoll::new().unwrap();
        let (_a, b) = pair();
        // A fresh socket with an empty send buffer is writable, not
        // readable.
        ep.register(b.as_raw_fd(), 3, Interest::Read).unwrap();
        let mut events = Vec::new();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        ep.modify(b.as_raw_fd(), 4, Interest::ReadWrite).unwrap();
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
        assert_eq!(events[0].token, 4, "modify rebinds the token");
        assert!(events[0].writable);
        assert!(!events[0].hangup);
    }
}
