//! [`WebFormInterface`]: a complete
//! [`FormInterface`](hdsampler_model::FormInterface) implemented by
//! scraping pages over a [`Transport`].
//!
//! Stacking this adapter on a [`LocalSite`](crate::transport::LocalSite)
//! gives samplers the exact pipeline a live deployment has:
//!
//! ```text
//! sampler → WebFormInterface → URL encode → Transport → WebForm parse
//!         → HiddenDb (top-k, budget, counts) → HTML render → scrape → rows
//! ```
//!
//! Every value a sampler ever sees has survived the string round trip.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hdsampler_model::{ConjunctiveQuery, FormInterface, InterfaceError, QueryResponse, Schema};

use crate::form::WebForm;
use crate::scrape::scrape_results_page;
use crate::transport::Transport;

/// Scraper-side interface over a web form.
#[derive(Debug)]
pub struct WebFormInterface<T> {
    transport: T,
    form: WebForm,
    /// The k advertised by the site (a scraper learns it from the site's
    /// documentation or by observation; here it is configured).
    k: usize,
    supports_count: bool,
    fetches: AtomicU64,
}

impl<T: Transport> WebFormInterface<T> {
    /// Build a scraper over `transport` for a site exposing `schema` with
    /// display limit `k`. `supports_count` declares whether the site prints
    /// a count banner.
    pub fn new(transport: T, schema: Arc<Schema>, k: usize, supports_count: bool) -> Self {
        WebFormInterface {
            transport,
            form: WebForm::new(schema, "/search"),
            k,
            supports_count,
            fetches: AtomicU64::new(0),
        }
    }

    /// The transport (e.g. to read virtual latency).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Pages fetched by this scraper.
    pub fn fetches(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }
}

impl<T: Transport> FormInterface for WebFormInterface<T> {
    fn schema(&self) -> &Schema {
        self.form.schema()
    }

    fn result_limit(&self) -> usize {
        self.k
    }

    fn execute(&self, query: &ConjunctiveQuery) -> Result<QueryResponse, InterfaceError> {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        let path = self.form.request_path(query);
        let page = self.transport.fetch(&path)?;
        scrape_results_page(self.form.schema(), &page)
    }

    fn count(&self, query: &ConjunctiveQuery) -> Result<u64, InterfaceError> {
        if !self.supports_count {
            return Err(InterfaceError::Unsupported("count reporting"));
        }
        let resp = self.execute(query)?;
        resp.reported_count
            .ok_or_else(|| InterfaceError::Parse("count banner missing".into()))
    }

    fn supports_count(&self) -> bool {
        self.supports_count
    }

    fn queries_issued(&self) -> u64 {
        self.fetches()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LocalSite;
    use hdsampler_hidden_db::{CountMode, HiddenDb};
    use hdsampler_model::{AttrId, Attribute, Classification, SchemaBuilder, Tuple};

    fn stack(k: usize, mode: CountMode) -> (Arc<Schema>, WebFormInterface<LocalSite<HiddenDb>>) {
        let schema = SchemaBuilder::new()
            .attribute(Attribute::boolean("a1"))
            .attribute(Attribute::boolean("a2"))
            .attribute(Attribute::boolean("a3"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(Arc::clone(&schema))
            .result_limit(k)
            .count_mode(mode);
        for vals in [[0u16, 0, 1], [0, 1, 0], [0, 1, 1], [1, 1, 0]] {
            b.push(&Tuple::new(&schema, vals.to_vec(), vec![]).unwrap())
                .unwrap();
        }
        let site = LocalSite::new(b.finish(), Arc::clone(&schema));
        let supports = !matches!(mode, CountMode::Absent);
        let iface = WebFormInterface::new(site, Arc::clone(&schema), k, supports);
        (schema, iface)
    }

    fn q(pairs: &[(u16, u16)]) -> ConjunctiveQuery {
        ConjunctiveQuery::from_pairs(pairs.iter().map(|&(a, v)| (AttrId(a), v))).unwrap()
    }

    #[test]
    fn scraped_responses_match_direct_access() {
        let (_, iface) = stack(1, CountMode::Exact);
        // Direct comparison: build the same db again and execute directly.
        let (_, iface2) = stack(1, CountMode::Exact);
        let direct = iface2.transport().backend();
        for query in [
            ConjunctiveQuery::empty(),
            q(&[(0, 0)]),
            q(&[(0, 1)]),
            q(&[(0, 1), (1, 0)]),
            q(&[(0, 0), (1, 0)]),
        ] {
            let scraped = iface.execute(&query).unwrap();
            let truth = direct.execute(&query).unwrap();
            assert_eq!(scraped, truth, "query {query:?}");
        }
    }

    #[test]
    fn classifications_survive_the_wire() {
        let (_, iface) = stack(1, CountMode::Absent);
        assert_eq!(
            iface.execute(&q(&[(0, 0)])).unwrap().classification(),
            Classification::Overflow
        );
        assert_eq!(
            iface.execute(&q(&[(0, 1)])).unwrap().classification(),
            Classification::Valid
        );
        assert_eq!(
            iface
                .execute(&q(&[(0, 1), (1, 0)]))
                .unwrap()
                .classification(),
            Classification::Empty
        );
    }

    #[test]
    fn count_via_banner() {
        let (_, iface) = stack(1, CountMode::Exact);
        assert_eq!(iface.count(&q(&[(0, 0)])).unwrap(), 3);
        let (_, no_counts) = stack(1, CountMode::Absent);
        assert!(matches!(
            no_counts.count(&q(&[(0, 0)])),
            Err(InterfaceError::Unsupported(_))
        ));
    }

    #[test]
    fn fetches_are_counted_end_to_end() {
        let (_, iface) = stack(1, CountMode::Exact);
        iface.execute(&ConjunctiveQuery::empty()).unwrap();
        iface.count(&q(&[(0, 0)])).unwrap();
        assert_eq!(iface.fetches(), 2);
        assert_eq!(iface.queries_issued(), 2);
        // The backend charged the same number.
        assert_eq!(iface.transport().backend().queries_issued(), 2);
    }

    #[test]
    fn sampler_runs_end_to_end_over_html() {
        use hdsampler_core::{DirectExecutor, HdsSampler, Sampler, SamplerConfig};
        let (_, iface) = stack(1, CountMode::Absent);
        let mut s =
            HdsSampler::new(DirectExecutor::new(&iface), SamplerConfig::seeded(77)).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..120 {
            let smp = s.next_sample().unwrap();
            seen.insert(smp.row.values.to_vec());
        }
        assert_eq!(seen.len(), 4, "all four tuples sampled through HTML");
    }
}
