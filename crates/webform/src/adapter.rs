//! [`WebFormInterface`]: a complete
//! [`FormInterface`](hdsampler_model::FormInterface) implemented by
//! scraping pages over a [`Transport`].
//!
//! Stacking this adapter on a [`LocalSite`](crate::transport::LocalSite)
//! gives samplers the exact pipeline a live deployment has:
//!
//! ```text
//! sampler → WebFormInterface → URL encode → Transport → WebForm parse
//!         → HiddenDb (top-k, budget, counts) → HTML render → scrape → rows
//! ```
//!
//! Every value a sampler ever sees has survived the string round trip.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hdsampler_model::{ConjunctiveQuery, FormInterface, InterfaceError, QueryResponse, Schema};

use crate::aio::{AsyncTransport, ConnId, FetchHandle, FetchPoll};
use crate::chaos::RetryPolicy;
use crate::form::WebForm;
use crate::scrape::scrape_results_page;
use crate::transport::Transport;

/// Token for one in-flight query on the non-blocking execute path.
#[derive(Debug)]
pub struct QueryHandle {
    fetch: FetchHandle,
}

impl QueryHandle {
    /// The connection the query's fetch occupies.
    pub fn conn(&self) -> ConnId {
        self.fetch.conn()
    }

    /// Completion time on the connection's virtual clock (ms); `0` for
    /// real-wire transports, whose completions arrive in physical time.
    pub fn ready_at_ms(&self) -> u64 {
        self.fetch.ready_at_ms()
    }

    /// Virtual queue wait before the fetch departed (0 on real wires).
    pub fn queued_ms(&self) -> u64 {
        self.fetch.queued_ms()
    }

    /// Virtual service time of the fetch itself (0 on real wires).
    pub fn service_ms(&self) -> u64 {
        self.fetch.service_ms()
    }
}

/// Outcome of a non-blocking [`WebFormInterface::poll_query`].
#[derive(Debug)]
pub enum QueryPoll {
    /// The fetch is still in flight; the handle is handed back.
    Pending(QueryHandle),
    /// Done: the scraped response, or the transport/parse error.
    Ready(Result<QueryResponse, InterfaceError>),
}

/// Scraper-side interface over a web form.
#[derive(Debug)]
pub struct WebFormInterface<T> {
    transport: T,
    form: WebForm,
    /// The k advertised by the site (a scraper learns it from the site's
    /// documentation or by observation; here it is configured).
    k: usize,
    supports_count: bool,
    retry: RetryPolicy,
    fetches: AtomicU64,
    /// Extra attempts beyond each query's first (transient failures
    /// retried). Charged separately from `fetches`: a retried query is
    /// still *one* query against the site's budget.
    retries: AtomicU64,
    /// Total backoff waited between retries, ms (virtual or real,
    /// whichever clock the transport runs on).
    backoff_ms: AtomicU64,
}

impl<T: Transport> WebFormInterface<T> {
    /// Build a scraper over `transport` for a site exposing `schema` with
    /// display limit `k`. `supports_count` declares whether the site prints
    /// a count banner. Transient failures (throttles, 503s, dropped
    /// connections) are retried under [`RetryPolicy::default`]; tune or
    /// disable with [`with_retry`](WebFormInterface::with_retry).
    pub fn new(transport: T, schema: Arc<Schema>, k: usize, supports_count: bool) -> Self {
        Self::with_form(
            transport,
            WebForm::new(schema, "/search"),
            k,
            supports_count,
        )
    }

    /// Like [`new`](WebFormInterface::new), but with an explicit
    /// [`WebForm`] — the constructor schema discovery uses, since a scraped
    /// landing page names its own action rather than assuming `/search`.
    pub fn with_form(transport: T, form: WebForm, k: usize, supports_count: bool) -> Self {
        WebFormInterface {
            transport,
            form,
            k,
            supports_count,
            retry: RetryPolicy::default(),
            fetches: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            backoff_ms: AtomicU64::new(0),
        }
    }

    /// Replace the retry policy ([`RetryPolicy::none`] fails fast).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The retry policy in force.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The transport (e.g. to read virtual latency).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Pages fetched by this scraper (logical queries, not attempts).
    pub fn fetches(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }

    /// Extra attempts spent retrying transient failures.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Total backoff waited between retries (ms).
    pub fn backoff_ms(&self) -> u64 {
        self.backoff_ms.load(Ordering::Relaxed)
    }

    /// Record one driver-level retry attempt (cooperative drivers resubmit
    /// faulted queries themselves rather than through the blocking path).
    pub fn note_retry(&self, backoff_ms: u64) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        self.backoff_ms.fetch_add(backoff_ms, Ordering::Relaxed);
    }
}

/// The non-blocking execute path: submit a query on an explicit virtual
/// connection, poll or complete it later. One thread can keep several
/// sites' (or one site's) queries in flight; the wire bills them as
/// overlapping.
impl<T: AsyncTransport> WebFormInterface<T> {
    /// Open a fresh virtual connection on the underlying transport.
    pub fn connect(&self) -> ConnId {
        self.transport.connect()
    }

    /// Begin executing `query` on `conn` without blocking.
    pub fn submit_query(&self, conn: ConnId, query: &ConjunctiveQuery) -> QueryHandle {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        let path = self.form.request_path(query);
        QueryHandle {
            fetch: self.transport.submit(conn, &path),
        }
    }

    /// Resubmit a query whose previous attempt failed transiently. Counted
    /// as a retry, not a fresh fetch — the query was already charged once.
    pub fn resubmit_query(&self, conn: ConnId, query: &ConjunctiveQuery) -> QueryHandle {
        let path = self.form.request_path(query);
        QueryHandle {
            fetch: self.transport.submit(conn, &path),
        }
    }

    /// Whether the underlying wire's clock is virtual (see
    /// [`AsyncTransport::wire_is_virtual`]).
    pub fn wire_is_virtual(&self) -> bool {
        self.transport.wire_is_virtual()
    }

    /// One readiness wait across all of the transport's connections (see
    /// [`AsyncTransport::wait_ready`]); `None` when the wire has no
    /// reactor and callers must fall back to a blocking completion.
    pub fn wait_ready(&self, timeout_ms: u64) -> Option<usize> {
        self.transport.wait_ready(timeout_ms)
    }

    /// Check a submitted query for completion without advancing virtual
    /// time.
    pub fn poll_query(&self, handle: QueryHandle) -> QueryPoll {
        match self.transport.poll(handle.fetch) {
            FetchPoll::Pending(fetch) => QueryPoll::Pending(QueryHandle { fetch }),
            FetchPoll::Ready(page) => QueryPoll::Ready(
                page.and_then(|html| scrape_results_page(self.form.schema(), &html)),
            ),
        }
    }

    /// Advance the connection's clock to the query's completion and scrape
    /// the page.
    pub fn complete_query(&self, handle: QueryHandle) -> Result<QueryResponse, InterfaceError> {
        let page = self.transport.complete(handle.fetch)?;
        scrape_results_page(self.form.schema(), &page)
    }

    /// Abandon a submitted query, releasing its buffered page. The fetch
    /// still happened (and was charged); only the result is discarded.
    pub fn cancel_query(&self, handle: QueryHandle) {
        self.transport.cancel(handle.fetch);
    }
}

impl<T: Transport> FormInterface for WebFormInterface<T> {
    fn schema(&self) -> &Schema {
        self.form.schema()
    }

    fn result_limit(&self) -> usize {
        self.k
    }

    fn execute(&self, query: &ConjunctiveQuery) -> Result<QueryResponse, InterfaceError> {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        let path = self.form.request_path(query);
        let mut attempt = 0u32;
        loop {
            match self.transport.fetch(&path) {
                Ok(page) => return scrape_results_page(self.form.schema(), &page),
                Err(e) if e.is_transient() && attempt < self.retry.max_retries => {
                    let wait = self.retry.backoff_ms(attempt, e.retry_after_ms());
                    self.note_retry(wait);
                    self.transport.backoff(wait);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn count(&self, query: &ConjunctiveQuery) -> Result<u64, InterfaceError> {
        if !self.supports_count {
            return Err(InterfaceError::Unsupported("count reporting"));
        }
        let resp = self.execute(query)?;
        resp.reported_count
            .ok_or_else(|| InterfaceError::Parse("count banner missing".into()))
    }

    fn supports_count(&self) -> bool {
        self.supports_count
    }

    fn queries_issued(&self) -> u64 {
        self.fetches()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LocalSite;
    use hdsampler_hidden_db::{CountMode, HiddenDb};
    use hdsampler_model::{AttrId, Attribute, Classification, SchemaBuilder, Tuple};

    fn stack(k: usize, mode: CountMode) -> (Arc<Schema>, WebFormInterface<LocalSite<HiddenDb>>) {
        let schema = SchemaBuilder::new()
            .attribute(Attribute::boolean("a1"))
            .attribute(Attribute::boolean("a2"))
            .attribute(Attribute::boolean("a3"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(Arc::clone(&schema))
            .result_limit(k)
            .count_mode(mode);
        for vals in [[0u16, 0, 1], [0, 1, 0], [0, 1, 1], [1, 1, 0]] {
            b.push(&Tuple::new(&schema, vals.to_vec(), vec![]).unwrap())
                .unwrap();
        }
        let site = LocalSite::new(b.finish(), Arc::clone(&schema));
        let supports = !matches!(mode, CountMode::Absent);
        let iface = WebFormInterface::new(site, Arc::clone(&schema), k, supports);
        (schema, iface)
    }

    fn q(pairs: &[(u16, u16)]) -> ConjunctiveQuery {
        ConjunctiveQuery::from_pairs(pairs.iter().map(|&(a, v)| (AttrId(a), v))).unwrap()
    }

    #[test]
    fn scraped_responses_match_direct_access() {
        let (_, iface) = stack(1, CountMode::Exact);
        // Direct comparison: build the same db again and execute directly.
        let (_, iface2) = stack(1, CountMode::Exact);
        let direct = iface2.transport().backend();
        for query in [
            ConjunctiveQuery::empty(),
            q(&[(0, 0)]),
            q(&[(0, 1)]),
            q(&[(0, 1), (1, 0)]),
            q(&[(0, 0), (1, 0)]),
        ] {
            let scraped = iface.execute(&query).unwrap();
            let truth = direct.execute(&query).unwrap();
            assert_eq!(scraped, truth, "query {query:?}");
        }
    }

    #[test]
    fn classifications_survive_the_wire() {
        let (_, iface) = stack(1, CountMode::Absent);
        assert_eq!(
            iface.execute(&q(&[(0, 0)])).unwrap().classification(),
            Classification::Overflow
        );
        assert_eq!(
            iface.execute(&q(&[(0, 1)])).unwrap().classification(),
            Classification::Valid
        );
        assert_eq!(
            iface
                .execute(&q(&[(0, 1), (1, 0)]))
                .unwrap()
                .classification(),
            Classification::Empty
        );
    }

    #[test]
    fn count_via_banner() {
        let (_, iface) = stack(1, CountMode::Exact);
        assert_eq!(iface.count(&q(&[(0, 0)])).unwrap(), 3);
        let (_, no_counts) = stack(1, CountMode::Absent);
        assert!(matches!(
            no_counts.count(&q(&[(0, 0)])),
            Err(InterfaceError::Unsupported(_))
        ));
    }

    #[test]
    fn fetches_are_counted_end_to_end() {
        let (_, iface) = stack(1, CountMode::Exact);
        iface.execute(&ConjunctiveQuery::empty()).unwrap();
        iface.count(&q(&[(0, 0)])).unwrap();
        assert_eq!(iface.fetches(), 2);
        assert_eq!(iface.queries_issued(), 2);
        // The backend charged the same number.
        assert_eq!(iface.transport().backend().queries_issued(), 2);
    }

    #[test]
    fn non_blocking_execute_path_overlaps_queries() {
        use crate::transport::LatencyTransport;
        use hdsampler_model::Classification;

        let schema = SchemaBuilder::new()
            .attribute(Attribute::boolean("a1"))
            .attribute(Attribute::boolean("a2"))
            .attribute(Attribute::boolean("a3"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(Arc::clone(&schema)).result_limit(1);
        for vals in [[0u16, 0, 1], [0, 1, 0], [0, 1, 1], [1, 1, 0]] {
            b.push(&Tuple::new(&schema, vals.to_vec(), vec![]).unwrap())
                .unwrap();
        }
        let site = LocalSite::new(b.finish(), Arc::clone(&schema));
        let wire = LatencyTransport::new(site, 100);
        let iface = WebFormInterface::new(wire, Arc::clone(&schema), 1, false);

        // Three queries in flight on three connections from one thread.
        let handles: Vec<_> = [q(&[(0, 0)]), q(&[(0, 1)]), q(&[(0, 1), (1, 0)])]
            .iter()
            .map(|query| {
                let conn = iface.connect();
                iface.submit_query(conn, query)
            })
            .collect();
        let mut classes = Vec::new();
        for h in handles {
            // Unadvanced clock: still pending.
            let h = match iface.poll_query(h) {
                QueryPoll::Pending(h) => h,
                QueryPoll::Ready(_) => panic!("no completion before the clock advances"),
            };
            classes.push(iface.complete_query(h).unwrap().classification());
        }
        assert_eq!(
            classes,
            vec![
                Classification::Overflow,
                Classification::Valid,
                Classification::Empty
            ]
        );
        assert_eq!(iface.fetches(), 3);
        assert_eq!(
            iface.transport().virtual_elapsed_ms(),
            100,
            "three overlapping queries cost one RTT"
        );
    }

    #[test]
    fn transient_failures_retry_and_are_charged_separately() {
        use crate::chaos::{ChaosSpec, ChaosTransport};
        let (schema, _iface) = stack(1, CountMode::Absent);
        // Every request is throttled: retries exhaust and the error
        // surfaces, but the query is charged once and the attempts land in
        // the retry counters.
        let site = {
            let mut b = HiddenDb::builder(Arc::clone(&schema)).result_limit(1);
            b.push(&Tuple::new(&schema, vec![0, 0, 1], vec![]).unwrap())
                .unwrap();
            LocalSite::new(b.finish(), Arc::clone(&schema))
        };
        let chaos = ChaosTransport::new(
            site,
            ChaosSpec {
                throttle: 1.0,
                retry_after_ms: 40,
                ..ChaosSpec::default()
            },
        );
        let iface = WebFormInterface::new(chaos, Arc::clone(&schema), 1, false);
        let err = iface.execute(&q(&[(0, 0)])).unwrap_err();
        assert!(matches!(err, InterfaceError::Throttled { .. }));
        let policy = iface.retry_policy();
        assert_eq!(iface.fetches(), 1, "one logical query");
        assert_eq!(
            iface.queries_issued(),
            1,
            "budget view unchanged by retries"
        );
        assert_eq!(iface.retries(), policy.max_retries as u64);
        assert_eq!(
            iface.backoff_ms(),
            policy.max_retries as u64 * 40,
            "Retry-After honored per attempt"
        );
        assert_eq!(
            iface.transport().inner().backend().queries_issued(),
            0,
            "throttled attempts never reach the backend"
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(16))]

        /// Satellite: retry accounting never double-charges the site's
        /// query budget — however many attempts chaos forces, the backend
        /// is charged once per *successful* logical query and the
        /// interface's budget view counts logical queries, never attempts.
        #[test]
        fn retries_never_double_charge_the_budget(
            seed in 0u64..10_000,
            throttle in 0.0f64..0.35,
            fail in 0.0f64..0.25,
            drop in 0.0f64..0.2,
        ) {
            use crate::chaos::{ChaosSpec, ChaosTransport, RetryPolicy};
            let schema = SchemaBuilder::new()
                .attribute(Attribute::boolean("a1"))
                .attribute(Attribute::boolean("a2"))
                .finish()
                .unwrap()
                .into_shared();
            let mut b = HiddenDb::builder(Arc::clone(&schema)).result_limit(1);
            for vals in [[0u16, 1], [1, 0], [1, 1]] {
                b.push(&Tuple::new(&schema, vals.to_vec(), vec![]).unwrap()).unwrap();
            }
            let site = LocalSite::new(b.finish(), Arc::clone(&schema));
            let chaos = ChaosTransport::new(site, ChaosSpec {
                seed,
                throttle,
                retry_after_ms: 10,
                fail,
                drop,
                ..ChaosSpec::default()
            });
            let iface = WebFormInterface::new(chaos, Arc::clone(&schema), 1, false)
                .with_retry(RetryPolicy { max_retries: 12, base_backoff_ms: 1, max_backoff_ms: 8 });
            let queries = [q(&[(0, 0)]), q(&[(0, 1)]), q(&[(1, 0)]), q(&[(1, 1)])];
            let mut successes = 0u64;
            for i in 0..40 {
                if iface.execute(&queries[i % queries.len()]).is_ok() {
                    successes += 1;
                }
            }
            proptest::prop_assert_eq!(iface.fetches(), 40, "one charge per logical query");
            proptest::prop_assert_eq!(iface.queries_issued(), 40);
            let backend_charges = iface.transport().inner().backend().queries_issued();
            proptest::prop_assert_eq!(
                backend_charges, successes,
                "backend charged exactly once per served query"
            );
            proptest::prop_assert!(backend_charges <= iface.fetches());
        }
    }

    #[test]
    fn sampler_runs_end_to_end_over_html() {
        use hdsampler_core::{DirectExecutor, HdsSampler, Sampler, SamplerConfig};
        let (_, iface) = stack(1, CountMode::Absent);
        let mut s =
            HdsSampler::new(DirectExecutor::new(&iface), SamplerConfig::seeded(77)).unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..120 {
            let smp = s.next_sample().unwrap();
            seen.insert(smp.row.values.to_vec());
        }
        assert_eq!(seen.len(), 4, "all four tuples sampled through HTML");
    }
}
