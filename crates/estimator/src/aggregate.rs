//! Approximate aggregate answering from samples (§1, §3.4).
//!
//! "If one wants to learn the percentage of Japanese cars in the dealer's
//! inventory, a very small number of uniform random samples of the
//! underlying database can provide a quite accurate answer."
//!
//! Predicates here are arbitrary client-side closures over [`Row`] — an
//! analyst can aggregate over derived conditions (make ∈ {…}, price <
//! threshold on the raw measure, …) that the conjunctive *interface* could
//! never express, which is exactly what makes samples more useful than
//! targeted queries.
//!
//! Each aggregate has an online face — [`OnlineProportion`],
//! [`OnlineCount`], [`OnlineAvg`], [`OnlineSum`] — a [`SampleSink`]
//! accumulating the sufficient statistics one sample at a time with a
//! [`snapshot`](OnlineProportion::snapshot) view. The batch [`Estimator`]
//! methods are thin wrappers that feed the sample set through the same
//! accumulators, so a live snapshot taken after the last sample is
//! bit-identical to the post-hoc batch estimate.

use std::any::Any;

use hdsampler_core::{merged, Sample, SampleSet, SampleSink};
use hdsampler_model::{MeasureId, Row};

/// A point estimate with a symmetric 95 % normal-approximation interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateEstimate {
    /// The estimate.
    pub value: f64,
    /// 95 % interval half-width (`value ± half_width`), `NaN` when the
    /// sample is too small to assess.
    pub half_width: f64,
    /// Samples used.
    pub n: usize,
}

impl AggregateEstimate {
    /// Interval lower edge.
    pub fn lo(&self) -> f64 {
        self.value - self.half_width
    }

    /// Interval upper edge.
    pub fn hi(&self) -> f64 {
        self.value + self.half_width
    }

    /// Whether the interval covers `reference`.
    pub fn covers(&self, reference: f64) -> bool {
        !self.half_width.is_nan() && self.lo() <= reference && reference <= self.hi()
    }
}

const Z95: f64 = 1.959964;

/// Implement [`SampleSink`] for an online aggregate: forks clone the
/// predicate/config with zeroed accumulators, merges add the sufficient
/// statistics (order-independent up to float association).
macro_rules! impl_aggregate_sink {
    ($name:ident { $($sum:ident),+ $(,)? }) => {
        impl<P> SampleSink for $name<P>
        where
            P: Fn(&Row) -> bool + Clone + Send + 'static,
        {
            fn observe(&mut self, event: &hdsampler_core::SampleEvent<'_>) {
                self.add(event.sample);
            }

            fn fork(&self) -> Box<dyn SampleSink> {
                let mut fork = self.clone();
                $(fork.$sum = Default::default();)+
                Box::new(fork)
            }

            fn merge(&mut self, other: Box<dyn SampleSink>) {
                let other = merged::<$name<P>>(other);
                $(self.$sum += other.$sum;)+
            }

            fn as_any(&self) -> &dyn Any {
                self
            }

            fn into_any(self: Box<Self>) -> Box<dyn Any> {
                self
            }
        }
    };
}

/// Online estimated fraction of tuples satisfying a predicate.
///
/// Accumulates `(Σw over hits, Σw, Σw², n)` per observed sample; the
/// inherent `add`/`snapshot` methods need only `P: Fn(&Row) -> bool`, the
/// [`SampleSink`] impl additionally `Clone + Send + 'static` (forks must
/// carry the predicate to other workers).
#[derive(Debug, Clone)]
pub struct OnlineProportion<P> {
    pred: P,
    hit_w: f64,
    total_w: f64,
    sum_w2: f64,
    n: usize,
}

impl<P: Fn(&Row) -> bool> OnlineProportion<P> {
    /// Empty accumulator for `pred`.
    pub fn new(pred: P) -> Self {
        OnlineProportion {
            pred,
            hit_w: 0.0,
            total_w: 0.0,
            sum_w2: 0.0,
            n: 0,
        }
    }

    /// Fold in one sample. Non-finite weights are rejected and the
    /// observation skipped — the same guard as
    /// [`Histogram::add`](crate::histogram::Histogram::add): one NaN
    /// importance weight must not poison every later snapshot.
    pub fn add(&mut self, s: &Sample) {
        if !s.weight.is_finite() {
            return;
        }
        self.total_w += s.weight;
        self.sum_w2 += s.weight * s.weight;
        if (self.pred)(&s.row) {
            self.hit_w += s.weight;
        }
        self.n += 1;
    }

    /// The current estimate (NaN before the first sample).
    pub fn snapshot(&self) -> AggregateEstimate {
        if self.n == 0 {
            return AggregateEstimate {
                value: f64::NAN,
                half_width: f64::NAN,
                n: 0,
            };
        }
        let p = self.hit_w / self.total_w;
        // Effective sample size for weighted data: (Σw)² / Σw².
        let n_eff = self.total_w * self.total_w / self.sum_w2;
        let half = Z95 * (p * (1.0 - p) / n_eff).sqrt();
        AggregateEstimate {
            value: p,
            half_width: half,
            n: self.n,
        }
    }
}

impl_aggregate_sink!(OnlineProportion {
    hit_w,
    total_w,
    sum_w2,
    n
});

/// Online estimated COUNT: an [`OnlineProportion`] scaled by the database
/// size `n_total` (known, site-reported, or estimated via
/// [`capture_recapture`](crate::size::capture_recapture)).
#[derive(Debug, Clone)]
pub struct OnlineCount<P> {
    inner: OnlineProportion<P>,
    n_total: f64,
}

impl<P: Fn(&Row) -> bool> OnlineCount<P> {
    /// Empty accumulator scaling by `n_total`.
    pub fn new(n_total: f64, pred: P) -> Self {
        OnlineCount {
            inner: OnlineProportion::new(pred),
            n_total,
        }
    }

    /// Fold in one sample.
    pub fn add(&mut self, s: &Sample) {
        self.inner.add(s);
    }

    /// The current estimate.
    pub fn snapshot(&self) -> AggregateEstimate {
        let p = self.inner.snapshot();
        AggregateEstimate {
            value: p.value * self.n_total,
            half_width: p.half_width * self.n_total,
            n: p.n,
        }
    }
}

impl<P> SampleSink for OnlineCount<P>
where
    P: Fn(&Row) -> bool + Clone + Send + 'static,
{
    fn observe(&mut self, event: &hdsampler_core::SampleEvent<'_>) {
        self.add(event.sample);
    }

    fn fork(&self) -> Box<dyn SampleSink> {
        let mut fork = self.clone();
        fork.inner = OnlineProportion::new(fork.inner.pred.clone());
        Box::new(fork)
    }

    fn merge(&mut self, other: Box<dyn SampleSink>) {
        // Delegate to the inner proportion's own merge so a future field
        // cannot be silently dropped here.
        let other = merged::<OnlineCount<P>>(other);
        self.inner.merge(Box::new(other.inner));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Online estimated AVG of a measure over tuples satisfying a predicate:
/// self-normalized weighted mean with a sufficient-statistics variance
/// (`Σw(x−x̄)² = Σwx² − x̄·Σwx`).
#[derive(Debug, Clone)]
pub struct OnlineAvg<P> {
    pred: P,
    m: MeasureId,
    n: usize,
    w: f64,
    wx: f64,
    wx2: f64,
    w2: f64,
}

impl<P: Fn(&Row) -> bool> OnlineAvg<P> {
    /// Empty accumulator for measure `m` over `pred`.
    pub fn new(m: MeasureId, pred: P) -> Self {
        OnlineAvg {
            pred,
            m,
            n: 0,
            w: 0.0,
            wx: 0.0,
            wx2: 0.0,
            w2: 0.0,
        }
    }

    /// Fold in one sample (ignored unless the predicate selects it;
    /// non-finite weights are rejected like everywhere else).
    pub fn add(&mut self, s: &Sample) {
        if !s.weight.is_finite() || !(self.pred)(&s.row) {
            return;
        }
        let x = s.row.measures[self.m.index()];
        let w = s.weight;
        self.n += 1;
        self.w += w;
        self.wx += x * w;
        self.wx2 += x * x * w;
        self.w2 += w * w;
    }

    /// The current estimate (NaN value before the first selected sample,
    /// NaN half-width before the second).
    pub fn snapshot(&self) -> AggregateEstimate {
        if self.n == 0 {
            return AggregateEstimate {
                value: f64::NAN,
                half_width: f64::NAN,
                n: 0,
            };
        }
        let mean = self.wx / self.w;
        if self.n < 2 {
            return AggregateEstimate {
                value: mean,
                half_width: f64::NAN,
                n: self.n,
            };
        }
        // Self-normalized weighted variance; clamped at 0 against the
        // cancellation the sufficient-statistics form can produce.
        let var = ((self.wx2 - mean * self.wx) / self.w).max(0.0);
        let n_eff = self.w * self.w / self.w2;
        let half = Z95 * (var / n_eff).sqrt();
        AggregateEstimate {
            value: mean,
            half_width: half,
            n: self.n,
        }
    }
}

impl_aggregate_sink!(OnlineAvg { n, w, wx, wx2, w2 });

/// Online estimated SUM of a measure over tuples satisfying a predicate,
/// scaled by the database size: `SUM = N · E[x · 1_pred]`, estimated over
/// *all* samples (zero contribution where the predicate fails) so the CI
/// reflects both sources of variance.
#[derive(Debug, Clone)]
pub struct OnlineSum<P> {
    pred: P,
    m: MeasureId,
    n_total: f64,
    n: usize,
    w: f64,
    s1: f64,
    s2: f64,
    w2: f64,
}

impl<P: Fn(&Row) -> bool> OnlineSum<P> {
    /// Empty accumulator for measure `m` over `pred`, scaling by
    /// `n_total`.
    pub fn new(n_total: f64, m: MeasureId, pred: P) -> Self {
        OnlineSum {
            pred,
            m,
            n_total,
            n: 0,
            w: 0.0,
            s1: 0.0,
            s2: 0.0,
            w2: 0.0,
        }
    }

    /// Fold in one sample (non-finite weights rejected).
    pub fn add(&mut self, s: &Sample) {
        if !s.weight.is_finite() {
            return;
        }
        let c = if (self.pred)(&s.row) {
            s.row.measures[self.m.index()]
        } else {
            0.0
        };
        let w = s.weight;
        self.n += 1;
        self.w += w;
        self.s1 += c * w;
        self.s2 += c * c * w;
        self.w2 += w * w;
    }

    /// The current estimate (NaN before the first sample).
    pub fn snapshot(&self) -> AggregateEstimate {
        if self.n == 0 {
            return AggregateEstimate {
                value: f64::NAN,
                half_width: f64::NAN,
                n: 0,
            };
        }
        let mean = self.s1 / self.w;
        let var = (self.s2 / self.w - mean * mean).max(0.0);
        let n_eff = self.w * self.w / self.w2;
        let half = Z95 * (var / n_eff).sqrt() * self.n_total;
        AggregateEstimate {
            value: mean * self.n_total,
            half_width: half,
            n: self.n,
        }
    }
}

impl_aggregate_sink!(OnlineSum { n, w, s1, s2, w2 });

/// Aggregate-query answering over a sample set.
///
/// Weighted samples (count-sampler under noisy counts) are handled by
/// self-normalized importance estimates throughout.
#[derive(Debug, Clone, Copy)]
pub struct Estimator<'a> {
    samples: &'a SampleSet,
}

impl<'a> Estimator<'a> {
    /// Wrap a sample set.
    pub fn new(samples: &'a SampleSet) -> Self {
        Estimator { samples }
    }

    /// Estimated fraction of tuples satisfying `pred` (batch convenience
    /// over [`OnlineProportion`]).
    pub fn proportion(&self, pred: impl Fn(&Row) -> bool) -> AggregateEstimate {
        let mut acc = OnlineProportion::new(pred);
        for s in self.samples.samples() {
            acc.add(s);
        }
        acc.snapshot()
    }

    /// Estimated COUNT of tuples satisfying `pred`, given the database size
    /// `n_total` (known, reported by the site, or estimated via
    /// [`capture_recapture`](crate::size::capture_recapture)) — a batch
    /// convenience over [`OnlineCount`].
    pub fn count(&self, n_total: f64, pred: impl Fn(&Row) -> bool) -> AggregateEstimate {
        let mut acc = OnlineCount::new(n_total, pred);
        for s in self.samples.samples() {
            acc.add(s);
        }
        acc.snapshot()
    }

    /// Estimated AVG of measure `m` over tuples satisfying `pred` (batch
    /// convenience over [`OnlineAvg`]).
    pub fn avg(&self, m: MeasureId, pred: impl Fn(&Row) -> bool) -> AggregateEstimate {
        let mut acc = OnlineAvg::new(m, pred);
        for s in self.samples.samples() {
            acc.add(s);
        }
        acc.snapshot()
    }

    /// Estimated SUM of measure `m` over tuples satisfying `pred`, given
    /// the database size (batch convenience over [`OnlineSum`]).
    pub fn sum(
        &self,
        n_total: f64,
        m: MeasureId,
        pred: impl Fn(&Row) -> bool,
    ) -> AggregateEstimate {
        let mut acc = OnlineSum::new(n_total, m, pred);
        for s in self.samples.samples() {
            acc.add(s);
        }
        acc.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_core::{Sample, SampleMeta};

    #[test]
    fn non_finite_weights_are_skipped_by_every_aggregate_sink() {
        // Same policy as Histogram::add: a NaN/∞ importance weight is
        // rejected at add, not allowed to poison the snapshot.
        let good = sample(1, 10.0, 2.0);
        let nan = sample(1, 10.0, f64::NAN);
        let inf = sample(1, 10.0, f64::INFINITY);
        let pred = |r: &Row| r.values[0] == 1;

        let mut p = OnlineProportion::new(pred);
        let mut c = OnlineCount::new(100.0, pred);
        let mut a = OnlineAvg::new(MeasureId(0), pred);
        let mut s = OnlineSum::new(100.0, MeasureId(0), pred);
        for smp in [&good, &nan, &inf] {
            p.add(smp);
            c.add(smp);
            a.add(smp);
            s.add(smp);
        }
        assert_eq!(p.snapshot().n, 1);
        assert!((p.snapshot().value - 1.0).abs() < 1e-12);
        assert!((c.snapshot().value - 100.0).abs() < 1e-12);
        assert_eq!(a.snapshot().n, 1);
        assert!((a.snapshot().value - 10.0).abs() < 1e-12);
        assert!((s.snapshot().value - 1000.0).abs() < 1e-12);
    }

    fn sample(v: u16, measure: f64, weight: f64) -> Sample {
        Sample {
            row: Row::new(v as u64 * 1000 + measure as u64, vec![v], vec![measure]),
            weight,
            meta: SampleMeta::default(),
        }
    }

    fn uniform_set(values: &[(u16, f64)]) -> SampleSet {
        values.iter().map(|&(v, m)| sample(v, m, 1.0)).collect()
    }

    #[test]
    fn proportion_basic() {
        let set = uniform_set(&[(0, 1.0), (0, 2.0), (1, 3.0), (0, 4.0)]);
        let est = Estimator::new(&set).proportion(|r| r.values[0] == 0);
        assert!((est.value - 0.75).abs() < 1e-12);
        assert!(est.half_width > 0.0 && est.half_width < 0.5);
        assert!(est.covers(0.75));
    }

    #[test]
    fn count_scales_proportion() {
        let set = uniform_set(&[(0, 0.0), (1, 0.0), (1, 0.0), (1, 0.0)]);
        let est = Estimator::new(&set).count(1000.0, |r| r.values[0] == 1);
        assert!((est.value - 750.0).abs() < 1e-9);
    }

    #[test]
    fn avg_and_sum() {
        let set = uniform_set(&[(0, 10.0), (0, 20.0), (1, 100.0), (1, 200.0)]);
        let e = Estimator::new(&set);
        let avg0 = e.avg(MeasureId(0), |r| r.values[0] == 0);
        assert!((avg0.value - 15.0).abs() < 1e-12);
        assert_eq!(avg0.n, 2);

        // SUM over the whole population: mean contribution 82.5 × N.
        let sum_all = e.sum(100.0, MeasureId(0), |_| true);
        assert!((sum_all.value - 8250.0).abs() < 1e-9);
    }

    #[test]
    fn empty_selections_are_nan_not_panic() {
        let set = uniform_set(&[(0, 1.0)]);
        let e = Estimator::new(&set);
        assert!(e.avg(MeasureId(0), |r| r.values[0] == 9).value.is_nan());
        let empty = SampleSet::new();
        assert!(Estimator::new(&empty).proportion(|_| true).value.is_nan());
    }

    #[test]
    fn weights_shift_estimates() {
        // Value 1 carries double weight: proportion becomes 2/3 not 1/2.
        let set: SampleSet = [sample(0, 0.0, 1.0), sample(1, 0.0, 2.0)]
            .into_iter()
            .collect();
        let est = Estimator::new(&set).proportion(|r| r.values[0] == 1);
        assert!((est.value - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_avg_is_self_normalized() {
        let set: SampleSet = [sample(0, 10.0, 1.0), sample(0, 40.0, 3.0)]
            .into_iter()
            .collect();
        let est = Estimator::new(&set).avg(MeasureId(0), |_| true);
        assert!((est.value - 32.5).abs() < 1e-12, "(10·1 + 40·3)/4 = 32.5");
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let small = uniform_set(&(0..20).map(|i| (i % 2, 0.0)).collect::<Vec<_>>());
        let large = uniform_set(&(0..2000).map(|i| (i % 2, 0.0)).collect::<Vec<_>>());
        let hw_small = Estimator::new(&small)
            .proportion(|r| r.values[0] == 0)
            .half_width;
        let hw_large = Estimator::new(&large)
            .proportion(|r| r.values[0] == 0)
            .half_width;
        assert!(hw_large < hw_small / 5.0);
    }
}
