//! Approximate aggregate answering from samples (§1, §3.4).
//!
//! "If one wants to learn the percentage of Japanese cars in the dealer's
//! inventory, a very small number of uniform random samples of the
//! underlying database can provide a quite accurate answer."
//!
//! Predicates here are arbitrary client-side closures over [`Row`] — an
//! analyst can aggregate over derived conditions (make ∈ {…}, price <
//! threshold on the raw measure, …) that the conjunctive *interface* could
//! never express, which is exactly what makes samples more useful than
//! targeted queries.

use hdsampler_core::SampleSet;
use hdsampler_model::{MeasureId, Row};

/// A point estimate with a symmetric 95 % normal-approximation interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateEstimate {
    /// The estimate.
    pub value: f64,
    /// 95 % interval half-width (`value ± half_width`), `NaN` when the
    /// sample is too small to assess.
    pub half_width: f64,
    /// Samples used.
    pub n: usize,
}

impl AggregateEstimate {
    /// Interval lower edge.
    pub fn lo(&self) -> f64 {
        self.value - self.half_width
    }

    /// Interval upper edge.
    pub fn hi(&self) -> f64 {
        self.value + self.half_width
    }

    /// Whether the interval covers `reference`.
    pub fn covers(&self, reference: f64) -> bool {
        !self.half_width.is_nan() && self.lo() <= reference && reference <= self.hi()
    }
}

const Z95: f64 = 1.959964;

/// Aggregate-query answering over a sample set.
///
/// Weighted samples (count-sampler under noisy counts) are handled by
/// self-normalized importance estimates throughout.
#[derive(Debug, Clone, Copy)]
pub struct Estimator<'a> {
    samples: &'a SampleSet,
}

impl<'a> Estimator<'a> {
    /// Wrap a sample set.
    pub fn new(samples: &'a SampleSet) -> Self {
        Estimator { samples }
    }

    /// Estimated fraction of tuples satisfying `pred`.
    pub fn proportion(&self, pred: impl Fn(&Row) -> bool) -> AggregateEstimate {
        let n = self.samples.len();
        if n == 0 {
            return AggregateEstimate {
                value: f64::NAN,
                half_width: f64::NAN,
                n: 0,
            };
        }
        let total_w = self.samples.total_weight();
        let hit_w: f64 = self
            .samples
            .samples()
            .iter()
            .filter(|s| pred(&s.row))
            .map(|s| s.weight)
            .sum();
        let p = hit_w / total_w;
        // Effective sample size for weighted data: (Σw)² / Σw².
        let sum_w2: f64 = self
            .samples
            .samples()
            .iter()
            .map(|s| s.weight * s.weight)
            .sum();
        let n_eff = total_w * total_w / sum_w2;
        let half = Z95 * (p * (1.0 - p) / n_eff).sqrt();
        AggregateEstimate {
            value: p,
            half_width: half,
            n,
        }
    }

    /// Estimated COUNT of tuples satisfying `pred`, given the database size
    /// `n_total` (known, reported by the site, or estimated via
    /// [`capture_recapture`](crate::size::capture_recapture)).
    pub fn count(&self, n_total: f64, pred: impl Fn(&Row) -> bool) -> AggregateEstimate {
        let p = self.proportion(pred);
        AggregateEstimate {
            value: p.value * n_total,
            half_width: p.half_width * n_total,
            n: p.n,
        }
    }

    /// Estimated AVG of measure `m` over tuples satisfying `pred`.
    pub fn avg(&self, m: MeasureId, pred: impl Fn(&Row) -> bool) -> AggregateEstimate {
        let selected: Vec<(f64, f64)> = self
            .samples
            .samples()
            .iter()
            .filter(|s| pred(&s.row))
            .map(|s| (s.row.measures[m.index()], s.weight))
            .collect();
        let n = selected.len();
        if n == 0 {
            return AggregateEstimate {
                value: f64::NAN,
                half_width: f64::NAN,
                n: 0,
            };
        }
        let w_total: f64 = selected.iter().map(|&(_, w)| w).sum();
        let mean: f64 = selected.iter().map(|&(x, w)| x * w).sum::<f64>() / w_total;
        if n < 2 {
            return AggregateEstimate {
                value: mean,
                half_width: f64::NAN,
                n,
            };
        }
        // Weighted variance (self-normalized); reduces to the sample
        // variance when all weights are 1.
        let var: f64 = selected
            .iter()
            .map(|&(x, w)| w * (x - mean) * (x - mean))
            .sum::<f64>()
            / w_total;
        let n_eff = w_total * w_total / selected.iter().map(|&(_, w)| w * w).sum::<f64>();
        let half = Z95 * (var / n_eff).sqrt();
        AggregateEstimate {
            value: mean,
            half_width: half,
            n,
        }
    }

    /// Estimated SUM of measure `m` over tuples satisfying `pred`, given
    /// the database size.
    pub fn sum(
        &self,
        n_total: f64,
        m: MeasureId,
        pred: impl Fn(&Row) -> bool,
    ) -> AggregateEstimate {
        // SUM = N · E[x · 1_pred]; estimate the per-tuple contribution mean
        // over *all* samples (zeros where the predicate fails) so the CI
        // reflects both sources of variance.
        let n = self.samples.len();
        if n == 0 {
            return AggregateEstimate {
                value: f64::NAN,
                half_width: f64::NAN,
                n: 0,
            };
        }
        let w_total = self.samples.total_weight();
        let contrib = |s: &hdsampler_core::Sample| {
            if pred(&s.row) {
                s.row.measures[m.index()]
            } else {
                0.0
            }
        };
        let mean: f64 = self
            .samples
            .samples()
            .iter()
            .map(|s| contrib(s) * s.weight)
            .sum::<f64>()
            / w_total;
        let var: f64 = self
            .samples
            .samples()
            .iter()
            .map(|s| {
                let d = contrib(s) - mean;
                s.weight * d * d
            })
            .sum::<f64>()
            / w_total;
        let n_eff = w_total * w_total
            / self
                .samples
                .samples()
                .iter()
                .map(|s| s.weight * s.weight)
                .sum::<f64>();
        let half = Z95 * (var / n_eff).sqrt() * n_total;
        AggregateEstimate {
            value: mean * n_total,
            half_width: half,
            n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_core::{Sample, SampleMeta};

    fn sample(v: u16, measure: f64, weight: f64) -> Sample {
        Sample {
            row: Row::new(v as u64 * 1000 + measure as u64, vec![v], vec![measure]),
            weight,
            meta: SampleMeta::default(),
        }
    }

    fn uniform_set(values: &[(u16, f64)]) -> SampleSet {
        values.iter().map(|&(v, m)| sample(v, m, 1.0)).collect()
    }

    #[test]
    fn proportion_basic() {
        let set = uniform_set(&[(0, 1.0), (0, 2.0), (1, 3.0), (0, 4.0)]);
        let est = Estimator::new(&set).proportion(|r| r.values[0] == 0);
        assert!((est.value - 0.75).abs() < 1e-12);
        assert!(est.half_width > 0.0 && est.half_width < 0.5);
        assert!(est.covers(0.75));
    }

    #[test]
    fn count_scales_proportion() {
        let set = uniform_set(&[(0, 0.0), (1, 0.0), (1, 0.0), (1, 0.0)]);
        let est = Estimator::new(&set).count(1000.0, |r| r.values[0] == 1);
        assert!((est.value - 750.0).abs() < 1e-9);
    }

    #[test]
    fn avg_and_sum() {
        let set = uniform_set(&[(0, 10.0), (0, 20.0), (1, 100.0), (1, 200.0)]);
        let e = Estimator::new(&set);
        let avg0 = e.avg(MeasureId(0), |r| r.values[0] == 0);
        assert!((avg0.value - 15.0).abs() < 1e-12);
        assert_eq!(avg0.n, 2);

        // SUM over the whole population: mean contribution 82.5 × N.
        let sum_all = e.sum(100.0, MeasureId(0), |_| true);
        assert!((sum_all.value - 8250.0).abs() < 1e-9);
    }

    #[test]
    fn empty_selections_are_nan_not_panic() {
        let set = uniform_set(&[(0, 1.0)]);
        let e = Estimator::new(&set);
        assert!(e.avg(MeasureId(0), |r| r.values[0] == 9).value.is_nan());
        let empty = SampleSet::new();
        assert!(Estimator::new(&empty).proportion(|_| true).value.is_nan());
    }

    #[test]
    fn weights_shift_estimates() {
        // Value 1 carries double weight: proportion becomes 2/3 not 1/2.
        let set: SampleSet = [sample(0, 0.0, 1.0), sample(1, 0.0, 2.0)]
            .into_iter()
            .collect();
        let est = Estimator::new(&set).proportion(|r| r.values[0] == 1);
        assert!((est.value - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_avg_is_self_normalized() {
        let set: SampleSet = [sample(0, 10.0, 1.0), sample(0, 40.0, 3.0)]
            .into_iter()
            .collect();
        let est = Estimator::new(&set).avg(MeasureId(0), |_| true);
        assert!((est.value - 32.5).abs() < 1e-12, "(10·1 + 40·3)/4 = 32.5");
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let small = uniform_set(&(0..20).map(|i| (i % 2, 0.0)).collect::<Vec<_>>());
        let large = uniform_set(&(0..2000).map(|i| (i % 2, 0.0)).collect::<Vec<_>>());
        let hw_small = Estimator::new(&small)
            .proportion(|r| r.values[0] == 0)
            .half_width;
        let hw_large = Estimator::new(&large)
            .proportion(|r| r.values[0] == 0)
            .half_width;
        assert!(hw_large < hw_small / 5.0);
    }
}
