//! Side-by-side validation against ground truth (§3.4 "Results
//! Validation").
//!
//! "In the absence of access to the database being sampled, we resort to
//! verifying our results … by employing the services of the
//! BRUTE-FORCE-SAMPLER"; with the locally simulated database, the truth
//! itself is available. [`MarginalComparison`] renders both as the paper's
//! Figure 4 style table and computes distance metrics.

use hdsampler_model::{AttrId, Schema};

use crate::skew::{kl_divergence, tv_distance};

/// Table-safe rendering of a statistic that may be non-finite: `inf` /
/// `-inf` for infinities, `n/a` for NaN, fixed-point otherwise — raw
/// float debug output (`NaN`, `inf` formatted by `{:?}`) never reaches a
/// table.
pub fn fmt_stat(x: f64, decimals: usize) -> String {
    if x.is_nan() {
        "n/a".to_string()
    } else if x == f64::INFINITY {
        "inf".to_string()
    } else if x == f64::NEG_INFINITY {
        "-inf".to_string()
    } else {
        format!("{x:.decimals$}")
    }
}

/// Comparison of an estimated marginal against a reference distribution.
#[derive(Debug, Clone)]
pub struct MarginalComparison {
    attr_name: String,
    labels: Vec<String>,
    estimated: Vec<f64>,
    reference: Vec<f64>,
}

impl MarginalComparison {
    /// Build a comparison for attribute `attr`.
    ///
    /// # Panics
    /// Panics if the two distributions do not match the attribute's domain
    /// size.
    pub fn new(schema: &Schema, attr: AttrId, estimated: Vec<f64>, reference: Vec<f64>) -> Self {
        let a = schema.attr_unchecked(attr);
        assert_eq!(estimated.len(), a.domain_size(), "estimate arity");
        assert_eq!(reference.len(), a.domain_size(), "reference arity");
        MarginalComparison {
            attr_name: a.name().to_owned(),
            labels: a.domain().map(|v| a.label(v).into_owned()).collect(),
            estimated,
            reference,
        }
    }

    /// Total variation distance between estimate and reference.
    pub fn tv(&self) -> f64 {
        tv_distance(&self.estimated, &self.reference)
    }

    /// KL divergence of the estimate from the reference (infinite when
    /// the estimate puts mass where the reference has none).
    pub fn kl(&self) -> f64 {
        kl_divergence(&self.estimated, &self.reference)
    }

    /// Largest absolute per-value error.
    pub fn max_abs_error(&self) -> f64 {
        self.estimated
            .iter()
            .zip(&self.reference)
            .map(|(e, r)| (e - r).abs())
            .fold(0.0, f64::max)
    }

    /// The estimated distribution.
    pub fn estimated(&self) -> &[f64] {
        &self.estimated
    }

    /// The reference distribution.
    pub fn reference(&self) -> &[f64] {
        &self.reference
    }

    /// Render a Figure 4 style table: value, estimated %, reference %,
    /// error. Values ordered by reference share descending; rows below
    /// `min_share` of reference mass are aggregated into "(other)".
    pub fn render(&self, min_share: f64) -> String {
        use std::fmt::Write as _;
        let mut order: Vec<usize> = (0..self.labels.len()).collect();
        // Total order: a NaN reference share must not abort the table.
        order.sort_by(|&a, &b| self.reference[b].total_cmp(&self.reference[a]));
        let label_w = self
            .labels
            .iter()
            .map(|l| l.chars().count())
            .max()
            .unwrap_or(5)
            .max(7);

        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:label_w$} {:>10} {:>10} {:>8}",
            self.attr_name, "sampled", "truth", "error"
        );
        let mut other = (0.0, 0.0);
        for i in order {
            if self.reference[i] < min_share {
                other.0 += self.estimated[i];
                other.1 += self.reference[i];
                continue;
            }
            let _ = writeln!(
                out,
                "{:label_w$} {:9.2}% {:9.2}% {:7.2}%",
                self.labels[i],
                self.estimated[i] * 100.0,
                self.reference[i] * 100.0,
                (self.estimated[i] - self.reference[i]).abs() * 100.0,
            );
        }
        if other.1 > 0.0 || other.0 > 0.0 {
            let _ = writeln!(
                out,
                "{:label_w$} {:9.2}% {:9.2}% {:7.2}%",
                "(other)",
                other.0 * 100.0,
                other.1 * 100.0,
                (other.0 - other.1).abs() * 100.0,
            );
        }
        let _ = writeln!(
            out,
            "{:label_w$} TV distance = {} | KL divergence = {}",
            "",
            fmt_stat(self.tv(), 4),
            fmt_stat(self.kl(), 4),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_model::{Attribute, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new()
            .attribute(Attribute::categorical("make", ["Toyota", "Honda", "Ford"]).unwrap())
            .finish()
            .unwrap()
    }

    #[test]
    fn metrics() {
        let s = schema();
        let c = MarginalComparison::new(&s, AttrId(0), vec![0.5, 0.3, 0.2], vec![0.45, 0.35, 0.2]);
        assert!((c.tv() - 0.05).abs() < 1e-12);
        assert!((c.max_abs_error() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn render_table() {
        let s = schema();
        let c = MarginalComparison::new(&s, AttrId(0), vec![0.5, 0.3, 0.2], vec![0.45, 0.35, 0.2]);
        let table = c.render(0.0);
        assert!(table.contains("Toyota"));
        assert!(table.contains("TV distance"));
        assert!(table.contains("50.00%"));
    }

    #[test]
    fn render_aggregates_small_rows() {
        let s = schema();
        let c =
            MarginalComparison::new(&s, AttrId(0), vec![0.6, 0.38, 0.02], vec![0.6, 0.39, 0.01]);
        let table = c.render(0.05);
        assert!(table.contains("(other)"));
        assert!(!table.contains("Ford"));
    }

    #[test]
    #[should_panic(expected = "estimate arity")]
    fn arity_mismatch_panics() {
        let s = schema();
        let _ = MarginalComparison::new(&s, AttrId(0), vec![1.0], vec![0.3, 0.3, 0.4]);
    }

    #[test]
    fn fmt_stat_handles_non_finite() {
        assert_eq!(fmt_stat(f64::NAN, 2), "n/a");
        assert_eq!(fmt_stat(f64::INFINITY, 2), "inf");
        assert_eq!(fmt_stat(f64::NEG_INFINITY, 2), "-inf");
        assert_eq!(fmt_stat(1.2345, 2), "1.23");
    }

    #[test]
    fn infinite_kl_renders_as_inf_not_debug_float() {
        // The estimate puts mass where the reference has none → KL = ∞.
        // The table must say `inf`, never `{:?}`-style raw float output.
        let s = schema();
        let c = MarginalComparison::new(&s, AttrId(0), vec![0.5, 0.5, 0.0], vec![1.0, 0.0, 0.0]);
        assert_eq!(c.kl(), f64::INFINITY);
        let table = c.render(0.0);
        assert!(table.contains("KL divergence = inf"), "{table}");
        assert!(!table.contains("NaN"), "{table}");
    }
}
