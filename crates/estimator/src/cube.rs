//! Small group-by data cubes from samples (§3.4): "for example, to execute
//! approximate aggregate queries on a resultant data cube".
//!
//! Like [`Histogram`](crate::histogram::Histogram), [`DataCube`] is its
//! own online face: it implements [`SampleSink`] and the batch
//! constructor is a thin wrapper over the incremental [`DataCube::add`].

use std::any::Any;

use hdsampler_core::{merged, SampleEvent, SampleSink};
use hdsampler_model::{AttrId, Row, Schema};

/// A two-dimensional (attribute × attribute) weighted count cube built from
/// samples.
#[derive(Debug, Clone, PartialEq)]
pub struct DataCube {
    row_attr: AttrId,
    col_attr: AttrId,
    row_labels: Vec<String>,
    col_labels: Vec<String>,
    /// `cells[r][c]` = accumulated weight.
    cells: Vec<Vec<f64>>,
    total: f64,
}

impl DataCube {
    /// Empty cube over `(row_attr, col_attr)`.
    pub fn new(schema: &Schema, row_attr: AttrId, col_attr: AttrId) -> Self {
        assert_ne!(row_attr, col_attr, "cube needs two distinct attributes");
        let ra = schema.attr_unchecked(row_attr);
        let ca = schema.attr_unchecked(col_attr);
        DataCube {
            row_attr,
            col_attr,
            row_labels: ra.domain().map(|v| ra.label(v).into_owned()).collect(),
            col_labels: ca.domain().map(|v| ca.label(v).into_owned()).collect(),
            cells: vec![vec![0.0; ca.domain_size()]; ra.domain_size()],
            total: 0.0,
        }
    }

    /// Build from rows with unit weights.
    pub fn from_rows<'a>(
        schema: &Schema,
        row_attr: AttrId,
        col_attr: AttrId,
        rows: impl IntoIterator<Item = &'a Row>,
    ) -> Self {
        let mut cube = DataCube::new(schema, row_attr, col_attr);
        for r in rows {
            cube.add(r, 1.0);
        }
        cube
    }

    /// Add one observation. Non-finite weights are rejected (same guard
    /// as [`Histogram::add`](crate::histogram::Histogram::add)).
    pub fn add(&mut self, row: &Row, weight: f64) {
        if !weight.is_finite() {
            return;
        }
        let r = row.values[self.row_attr.index()] as usize;
        let c = row.values[self.col_attr.index()] as usize;
        self.cells[r][c] += weight;
        self.total += weight;
    }

    /// The current state as an owned value (the live-display snapshot).
    pub fn snapshot(&self) -> DataCube {
        self.clone()
    }

    /// Estimated joint proportion of cell `(r, c)`.
    pub fn proportion(&self, r: usize, c: usize) -> f64 {
        if self.total <= 0.0 {
            0.0
        } else {
            self.cells[r][c] / self.total
        }
    }

    /// Row-marginal proportions (sums over columns).
    pub fn row_marginal(&self) -> Vec<f64> {
        self.cells
            .iter()
            .map(|row| {
                if self.total <= 0.0 {
                    0.0
                } else {
                    row.iter().sum::<f64>() / self.total
                }
            })
            .collect()
    }

    /// Column-marginal proportions.
    pub fn col_marginal(&self) -> Vec<f64> {
        let n_cols = self.col_labels.len();
        (0..n_cols)
            .map(|c| {
                if self.total <= 0.0 {
                    0.0
                } else {
                    self.cells.iter().map(|row| row[c]).sum::<f64>() / self.total
                }
            })
            .collect()
    }

    /// Conditional distribution of the column attribute given row value `r`
    /// (`None` when that row has no mass).
    pub fn conditional_given_row(&self, r: usize) -> Option<Vec<f64>> {
        let mass: f64 = self.cells[r].iter().sum();
        if mass <= 0.0 {
            return None;
        }
        Some(self.cells[r].iter().map(|w| w / mass).collect())
    }

    /// Total observed weight.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Render as a percentage table (rows × columns).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let label_w = self
            .row_labels
            .iter()
            .map(|l| l.chars().count())
            .max()
            .unwrap_or(4);
        let mut out = String::new();
        let _ = write!(out, "{:label_w$}", "");
        for cl in &self.col_labels {
            let _ = write!(out, " {cl:>9}");
        }
        let _ = writeln!(out);
        for (r, rl) in self.row_labels.iter().enumerate() {
            let _ = write!(out, "{rl:label_w$}");
            for c in 0..self.col_labels.len() {
                let _ = write!(out, " {:>8.2}%", self.proportion(r, c) * 100.0);
            }
            let _ = writeln!(out);
        }
        out
    }
}

impl SampleSink for DataCube {
    fn observe(&mut self, event: &SampleEvent<'_>) {
        self.add(&event.sample.row, event.sample.weight);
    }

    fn fork(&self) -> Box<dyn SampleSink> {
        let mut empty = self.clone();
        for row in &mut empty.cells {
            row.iter_mut().for_each(|c| *c = 0.0);
        }
        empty.total = 0.0;
        Box::new(empty)
    }

    fn merge(&mut self, other: Box<dyn SampleSink>) {
        let other = merged::<DataCube>(other);
        assert_eq!(
            (self.row_attr, self.col_attr),
            (other.row_attr, other.col_attr),
            "merge requires the same attribute pair"
        );
        for (row, orow) in self.cells.iter_mut().zip(&other.cells) {
            for (c, o) in row.iter_mut().zip(orow) {
                *c += o;
            }
        }
        self.total += other.total;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_model::{Attribute, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new()
            .attribute(Attribute::categorical("make", ["Toyota", "Ford"]).unwrap())
            .attribute(Attribute::categorical("cond", ["new", "used"]).unwrap())
            .finish()
            .unwrap()
    }

    fn row(make: u16, cond: u16) -> Row {
        Row::new((make * 2 + cond) as u64, vec![make, cond], vec![])
    }

    #[test]
    fn joint_and_marginals() {
        let s = schema();
        let rows = [row(0, 0), row(0, 1), row(0, 1), row(1, 1)];
        let cube = DataCube::from_rows(&s, AttrId(0), AttrId(1), rows.iter());
        assert_eq!(cube.total(), 4.0);
        assert!((cube.proportion(0, 1) - 0.5).abs() < 1e-12);
        assert_eq!(cube.row_marginal(), vec![0.75, 0.25]);
        assert_eq!(cube.col_marginal(), vec![0.25, 0.75]);
    }

    #[test]
    fn conditionals() {
        let s = schema();
        let rows = [row(0, 0), row(0, 1), row(0, 1)];
        let cube = DataCube::from_rows(&s, AttrId(0), AttrId(1), rows.iter());
        let cond = cube.conditional_given_row(0).unwrap();
        assert!((cond[1] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cube.conditional_given_row(1), None, "no Ford mass");
    }

    #[test]
    fn render_is_a_table() {
        let s = schema();
        let rows = [row(0, 0), row(1, 1)];
        let text = DataCube::from_rows(&s, AttrId(0), AttrId(1), rows.iter()).render();
        assert!(text.contains("Toyota"));
        assert!(text.contains("new"));
        assert!(text.contains("50.00%"));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn same_attribute_rejected() {
        let s = schema();
        let _ = DataCube::new(&s, AttrId(0), AttrId(0));
    }
}
