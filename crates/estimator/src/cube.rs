//! Small group-by data cubes from samples (§3.4): "for example, to execute
//! approximate aggregate queries on a resultant data cube".

use hdsampler_model::{AttrId, Row, Schema};

/// A two-dimensional (attribute × attribute) weighted count cube built from
/// samples.
#[derive(Debug, Clone)]
pub struct DataCube {
    row_attr: AttrId,
    col_attr: AttrId,
    row_labels: Vec<String>,
    col_labels: Vec<String>,
    /// `cells[r][c]` = accumulated weight.
    cells: Vec<Vec<f64>>,
    total: f64,
}

impl DataCube {
    /// Empty cube over `(row_attr, col_attr)`.
    pub fn new(schema: &Schema, row_attr: AttrId, col_attr: AttrId) -> Self {
        assert_ne!(row_attr, col_attr, "cube needs two distinct attributes");
        let ra = schema.attr_unchecked(row_attr);
        let ca = schema.attr_unchecked(col_attr);
        DataCube {
            row_attr,
            col_attr,
            row_labels: ra.domain().map(|v| ra.label(v).into_owned()).collect(),
            col_labels: ca.domain().map(|v| ca.label(v).into_owned()).collect(),
            cells: vec![vec![0.0; ca.domain_size()]; ra.domain_size()],
            total: 0.0,
        }
    }

    /// Build from rows with unit weights.
    pub fn from_rows<'a>(
        schema: &Schema,
        row_attr: AttrId,
        col_attr: AttrId,
        rows: impl IntoIterator<Item = &'a Row>,
    ) -> Self {
        let mut cube = DataCube::new(schema, row_attr, col_attr);
        for r in rows {
            cube.add(r, 1.0);
        }
        cube
    }

    /// Add one observation.
    pub fn add(&mut self, row: &Row, weight: f64) {
        let r = row.values[self.row_attr.index()] as usize;
        let c = row.values[self.col_attr.index()] as usize;
        self.cells[r][c] += weight;
        self.total += weight;
    }

    /// Estimated joint proportion of cell `(r, c)`.
    pub fn proportion(&self, r: usize, c: usize) -> f64 {
        if self.total <= 0.0 {
            0.0
        } else {
            self.cells[r][c] / self.total
        }
    }

    /// Row-marginal proportions (sums over columns).
    pub fn row_marginal(&self) -> Vec<f64> {
        self.cells
            .iter()
            .map(|row| {
                if self.total <= 0.0 {
                    0.0
                } else {
                    row.iter().sum::<f64>() / self.total
                }
            })
            .collect()
    }

    /// Column-marginal proportions.
    pub fn col_marginal(&self) -> Vec<f64> {
        let n_cols = self.col_labels.len();
        (0..n_cols)
            .map(|c| {
                if self.total <= 0.0 {
                    0.0
                } else {
                    self.cells.iter().map(|row| row[c]).sum::<f64>() / self.total
                }
            })
            .collect()
    }

    /// Conditional distribution of the column attribute given row value `r`
    /// (`None` when that row has no mass).
    pub fn conditional_given_row(&self, r: usize) -> Option<Vec<f64>> {
        let mass: f64 = self.cells[r].iter().sum();
        if mass <= 0.0 {
            return None;
        }
        Some(self.cells[r].iter().map(|w| w / mass).collect())
    }

    /// Total observed weight.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Render as a percentage table (rows × columns).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let label_w = self
            .row_labels
            .iter()
            .map(|l| l.chars().count())
            .max()
            .unwrap_or(4);
        let mut out = String::new();
        let _ = write!(out, "{:label_w$}", "");
        for cl in &self.col_labels {
            let _ = write!(out, " {cl:>9}");
        }
        let _ = writeln!(out);
        for (r, rl) in self.row_labels.iter().enumerate() {
            let _ = write!(out, "{rl:label_w$}");
            for c in 0..self.col_labels.len() {
                let _ = write!(out, " {:>8.2}%", self.proportion(r, c) * 100.0);
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_model::{Attribute, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new()
            .attribute(Attribute::categorical("make", ["Toyota", "Ford"]).unwrap())
            .attribute(Attribute::categorical("cond", ["new", "used"]).unwrap())
            .finish()
            .unwrap()
    }

    fn row(make: u16, cond: u16) -> Row {
        Row::new((make * 2 + cond) as u64, vec![make, cond], vec![])
    }

    #[test]
    fn joint_and_marginals() {
        let s = schema();
        let rows = [row(0, 0), row(0, 1), row(0, 1), row(1, 1)];
        let cube = DataCube::from_rows(&s, AttrId(0), AttrId(1), rows.iter());
        assert_eq!(cube.total(), 4.0);
        assert!((cube.proportion(0, 1) - 0.5).abs() < 1e-12);
        assert_eq!(cube.row_marginal(), vec![0.75, 0.25]);
        assert_eq!(cube.col_marginal(), vec![0.25, 0.75]);
    }

    #[test]
    fn conditionals() {
        let s = schema();
        let rows = [row(0, 0), row(0, 1), row(0, 1)];
        let cube = DataCube::from_rows(&s, AttrId(0), AttrId(1), rows.iter());
        let cond = cube.conditional_given_row(0).unwrap();
        assert!((cond[1] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cube.conditional_given_row(1), None, "no Ford mass");
    }

    #[test]
    fn render_is_a_table() {
        let s = schema();
        let rows = [row(0, 0), row(1, 1)];
        let text = DataCube::from_rows(&s, AttrId(0), AttrId(1), rows.iter()).render();
        assert!(text.contains("Toyota"));
        assert!(text.contains("new"));
        assert!(text.contains("50.00%"));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn same_attribute_rejected() {
        let s = schema();
        let _ = DataCube::new(&s, AttrId(0), AttrId(0));
    }
}
