//! Skew metrics — quantifying sample non-uniformity.
//!
//! The demo exposes a slider between "highest efficiency" and "lowest skew"
//! (§3.1); these metrics put numbers on the skew side:
//!
//! * [`tv_distance`] — total variation distance between two distributions
//!   (e.g. estimated vs true marginal);
//! * [`kl_divergence`] — Kullback–Leibler divergence;
//! * [`chi_square_uniform`] — χ² statistic of per-tuple sample frequencies
//!   against the uniform expectation;
//! * [`skew_coefficient`] — the SIGMOD 2007 style skew measure: the
//!   coefficient of variation of estimated per-tuple selection
//!   probabilities (0 = perfectly uniform).

/// Total variation distance `½ Σ |p_i − q_i|` between two distributions
/// over the same support.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn tv_distance(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must share a support");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Kullback–Leibler divergence `Σ p_i ln(p_i/q_i)` (nats). Terms with
/// `p_i = 0` contribute zero; `q_i = 0` with `p_i > 0` yields infinity.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must share a support");
    p.iter()
        .zip(q)
        .map(|(&a, &b)| {
            if a <= 0.0 {
                0.0
            } else if b <= 0.0 {
                f64::INFINITY
            } else {
                a * (a / b).ln()
            }
        })
        .sum()
}

/// χ² statistic of observed per-tuple frequencies against uniform: with `s`
/// samples over `n` tuples, the expected count is `s/n` per tuple; tuples
/// never observed are included. Larger = more skew; the expectation for a
/// perfectly uniform sampler is ≈ `n − 1`.
///
/// `observed` maps each *observed* tuple to its count; `n_tuples` is the
/// true population size (oracle-side knowledge).
pub fn chi_square_uniform(observed_counts: &[u64], n_tuples: usize, samples: u64) -> f64 {
    assert!(n_tuples > 0, "empty population");
    let expected = samples as f64 / n_tuples as f64;
    if expected <= 0.0 {
        return 0.0;
    }
    let observed_sum: f64 = observed_counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    // Unobserved tuples each contribute expected².../expected = expected.
    let unobserved = n_tuples.saturating_sub(observed_counts.len());
    observed_sum + unobserved as f64 * expected
}

/// The streaming face of the per-tuple frequency metrics: accumulates
/// per-listing-key observation counts as samples arrive, and snapshots
/// into [`chi_square_uniform`] / [`skew_coefficient`] at any time.
///
/// The snapshot iterates counts in key order, so two trackers that saw
/// the same multiset of keys produce bit-identical statistics regardless
/// of arrival order or fork/merge regrouping.
#[derive(Debug, Clone, Default)]
pub struct OnlineFrequencies {
    counts: std::collections::BTreeMap<u64, u64>,
    samples: u64,
}

impl OnlineFrequencies {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation of listing key `key`.
    pub fn add(&mut self, key: u64) {
        *self.counts.entry(key).or_insert(0) += 1;
        self.samples += 1;
    }

    /// Samples recorded so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Observed per-tuple counts in key order.
    pub fn counts(&self) -> Vec<u64> {
        self.counts.values().copied().collect()
    }

    /// χ² against uniform over a population of `n_tuples`
    /// (= [`chi_square_uniform`] over the current counts).
    pub fn chi_square_uniform(&self, n_tuples: usize) -> f64 {
        chi_square_uniform(&self.counts(), n_tuples, self.samples)
    }

    /// Skew coefficient over a population of `n_tuples`
    /// (= [`skew_coefficient`] over the current counts).
    pub fn skew_coefficient(&self, n_tuples: usize) -> f64 {
        skew_coefficient(&self.counts(), n_tuples, self.samples)
    }
}

impl hdsampler_core::SampleSink for OnlineFrequencies {
    fn observe(&mut self, event: &hdsampler_core::SampleEvent<'_>) {
        self.add(event.sample.row.key);
    }

    fn fork(&self) -> Box<dyn hdsampler_core::SampleSink> {
        Box::new(OnlineFrequencies::new())
    }

    fn merge(&mut self, other: Box<dyn hdsampler_core::SampleSink>) {
        let other = hdsampler_core::merged::<OnlineFrequencies>(other);
        for (key, c) in other.counts {
            *self.counts.entry(key).or_insert(0) += c;
        }
        self.samples += other.samples;
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

/// SIGMOD'07-style skew coefficient: the coefficient of variation of the
/// per-tuple selection probabilities, estimated from sample frequencies.
/// 0 for a perfectly uniform sampler; grows with clipping (larger `C`).
///
/// Estimated naively as `sd(freq)/mean(freq)` over all `n_tuples` (absent
/// tuples count as frequency 0), which over-estimates slightly at small
/// sample sizes due to multinomial noise — comparisons should therefore use
/// equal sample sizes, as the experiments do.
pub fn skew_coefficient(observed_counts: &[u64], n_tuples: usize, samples: u64) -> f64 {
    assert!(n_tuples > 0, "empty population");
    if samples == 0 {
        return 0.0;
    }
    let mean = samples as f64 / n_tuples as f64;
    let sum_sq: f64 = observed_counts
        .iter()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        + (n_tuples.saturating_sub(observed_counts.len())) as f64 * mean * mean;
    let var = sum_sq / n_tuples as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tv_identity_and_disjoint() {
        let p = [0.5, 0.3, 0.2];
        assert_eq!(tv_distance(&p, &p), 0.0);
        assert!((tv_distance(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((tv_distance(&[0.6, 0.4], &[0.4, 0.6]) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "support")]
    fn tv_mismatched_support_panics() {
        let _ = tv_distance(&[1.0], &[0.5, 0.5]);
    }

    #[test]
    fn kl_properties() {
        let p = [0.5, 0.5];
        assert_eq!(kl_divergence(&p, &p), 0.0);
        assert!(kl_divergence(&[1.0, 0.0], &[0.5, 0.5]) > 0.0);
        assert_eq!(kl_divergence(&[0.5, 0.5], &[1.0, 0.0]), f64::INFINITY);
        // Zero p-mass terms are fine.
        assert!((kl_divergence(&[0.0, 1.0], &[0.5, 0.5]) - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn chi_square_uniform_counts() {
        // 4 tuples, 8 samples, perfectly even: χ² = 0.
        assert_eq!(chi_square_uniform(&[2, 2, 2, 2], 4, 8), 0.0);
        // All mass on one tuple of 4, 8 samples: expected 2 each;
        // (8-2)²/2 + 3 tuples × 2 = 18 + 6 = 24.
        let chi = chi_square_uniform(&[8], 4, 8);
        assert!((chi - 24.0).abs() < 1e-12, "chi = {chi}");
    }

    #[test]
    fn skew_coefficient_zero_when_even() {
        assert_eq!(skew_coefficient(&[2, 2, 2, 2], 4, 8), 0.0);
        let skew = skew_coefficient(&[8], 4, 8);
        // mean 2, deviations (6, -2, -2, -2): var = (36+12)/4 = 12 → cv =
        // sqrt(12)/2 ≈ 1.732.
        assert!((skew - 12f64.sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn online_frequencies_match_batch_metrics() {
        let mut online = OnlineFrequencies::new();
        for key in [1u64, 2, 1, 1, 3, 2, 1, 1] {
            online.add(key);
        }
        assert_eq!(online.samples(), 8);
        assert_eq!(online.counts(), vec![5, 2, 1]);
        assert_eq!(
            online.chi_square_uniform(4).to_bits(),
            chi_square_uniform(&[5, 2, 1], 4, 8).to_bits()
        );
        assert_eq!(
            online.skew_coefficient(4).to_bits(),
            skew_coefficient(&[5, 2, 1], 4, 8).to_bits()
        );

        // fork/merge regrouping is order-independent: counts land on the
        // same keys and the snapshot iterates in key order.
        use hdsampler_core::SampleSink as _;
        let mut parent = OnlineFrequencies::new();
        let mut child = OnlineFrequencies::new();
        for key in [1u64, 2, 1, 1] {
            child.add(key);
        }
        for key in [3u64, 2, 1, 1] {
            parent.add(key);
        }
        parent.merge(Box::new(child));
        assert_eq!(parent.counts(), online.counts());
        assert_eq!(
            parent.chi_square_uniform(4).to_bits(),
            online.chi_square_uniform(4).to_bits()
        );
    }

    #[test]
    fn skew_orders_samplers_correctly() {
        // A mildly skewed frequency vector must score between the even and
        // the degenerate one.
        let even = skew_coefficient(&[3, 3, 3, 3], 4, 12);
        let mild = skew_coefficient(&[5, 3, 2, 2], 4, 12);
        let bad = skew_coefficient(&[12], 4, 12);
        assert!(even < mild && mild < bad);
    }
}
