//! Marginal histograms — the demo's headline display (Figure 4).
//!
//! [`Histogram`] is itself the online face: it implements
//! [`SampleSink`], so it can be attached to any run and updated live as
//! samples arrive; the batch constructors are thin wrappers over the same
//! incremental [`Histogram::add`] path, which is what makes the online
//! snapshot bit-identical to the post-hoc batch build.

use std::any::Any;

use hdsampler_core::{merged, SampleEvent, SampleSink};
use hdsampler_model::{AttrId, Row, Schema};

/// A (weighted) histogram over one attribute's domain.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    attr: AttrId,
    attr_name: String,
    labels: Vec<String>,
    weights: Vec<f64>,
    total: f64,
}

impl Histogram {
    /// Empty histogram for attribute `attr` of `schema`.
    pub fn new(schema: &Schema, attr: AttrId) -> Self {
        let a = schema.attr_unchecked(attr);
        Histogram {
            attr,
            attr_name: a.name().to_owned(),
            labels: a.domain().map(|v| a.label(v).into_owned()).collect(),
            weights: vec![0.0; a.domain_size()],
            total: 0.0,
        }
    }

    /// Build from rows (weight 1 each).
    pub fn from_rows<'a>(
        schema: &Schema,
        attr: AttrId,
        rows: impl IntoIterator<Item = &'a Row>,
    ) -> Self {
        let mut h = Histogram::new(schema, attr);
        for row in rows {
            h.add(row, 1.0);
        }
        h
    }

    /// Build from `(row, weight)` pairs (importance-weighted samples).
    pub fn from_weighted<'a>(
        schema: &Schema,
        attr: AttrId,
        rows: impl IntoIterator<Item = (&'a Row, f64)>,
    ) -> Self {
        let mut h = Histogram::new(schema, attr);
        for (row, w) in rows {
            h.add(row, w);
        }
        h
    }

    /// Add one observation with the given weight (incremental updates —
    /// the demo refreshes histograms live as samples arrive).
    ///
    /// Non-finite weights (NaN, ±∞) are rejected and the observation is
    /// skipped: a single NaN-weighted importance sample would otherwise
    /// poison every proportion and abort [`Histogram::render`].
    pub fn add(&mut self, row: &Row, weight: f64) {
        if !weight.is_finite() {
            return;
        }
        let v = row.values[self.attr.index()] as usize;
        self.weights[v] += weight;
        self.total += weight;
    }

    /// The current state as an owned value (the live-display snapshot).
    pub fn snapshot(&self) -> Histogram {
        self.clone()
    }

    /// The attribute this histogram describes.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// The attribute's name.
    pub fn attr_name(&self) -> &str {
        &self.attr_name
    }

    /// Value labels in domain order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Raw (weighted) counts per value.
    pub fn counts(&self) -> &[f64] {
        &self.weights
    }

    /// Total weight observed.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Normalized shares per value (all zeros when empty).
    pub fn proportions(&self) -> Vec<f64> {
        if self.total <= 0.0 {
            return vec![0.0; self.weights.len()];
        }
        self.weights.iter().map(|w| w / self.total).collect()
    }

    /// Render as an ASCII bar chart, values sorted by share descending,
    /// `width` columns for the largest bar.
    pub fn render(&self, width: usize) -> String {
        use std::fmt::Write as _;
        let props = self.proportions();
        let mut order: Vec<usize> = (0..props.len()).collect();
        // `total_cmp` is a total order: even if a non-finite weight ever
        // reaches the counts (e.g. through a future constructor), sorting
        // must not abort the display.
        order.sort_by(|&a, &b| props[b].total_cmp(&props[a]));
        let label_w = self
            .labels
            .iter()
            .map(|l| l.chars().count())
            .max()
            .unwrap_or(1);
        let max_p = props
            .iter()
            .cloned()
            .fold(0.0, f64::max)
            .max(f64::MIN_POSITIVE);

        let mut out = String::new();
        let _ = writeln!(out, "{} (n = {:.0})", self.attr_name, self.total);
        for i in order {
            let bar_len = ((props[i] / max_p) * width as f64).round() as usize;
            let _ = writeln!(
                out,
                "  {:label_w$} {:6.2}% |{}",
                self.labels[i],
                props[i] * 100.0,
                "#".repeat(bar_len),
            );
        }
        out
    }
}

impl SampleSink for Histogram {
    fn observe(&mut self, event: &SampleEvent<'_>) {
        self.add(&event.sample.row, event.sample.weight);
    }

    fn fork(&self) -> Box<dyn SampleSink> {
        let mut empty = self.clone();
        empty.weights.iter_mut().for_each(|w| *w = 0.0);
        empty.total = 0.0;
        Box::new(empty)
    }

    fn merge(&mut self, other: Box<dyn SampleSink>) {
        let other = merged::<Histogram>(other);
        assert_eq!(self.attr, other.attr, "merge requires the same attribute");
        for (w, o) in self.weights.iter_mut().zip(&other.weights) {
            *w += o;
        }
        self.total += other.total;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_model::{Attribute, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new()
            .attribute(Attribute::categorical("make", ["Toyota", "Honda", "Ford"]).unwrap())
            .finish()
            .unwrap()
    }

    fn row(v: u16) -> Row {
        Row::new(v as u64, vec![v], vec![])
    }

    #[test]
    fn counts_and_proportions() {
        let s = schema();
        let rows = [row(0), row(0), row(1), row(0)];
        let h = Histogram::from_rows(&s, AttrId(0), rows.iter());
        assert_eq!(h.counts(), &[3.0, 1.0, 0.0]);
        assert_eq!(h.proportions(), vec![0.75, 0.25, 0.0]);
        assert_eq!(h.total(), 4.0);
        assert_eq!(h.attr_name(), "make");
    }

    #[test]
    fn weighted_observations() {
        let s = schema();
        let r0 = row(0);
        let r1 = row(1);
        let h = Histogram::from_weighted(&s, AttrId(0), [(&r0, 1.0), (&r1, 3.0)]);
        assert_eq!(h.proportions(), vec![0.25, 0.75, 0.0]);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = schema();
        let h = Histogram::new(&s, AttrId(0));
        assert_eq!(h.proportions(), vec![0.0; 3]);
        assert_eq!(h.total(), 0.0);
    }

    #[test]
    fn incremental_add_matches_batch() {
        let s = schema();
        let rows = [row(2), row(1), row(2)];
        let batch = Histogram::from_rows(&s, AttrId(0), rows.iter());
        let mut inc = Histogram::new(&s, AttrId(0));
        for r in &rows {
            inc.add(r, 1.0);
        }
        assert_eq!(batch, inc);
    }

    #[test]
    fn non_finite_weights_are_rejected_and_render_survives() {
        // Regression: a NaN-weighted importance sample used to poison the
        // proportions, and `render`'s `partial_cmp(..).expect("finite")`
        // aborted the whole display.
        let s = schema();
        let mut h = Histogram::new(&s, AttrId(0));
        h.add(&row(0), 2.0);
        h.add(&row(1), f64::NAN);
        h.add(&row(1), f64::INFINITY);
        h.add(&row(1), f64::NEG_INFINITY);
        h.add(&row(1), 1.0);
        assert_eq!(h.counts(), &[2.0, 1.0, 0.0], "non-finite adds skipped");
        assert_eq!(h.total(), 3.0);
        let text = h.render(20);
        assert!(text.contains("Toyota"), "{text}");
        assert!(!text.contains("NaN"), "{text}");
    }

    #[test]
    fn sink_fork_merge_matches_single_stream() {
        let s = schema();
        let rows = [row(0), row(2), row(1), row(0), row(2)];
        let batch = Histogram::from_rows(&s, AttrId(0), rows.iter());

        let mut parent = Histogram::new(&s, AttrId(0));
        let sample = |r: &Row| hdsampler_core::Sample {
            row: r.clone(),
            weight: 1.0,
            meta: hdsampler_core::SampleMeta::default(),
        };
        fn ev<'a>(smp: &'a hdsampler_core::Sample, i: usize, n: usize) -> SampleEvent<'a> {
            SampleEvent {
                sample: smp,
                site: 0,
                walker: 0,
                collected: i + 1,
                target: n,
                queries: 0,
                requests: 0,
            }
        }
        let mut a = parent.fork();
        let mut b = parent.fork();
        for (i, r) in rows.iter().enumerate() {
            let smp = sample(r);
            if i % 2 == 0 {
                a.observe(&ev(&smp, i, rows.len()));
            } else {
                b.observe(&ev(&smp, i, rows.len()));
            }
        }
        parent.merge(b);
        parent.merge(a);
        assert_eq!(parent, batch, "merge order is irrelevant for counts");
        assert_eq!(parent.snapshot(), batch);
    }

    #[test]
    fn render_contains_labels_and_percentages() {
        let s = schema();
        let rows = [row(0), row(0), row(1)];
        let text = Histogram::from_rows(&s, AttrId(0), rows.iter()).render(20);
        assert!(text.contains("make"));
        assert!(text.contains("Toyota"));
        assert!(text.contains("66.67%"));
        assert!(text.contains('#'));
        // Largest bar first.
        let toyota_pos = text.find("Toyota").unwrap();
        let honda_pos = text.find("Honda").unwrap();
        assert!(toyota_pos < honda_pos);
    }
}
