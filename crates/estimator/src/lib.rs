//! # hdsampler-estimator
//!
//! The Output Module (paper §3.4): everything HDSampler computes *from*
//! samples for analysts —
//!
//! * [`histogram`] — marginal histograms over attribute values, the demo's
//!   headline display (Figure 4), with ASCII rendering;
//! * [`marginal`] — marginal distribution estimates with Wilson confidence
//!   intervals;
//! * [`aggregate`] — approximate COUNT / SUM / AVG / proportion answering
//!   over arbitrary client-side predicates ("the percentage of Japanese
//!   cars", §1), including weighted variants for importance-weighted
//!   samples;
//! * [`size`] — database-size estimation by capture–recapture over listing
//!   keys (an extension: the paper needs `N` for COUNT/SUM scaling and
//!   Google Base would not reveal it);
//! * [`skew`] — the skew metrics that quantify the other half of the
//!   efficiency ↔ skew trade-off;
//! * [`compare`] — side-by-side validation of estimates against ground
//!   truth (the §3.4 "Results Validation" methodology);
//! * [`cube`] — small group-by data cubes from samples ("approximate
//!   aggregate queries on a resultant data cube", §3.4).
//!
//! ## Streaming faces
//!
//! Every estimator has an online face implementing
//! [`SampleSink`](hdsampler_core::SampleSink), so it can be attached to a
//! run and updated live as samples arrive, with a `snapshot()` view at
//! any time: [`Histogram`] and [`DataCube`] are their own sinks;
//! [`OnlineMarginal`], [`OnlineProportion`], [`OnlineCount`],
//! [`OnlineAvg`], [`OnlineSum`], [`OnlineSize`] and [`OnlineFrequencies`]
//! wrap the rest. The batch constructors are thin wrappers over the same
//! incremental path — feeding a stream through a sink and snapshotting at
//! the end is bit-identical to the post-hoc batch computation.

pub mod aggregate;
pub mod compare;
pub mod cube;
pub mod histogram;
pub mod marginal;
pub mod size;
pub mod skew;

pub use aggregate::{
    AggregateEstimate, Estimator, OnlineAvg, OnlineCount, OnlineProportion, OnlineSum,
};
pub use compare::{fmt_stat, MarginalComparison};
pub use cube::DataCube;
pub use histogram::Histogram;
pub use marginal::{MarginalEstimate, OnlineMarginal};
pub use size::{capture_recapture, OnlineSize};
pub use skew::{
    chi_square_uniform, kl_divergence, skew_coefficient, tv_distance, OnlineFrequencies,
};
