//! # hdsampler-estimator
//!
//! The Output Module (paper §3.4): everything HDSampler computes *from*
//! samples for analysts —
//!
//! * [`histogram`] — marginal histograms over attribute values, the demo's
//!   headline display (Figure 4), with ASCII rendering;
//! * [`marginal`] — marginal distribution estimates with Wilson confidence
//!   intervals;
//! * [`aggregate`] — approximate COUNT / SUM / AVG / proportion answering
//!   over arbitrary client-side predicates ("the percentage of Japanese
//!   cars", §1), including weighted variants for importance-weighted
//!   samples;
//! * [`size`] — database-size estimation by capture–recapture over listing
//!   keys (an extension: the paper needs `N` for COUNT/SUM scaling and
//!   Google Base would not reveal it);
//! * [`skew`] — the skew metrics that quantify the other half of the
//!   efficiency ↔ skew trade-off;
//! * [`compare`] — side-by-side validation of estimates against ground
//!   truth (the §3.4 "Results Validation" methodology);
//! * [`cube`] — small group-by data cubes from samples ("approximate
//!   aggregate queries on a resultant data cube", §3.4).

pub mod aggregate;
pub mod compare;
pub mod cube;
pub mod histogram;
pub mod marginal;
pub mod size;
pub mod skew;

pub use aggregate::{AggregateEstimate, Estimator};
pub use compare::MarginalComparison;
pub use cube::DataCube;
pub use histogram::Histogram;
pub use marginal::MarginalEstimate;
pub use size::capture_recapture;
pub use skew::{chi_square_uniform, kl_divergence, skew_coefficient, tv_distance};
