//! Database-size estimation by capture–recapture.
//!
//! COUNT and SUM estimates need the population size `N`
//! ([`Estimator::count`](crate::aggregate::Estimator::count)). Google Base
//! never reveals it exactly. With-replacement uniform samples collide on
//! listing keys at a rate governed by the birthday paradox, which yields a
//! consistent estimator of `N` — an extension the sampling literature
//! suggests and our samplers make practical because every sample carries a
//! stable listing key.

/// Capture–recapture (birthday) estimate of the population size from `n`
/// with-replacement draws among which `n − d` are repeat observations
/// (`d` = distinct keys).
///
/// With `c = n − d` collisions, the expected number of colliding pairs is
/// `n(n−1)/(2N)`, so `N̂ = n(n−1)/(2c)` (using collisions as a proxy for
/// colliding pairs, accurate while `c ≪ n`). Returns `None` when no
/// collision has been observed yet — the data only supports a lower bound
/// of order `n²` then.
pub fn capture_recapture(n_draws: usize, n_distinct: usize) -> Option<f64> {
    assert!(n_distinct <= n_draws, "distinct keys cannot exceed draws");
    let collisions = (n_draws - n_distinct) as f64;
    if collisions == 0.0 || n_draws < 2 {
        return None;
    }
    Some(n_draws as f64 * (n_draws as f64 - 1.0) / (2.0 * collisions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn no_collisions_no_estimate() {
        assert_eq!(capture_recapture(100, 100), None);
        assert_eq!(capture_recapture(1, 1), None);
        assert_eq!(capture_recapture(0, 0), None);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn impossible_inputs_panic() {
        let _ = capture_recapture(5, 6);
    }

    #[test]
    fn recovers_known_population_size() {
        // Simulate uniform with-replacement draws from N = 5000 and check
        // the estimator lands within 25 % (it is noisy but consistent).
        let n_pop = 5_000u64;
        let mut rng = StdRng::seed_from_u64(42);
        let mut estimates = Vec::new();
        for _ in 0..10 {
            let draws = 1_500;
            let mut seen = std::collections::HashSet::new();
            for _ in 0..draws {
                seen.insert(rng.gen_range(0..n_pop));
            }
            if let Some(est) = capture_recapture(draws, seen.len()) {
                estimates.push(est);
            }
        }
        let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
        let rel_err = (mean - n_pop as f64).abs() / n_pop as f64;
        assert!(rel_err < 0.25, "mean estimate {mean} vs true {n_pop}");
    }

    #[test]
    fn more_collisions_means_smaller_population() {
        let few = capture_recapture(1000, 995).unwrap();
        let many = capture_recapture(1000, 900).unwrap();
        assert!(many < few);
    }
}
