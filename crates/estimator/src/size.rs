//! Database-size estimation by capture–recapture.
//!
//! COUNT and SUM estimates need the population size `N`
//! ([`Estimator::count`](crate::aggregate::Estimator::count)). Google Base
//! never reveals it exactly. With-replacement uniform samples collide on
//! listing keys at a rate governed by the birthday paradox, which yields a
//! consistent estimator of `N` — an extension the sampling literature
//! suggests and our samplers make practical because every sample carries a
//! stable listing key.

/// Capture–recapture (birthday) estimate of the population size from `n`
/// with-replacement draws among which `n − d` are repeat observations
/// (`d` = distinct keys).
///
/// With `c = n − d` collisions, the expected number of colliding pairs is
/// `n(n−1)/(2N)`, so `N̂ = n(n−1)/(2c)` (using collisions as a proxy for
/// colliding pairs, accurate while `c ≪ n`). Returns `None` when no
/// collision has been observed yet — the data only supports a lower bound
/// of order `n²` then.
pub fn capture_recapture(n_draws: usize, n_distinct: usize) -> Option<f64> {
    assert!(n_distinct <= n_draws, "distinct keys cannot exceed draws");
    let collisions = (n_draws - n_distinct) as f64;
    if collisions == 0.0 || n_draws < 2 {
        return None;
    }
    Some(n_draws as f64 * (n_draws as f64 - 1.0) / (2.0 * collisions))
}

/// The streaming face of [`capture_recapture`]: tracks draws and distinct
/// listing keys as samples arrive, so the size estimate can refresh live
/// mid-run.
#[derive(Debug, Clone, Default)]
pub struct OnlineSize {
    draws: usize,
    seen: std::collections::HashSet<u64>,
}

impl OnlineSize {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one draw of listing key `key`.
    pub fn add(&mut self, key: u64) {
        self.draws += 1;
        self.seen.insert(key);
    }

    /// Draws recorded so far.
    pub fn draws(&self) -> usize {
        self.draws
    }

    /// Distinct listing keys seen so far.
    pub fn distinct(&self) -> usize {
        self.seen.len()
    }

    /// The current size estimate — exactly
    /// `capture_recapture(draws, distinct)`.
    pub fn snapshot(&self) -> Option<f64> {
        capture_recapture(self.draws, self.seen.len())
    }
}

impl hdsampler_core::SampleSink for OnlineSize {
    fn observe(&mut self, event: &hdsampler_core::SampleEvent<'_>) {
        self.add(event.sample.row.key);
    }

    fn fork(&self) -> Box<dyn hdsampler_core::SampleSink> {
        Box::new(OnlineSize::new())
    }

    fn merge(&mut self, other: Box<dyn hdsampler_core::SampleSink>) {
        let other = hdsampler_core::merged::<OnlineSize>(other);
        self.draws += other.draws;
        self.seen.extend(other.seen);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn no_collisions_no_estimate() {
        assert_eq!(capture_recapture(100, 100), None);
        assert_eq!(capture_recapture(1, 1), None);
        assert_eq!(capture_recapture(0, 0), None);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn impossible_inputs_panic() {
        let _ = capture_recapture(5, 6);
    }

    #[test]
    fn recovers_known_population_size() {
        // Simulate uniform with-replacement draws from N = 5000 and check
        // the estimator lands within 25 % (it is noisy but consistent).
        let n_pop = 5_000u64;
        let mut rng = StdRng::seed_from_u64(42);
        let mut estimates = Vec::new();
        for _ in 0..10 {
            let draws = 1_500;
            let mut seen = std::collections::HashSet::new();
            for _ in 0..draws {
                seen.insert(rng.gen_range(0..n_pop));
            }
            if let Some(est) = capture_recapture(draws, seen.len()) {
                estimates.push(est);
            }
        }
        let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
        let rel_err = (mean - n_pop as f64).abs() / n_pop as f64;
        assert!(rel_err < 0.25, "mean estimate {mean} vs true {n_pop}");
    }

    #[test]
    fn more_collisions_means_smaller_population() {
        let few = capture_recapture(1000, 995).unwrap();
        let many = capture_recapture(1000, 900).unwrap();
        assert!(many < few);
    }

    #[test]
    fn online_size_matches_batch() {
        use hdsampler_core::SampleSink as _;
        let keys = [3u64, 7, 3, 9, 7, 7, 11];
        let mut online = OnlineSize::new();
        for &k in &keys {
            online.add(k);
        }
        assert_eq!(online.draws(), 7);
        assert_eq!(online.distinct(), 4);
        assert_eq!(online.snapshot(), capture_recapture(7, 4));

        // fork/merge unions the key sets exactly.
        let mut parent = OnlineSize::new();
        let mut a = parent.fork();
        let mut b = parent.fork();
        let as_size = |sink: &mut Box<dyn hdsampler_core::SampleSink>, k: u64| {
            use hdsampler_core::{Sample, SampleEvent, SampleMeta};
            let s = Sample {
                row: hdsampler_model::Row::new(k, vec![0], vec![]),
                weight: 1.0,
                meta: SampleMeta::default(),
            };
            sink.observe(&SampleEvent {
                sample: &s,
                site: 0,
                walker: 0,
                collected: 1,
                target: 7,
                queries: 0,
                requests: 0,
            });
        };
        for &k in &keys[..4] {
            as_size(&mut a, k);
        }
        for &k in &keys[4..] {
            as_size(&mut b, k);
        }
        parent.merge(b);
        parent.merge(a);
        assert_eq!(parent.draws(), 7);
        assert_eq!(parent.distinct(), 4);
        assert_eq!(parent.snapshot(), online.snapshot());
    }
}
