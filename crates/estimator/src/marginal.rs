//! Marginal distribution estimates with confidence intervals.
//!
//! [`OnlineMarginal`] is the streaming face: a [`SampleSink`] that keeps
//! per-value counts as samples arrive and produces a [`MarginalEstimate`]
//! snapshot at any time. [`MarginalEstimate::from_rows`] is a thin
//! wrapper over it, so batch and online results are identical by
//! construction. The marginal is an *unweighted* estimator — every
//! observed sample counts once, matching the batch constructor.

use std::any::Any;

use hdsampler_core::{merged, SampleEvent, SampleSink};
use hdsampler_model::{AttrId, Row, Schema};

/// Estimated marginal distribution of one attribute, with per-value Wilson
/// score intervals.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginalEstimate {
    attr: AttrId,
    n: usize,
    proportions: Vec<f64>,
    lo: Vec<f64>,
    hi: Vec<f64>,
}

/// Wilson score interval for `successes/n` at confidence `z` (e.g. 1.96 for
/// 95 %). Returns `(lo, hi)` clipped to `[0, 1]`.
pub fn wilson_interval(successes: f64, n: f64, z: f64) -> (f64, f64) {
    if n <= 0.0 {
        return (0.0, 1.0);
    }
    let p = successes / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((centre - half).max(0.0), (centre + half).min(1.0))
}

/// The streaming face of [`MarginalEstimate`]: per-value counts updated
/// sample by sample, snapshottable into the full interval estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineMarginal {
    attr: AttrId,
    counts: Vec<usize>,
    n: usize,
}

impl OnlineMarginal {
    /// Empty counter for attribute `attr` of `schema`.
    pub fn new(schema: &Schema, attr: AttrId) -> Self {
        OnlineMarginal {
            attr,
            counts: vec![0; schema.domain_size(attr)],
            n: 0,
        }
    }

    /// Count one observed row.
    pub fn add(&mut self, row: &Row) {
        self.counts[row.values[self.attr.index()] as usize] += 1;
        self.n += 1;
    }

    /// Samples counted so far.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The current state as a full [`MarginalEstimate`] (95 % Wilson
    /// intervals) — exactly what [`MarginalEstimate::from_rows`] would
    /// compute over the same stream.
    pub fn snapshot(&self) -> MarginalEstimate {
        let dom = self.counts.len();
        let mut proportions = Vec::with_capacity(dom);
        let mut lo = Vec::with_capacity(dom);
        let mut hi = Vec::with_capacity(dom);
        for &c in &self.counts {
            let p = if self.n == 0 {
                0.0
            } else {
                c as f64 / self.n as f64
            };
            let (l, h) = wilson_interval(c as f64, self.n as f64, 1.96);
            proportions.push(p);
            lo.push(l);
            hi.push(h);
        }
        MarginalEstimate {
            attr: self.attr,
            n: self.n,
            proportions,
            lo,
            hi,
        }
    }
}

impl SampleSink for OnlineMarginal {
    fn observe(&mut self, event: &SampleEvent<'_>) {
        self.add(&event.sample.row);
    }

    fn fork(&self) -> Box<dyn SampleSink> {
        Box::new(OnlineMarginal {
            attr: self.attr,
            counts: vec![0; self.counts.len()],
            n: 0,
        })
    }

    fn merge(&mut self, other: Box<dyn SampleSink>) {
        let other = merged::<OnlineMarginal>(other);
        assert_eq!(self.attr, other.attr, "merge requires the same attribute");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.n += other.n;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl MarginalEstimate {
    /// Estimate the marginal of `attr` from unweighted sample rows at 95 %
    /// confidence (a batch convenience over [`OnlineMarginal`]).
    pub fn from_rows<'a>(
        schema: &Schema,
        attr: AttrId,
        rows: impl IntoIterator<Item = &'a Row>,
    ) -> Self {
        let mut online = OnlineMarginal::new(schema, attr);
        for row in rows {
            online.add(row);
        }
        online.snapshot()
    }

    /// The attribute estimated.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// Sample size used.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Point estimates per domain value.
    pub fn proportions(&self) -> &[f64] {
        &self.proportions
    }

    /// 95 % interval lower bounds.
    pub fn lower_bounds(&self) -> &[f64] {
        &self.lo
    }

    /// 95 % interval upper bounds.
    pub fn upper_bounds(&self) -> &[f64] {
        &self.hi
    }

    /// Whether value `v`'s interval covers a reference proportion.
    pub fn covers(&self, v: usize, reference: f64) -> bool {
        self.lo[v] <= reference && reference <= self.hi[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_model::{Attribute, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new()
            .attribute(Attribute::categorical("c", ["a", "b", "x"]).unwrap())
            .finish()
            .unwrap()
    }

    fn row(v: u16) -> Row {
        Row::new(v as u64, vec![v], vec![])
    }

    #[test]
    fn point_estimates_sum_to_one() {
        let s = schema();
        let rows: Vec<Row> = (0..90).map(|i| row(i % 3)).collect();
        let m = MarginalEstimate::from_rows(&s, AttrId(0), rows.iter());
        assert_eq!(m.n(), 90);
        let total: f64 = m.proportions().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        for v in 0..3 {
            assert!((m.proportions()[v] - 1.0 / 3.0).abs() < 1e-12);
            assert!(m.lower_bounds()[v] <= m.proportions()[v]);
            assert!(m.proportions()[v] <= m.upper_bounds()[v]);
        }
    }

    #[test]
    fn intervals_shrink_with_n() {
        let s = schema();
        let small: Vec<Row> = (0..20).map(|i| row(i % 2)).collect();
        let large: Vec<Row> = (0..2000).map(|i| row(i % 2)).collect();
        let ms = MarginalEstimate::from_rows(&s, AttrId(0), small.iter());
        let ml = MarginalEstimate::from_rows(&s, AttrId(0), large.iter());
        let width_small = ms.upper_bounds()[0] - ms.lower_bounds()[0];
        let width_large = ml.upper_bounds()[0] - ml.lower_bounds()[0];
        assert!(width_large < width_small / 3.0);
    }

    #[test]
    fn wilson_interval_known_values() {
        // p̂ = 0.5, n = 100, z = 1.96 → ≈ (0.404, 0.596).
        let (lo, hi) = wilson_interval(50.0, 100.0, 1.96);
        assert!((lo - 0.404).abs() < 0.005, "lo = {lo}");
        assert!((hi - 0.596).abs() < 0.005, "hi = {hi}");
        // Degenerate inputs stay in [0, 1].
        let (lo, hi) = wilson_interval(0.0, 10.0, 1.96);
        assert!(lo == 0.0 && hi < 0.35);
        let (lo, hi) = wilson_interval(10.0, 10.0, 1.96);
        assert!(lo > 0.65 && hi == 1.0);
        assert_eq!(wilson_interval(0.0, 0.0, 1.96), (0.0, 1.0));
    }

    #[test]
    fn coverage_check() {
        let s = schema();
        let rows: Vec<Row> = (0..100).map(|i| row(u16::from(i % 4 == 0))).collect();
        let m = MarginalEstimate::from_rows(&s, AttrId(0), rows.iter());
        assert!(m.covers(1, 0.25), "true share 0.25 inside the interval");
        assert!(!m.covers(1, 0.60), "0.60 far outside");
    }
}
