//! Marginal distribution estimates with confidence intervals.

use hdsampler_model::{AttrId, Row, Schema};

/// Estimated marginal distribution of one attribute, with per-value Wilson
/// score intervals.
#[derive(Debug, Clone)]
pub struct MarginalEstimate {
    attr: AttrId,
    n: usize,
    proportions: Vec<f64>,
    lo: Vec<f64>,
    hi: Vec<f64>,
}

/// Wilson score interval for `successes/n` at confidence `z` (e.g. 1.96 for
/// 95 %). Returns `(lo, hi)` clipped to `[0, 1]`.
pub fn wilson_interval(successes: f64, n: f64, z: f64) -> (f64, f64) {
    if n <= 0.0 {
        return (0.0, 1.0);
    }
    let p = successes / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((centre - half).max(0.0), (centre + half).min(1.0))
}

impl MarginalEstimate {
    /// Estimate the marginal of `attr` from unweighted sample rows at 95 %
    /// confidence.
    pub fn from_rows<'a>(
        schema: &Schema,
        attr: AttrId,
        rows: impl IntoIterator<Item = &'a Row>,
    ) -> Self {
        let dom = schema.domain_size(attr);
        let mut counts = vec![0usize; dom];
        let mut n = 0usize;
        for row in rows {
            counts[row.values[attr.index()] as usize] += 1;
            n += 1;
        }
        let mut proportions = Vec::with_capacity(dom);
        let mut lo = Vec::with_capacity(dom);
        let mut hi = Vec::with_capacity(dom);
        for &c in &counts {
            let p = if n == 0 { 0.0 } else { c as f64 / n as f64 };
            let (l, h) = wilson_interval(c as f64, n as f64, 1.96);
            proportions.push(p);
            lo.push(l);
            hi.push(h);
        }
        MarginalEstimate {
            attr,
            n,
            proportions,
            lo,
            hi,
        }
    }

    /// The attribute estimated.
    pub fn attr(&self) -> AttrId {
        self.attr
    }

    /// Sample size used.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Point estimates per domain value.
    pub fn proportions(&self) -> &[f64] {
        &self.proportions
    }

    /// 95 % interval lower bounds.
    pub fn lower_bounds(&self) -> &[f64] {
        &self.lo
    }

    /// 95 % interval upper bounds.
    pub fn upper_bounds(&self) -> &[f64] {
        &self.hi
    }

    /// Whether value `v`'s interval covers a reference proportion.
    pub fn covers(&self, v: usize, reference: f64) -> bool {
        self.lo[v] <= reference && reference <= self.hi[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_model::{Attribute, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new()
            .attribute(Attribute::categorical("c", ["a", "b", "x"]).unwrap())
            .finish()
            .unwrap()
    }

    fn row(v: u16) -> Row {
        Row::new(v as u64, vec![v], vec![])
    }

    #[test]
    fn point_estimates_sum_to_one() {
        let s = schema();
        let rows: Vec<Row> = (0..90).map(|i| row(i % 3)).collect();
        let m = MarginalEstimate::from_rows(&s, AttrId(0), rows.iter());
        assert_eq!(m.n(), 90);
        let total: f64 = m.proportions().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        for v in 0..3 {
            assert!((m.proportions()[v] - 1.0 / 3.0).abs() < 1e-12);
            assert!(m.lower_bounds()[v] <= m.proportions()[v]);
            assert!(m.proportions()[v] <= m.upper_bounds()[v]);
        }
    }

    #[test]
    fn intervals_shrink_with_n() {
        let s = schema();
        let small: Vec<Row> = (0..20).map(|i| row(i % 2)).collect();
        let large: Vec<Row> = (0..2000).map(|i| row(i % 2)).collect();
        let ms = MarginalEstimate::from_rows(&s, AttrId(0), small.iter());
        let ml = MarginalEstimate::from_rows(&s, AttrId(0), large.iter());
        let width_small = ms.upper_bounds()[0] - ms.lower_bounds()[0];
        let width_large = ml.upper_bounds()[0] - ml.lower_bounds()[0];
        assert!(width_large < width_small / 3.0);
    }

    #[test]
    fn wilson_interval_known_values() {
        // p̂ = 0.5, n = 100, z = 1.96 → ≈ (0.404, 0.596).
        let (lo, hi) = wilson_interval(50.0, 100.0, 1.96);
        assert!((lo - 0.404).abs() < 0.005, "lo = {lo}");
        assert!((hi - 0.596).abs() < 0.005, "hi = {hi}");
        // Degenerate inputs stay in [0, 1].
        let (lo, hi) = wilson_interval(0.0, 10.0, 1.96);
        assert!(lo == 0.0 && hi < 0.35);
        let (lo, hi) = wilson_interval(10.0, 10.0, 1.96);
        assert!(lo > 0.65 && hi == 1.0);
        assert_eq!(wilson_interval(0.0, 0.0, 1.96), (0.0, 1.0));
    }

    #[test]
    fn coverage_check() {
        let s = schema();
        let rows: Vec<Row> = (0..100).map(|i| row(u16::from(i % 4 == 0))).collect();
        let m = MarginalEstimate::from_rows(&s, AttrId(0), rows.iter());
        assert!(m.covers(1, 0.25), "true share 0.25 inside the interval");
        assert!(!m.covers(1, 0.60), "0.60 far outside");
    }
}
