//! Property-based tests for the estimators: interval sanity, metric
//! axioms, and consistency between the weighted and unweighted paths.

use hdsampler_core::{Sample, SampleMeta, SampleSet};
use hdsampler_estimator::marginal::wilson_interval;
use hdsampler_estimator::{capture_recapture, kl_divergence, tv_distance, Estimator, Histogram};
use hdsampler_model::{Attribute, MeasureId, Row, SchemaBuilder};
use proptest::prelude::*;

fn sample(v: u16, measure: f64, weight: f64) -> Sample {
    Sample {
        row: Row::new(
            (v as u64) << 32 | measure.to_bits() & 0xFFFF_FFFF,
            vec![v],
            vec![measure],
        ),
        weight,
        meta: SampleMeta::default(),
    }
}

/// Normalize a weight vector into a distribution.
fn normalize(ws: &[f64]) -> Vec<f64> {
    let total: f64 = ws.iter().sum();
    ws.iter().map(|w| w / total).collect()
}

proptest! {
    /// Wilson intervals are ordered, bounded, contain the point estimate,
    /// and shrink when n grows at fixed p̂.
    #[test]
    fn wilson_interval_sanity(successes in 0u32..500, extra in 0u32..500, scale in 1u32..20) {
        let n = (successes + extra) as f64;
        prop_assume!(n > 0.0);
        let (lo, hi) = wilson_interval(successes as f64, n, 1.96);
        let p = successes as f64 / n;
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
        prop_assert!(lo <= p + 1e-12 && p <= hi + 1e-12);
        let (lo2, hi2) =
            wilson_interval((successes * scale) as f64, n * scale as f64, 1.96);
        prop_assert!(hi2 - lo2 <= hi - lo + 1e-12, "width shrinks with n");
    }

    /// TV distance is a metric-ish: symmetric, zero on identity, bounded by
    /// 1 on distributions.
    #[test]
    fn tv_axioms(ws_a in prop::collection::vec(0.01f64..10.0, 2..10)) {
        let n = ws_a.len();
        let p = normalize(&ws_a);
        let mut rev = p.clone();
        rev.reverse();
        prop_assert!(tv_distance(&p, &p).abs() < 1e-12);
        prop_assert!((tv_distance(&p, &rev) - tv_distance(&rev, &p)).abs() < 1e-12);
        let point = {
            let mut v = vec![0.0; n];
            v[0] = 1.0;
            v
        };
        prop_assert!(tv_distance(&p, &point) <= 1.0 + 1e-12);
        // KL is non-negative on strictly positive distributions.
        prop_assert!(kl_divergence(&p, &rev) >= -1e-12);
    }

    /// Histogram proportions form a distribution and the estimator's
    /// proportion agrees with the histogram mass.
    #[test]
    fn histogram_and_estimator_agree(values in prop::collection::vec(0u16..4, 1..200)) {
        let schema = SchemaBuilder::new()
            .attribute(Attribute::categorical("c", ["a", "b", "x", "y"]).unwrap())
            .finish()
            .unwrap();
        let set: SampleSet = values.iter().map(|&v| sample(v, 0.0, 1.0)).collect();
        let hist = Histogram::from_rows(&schema, hdsampler_model::AttrId(0), set.rows());
        let props = hist.proportions();
        prop_assert!((props.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for v in 0..4u16 {
            let est = Estimator::new(&set).proportion(|r| r.values[0] == v);
            prop_assert!((est.value - props[v as usize]).abs() < 1e-12);
            prop_assert!(est.covers(est.value));
        }
    }

    /// Weighted estimates interpolate between the pure per-value answers:
    /// a weighted proportion always lies in [0, 1] and matches the manual
    /// self-normalized computation.
    #[test]
    fn weighted_proportion_matches_manual(
        data in prop::collection::vec((0u16..2, 0.1f64..10.0), 1..100),
    ) {
        let set: SampleSet = data.iter().map(|&(v, w)| sample(v, 0.0, w)).collect();
        let est = Estimator::new(&set).proportion(|r| r.values[0] == 1);
        let total: f64 = data.iter().map(|&(_, w)| w).sum();
        let hits: f64 = data.iter().filter(|&&(v, _)| v == 1).map(|&(_, w)| w).sum();
        prop_assert!((est.value - hits / total).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&est.value));
    }

    /// AVG with unit weights equals the arithmetic mean; COUNT scales the
    /// proportion by N linearly.
    #[test]
    fn avg_and_count_consistency(
        measures in prop::collection::vec(-100.0f64..100.0, 2..100),
        n_total in 1.0f64..1e6,
    ) {
        let set: SampleSet = measures.iter().map(|&m| sample(0, m, 1.0)).collect();
        let est = Estimator::new(&set);
        let avg = est.avg(MeasureId(0), |_| true);
        let mean = measures.iter().sum::<f64>() / measures.len() as f64;
        prop_assert!((avg.value - mean).abs() < 1e-9);

        let count = est.count(n_total, |r| r.values[0] == 0);
        prop_assert!((count.value - n_total).abs() < 1e-6, "all samples match");
    }

    /// Capture–recapture: more distinct keys (fewer collisions) implies a
    /// larger size estimate; estimates are positive.
    #[test]
    fn capture_recapture_monotone(n in 4usize..5000, d1 in 2usize..4000, d2 in 2usize..4000) {
        let d_lo = d1.min(d2).min(n - 1);
        let d_hi = d1.max(d2).min(n - 1);
        prop_assume!(d_lo < d_hi);
        let est_lo = capture_recapture(n, d_lo).unwrap();
        let est_hi = capture_recapture(n, d_hi).unwrap();
        prop_assert!(est_lo > 0.0 && est_hi > 0.0);
        prop_assert!(est_hi >= est_lo, "more distinct ⇒ larger estimate");
    }
}
