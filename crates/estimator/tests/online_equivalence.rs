//! Batch ≡ online equivalence: every estimator's streaming face, fed a
//! random sample stream through the [`SampleSink`] interface, must agree
//! with its batch constructor —
//!
//! * **bit-exact** when observed sequentially (the batch constructors are
//!   thin wrappers over the same accumulation, in the same order), and
//! * up to float re-association when the stream is split at arbitrary
//!   points across forked sinks and merged back in arbitrary worker
//!   order (parallel-worker order-independence).

use hdsampler_core::{Sample, SampleEvent, SampleMeta, SampleSet, SampleSink};
use hdsampler_estimator::{
    capture_recapture, AggregateEstimate, DataCube, Estimator, Histogram, MarginalEstimate,
    OnlineAvg, OnlineCount, OnlineFrequencies, OnlineMarginal, OnlineProportion, OnlineSize,
    OnlineSum,
};
use hdsampler_model::{AttrId, Attribute, Measure, MeasureId, Row, Schema, SchemaBuilder};
use proptest::prelude::*;

fn schema() -> Schema {
    SchemaBuilder::new()
        .attribute(Attribute::categorical("make", ["Toyota", "Honda", "Ford"]).unwrap())
        .attribute(Attribute::categorical("cond", ["new", "used"]).unwrap())
        .measure(Measure::new("price"))
        .finish()
        .unwrap()
}

/// One random sample: `(make, cond, price, weight, key)` — keys collide
/// on purpose so the size/frequency estimators see repeats.
fn sample(spec: &(u16, u16, f64, f64)) -> Sample {
    let (make, cond, price, weight) = *spec;
    Sample {
        row: Row::new(
            (make as u64) * 2 + cond as u64, // 6 possible keys → collisions
            vec![make % 3, cond % 2],
            vec![price],
        ),
        weight,
        meta: SampleMeta::default(),
    }
}

/// Observe `samples[range]` into `sink` through the SampleSink interface.
fn observe_into(sink: &mut dyn SampleSink, samples: &[Sample], target: usize) {
    for (i, s) in samples.iter().enumerate() {
        sink.observe(&SampleEvent {
            sample: s,
            site: 0,
            walker: 0,
            collected: i + 1,
            target,
            queries: 0,
            requests: 0,
        });
    }
}

/// Split the stream at `cuts` into up to three forked children of
/// `parent`, then merge back in reversed order — the regrouped state a
/// parallel run would produce.
fn fork_split_merge<S: SampleSink + Clone>(
    parent_template: &S,
    samples: &[Sample],
    cut_a: usize,
    cut_b: usize,
) -> S {
    let mut parent = parent_template.clone();
    let a = cut_a.min(samples.len());
    let b = cut_b.clamp(a, samples.len());
    let mut forks = vec![parent.fork(), parent.fork(), parent.fork()];
    observe_into(&mut *forks[0], &samples[..a], samples.len());
    observe_into(&mut *forks[1], &samples[a..b], samples.len());
    observe_into(&mut *forks[2], &samples[b..], samples.len());
    // Reverse merge order: the result must not depend on which worker
    // joined first.
    for fork in forks.into_iter().rev() {
        parent.merge(fork);
    }
    parent
}

fn assert_close(a: f64, b: f64, what: &str) {
    let ok = (a.is_nan() && b.is_nan()) || a == b || (a - b).abs() <= 1e-9 * b.abs().max(1.0);
    assert!(ok, "{what}: {a} vs {b}");
}

fn assert_estimates_close(a: &AggregateEstimate, b: &AggregateEstimate, what: &str) {
    assert_eq!(a.n, b.n, "{what}: n");
    assert_close(a.value, b.value, &format!("{what}: value"));
    assert_close(a.half_width, b.half_width, &format!("{what}: half_width"));
}

fn assert_estimates_bit_identical(a: &AggregateEstimate, b: &AggregateEstimate, what: &str) {
    assert_eq!(a.n, b.n, "{what}: n");
    assert_eq!(a.value.to_bits(), b.value.to_bits(), "{what}: value bits");
    assert_eq!(
        a.half_width.to_bits(),
        b.half_width.to_bits(),
        "{what}: half_width bits"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Histogram / DataCube: sequential observation is bit-identical to
    /// the batch constructors; fork/merge splits agree to within float
    /// re-association (exactly, for unit weights).
    #[test]
    fn histogram_and_cube_online_equals_batch(
        specs in prop::collection::vec((0u16..3, 0u16..2, 0.0f64..500.0, 0.1f64..4.0), 0..60),
        cut_a in 0usize..60,
        cut_b in 0usize..60,
        unit_weights in prop::collection::vec(0u16..2, 1..2),
    ) {
        let s = schema();
        let unit = unit_weights[0] == 0;
        let samples: Vec<Sample> = specs
            .iter()
            .map(|spec| {
                let mut smp = sample(spec);
                if unit {
                    smp.weight = 1.0;
                }
                smp
            })
            .collect();

        // Sequential ≡ batch, bit for bit.
        let batch = Histogram::from_weighted(
            &s,
            AttrId(0),
            samples.iter().map(|smp| (&smp.row, smp.weight)),
        );
        let mut online = Histogram::new(&s, AttrId(0));
        observe_into(&mut online, &samples, samples.len());
        prop_assert_eq!(&online, &batch);

        let cube_batch = {
            let mut c = DataCube::new(&s, AttrId(0), AttrId(1));
            for smp in &samples {
                c.add(&smp.row, smp.weight);
            }
            c
        };
        let mut cube_online = DataCube::new(&s, AttrId(0), AttrId(1));
        observe_into(&mut cube_online, &samples, samples.len());
        prop_assert_eq!(&cube_online, &cube_batch);

        // Arbitrary fork/merge split points, reversed merge order.
        let split = fork_split_merge(&Histogram::new(&s, AttrId(0)), &samples, cut_a, cut_b);
        if unit {
            prop_assert_eq!(&split, &batch, "unit weights regroup exactly");
        } else {
            for (a, b) in split.counts().iter().zip(batch.counts()) {
                assert_close(*a, *b, "histogram fork/merge");
            }
        }
        let cube_split =
            fork_split_merge(&DataCube::new(&s, AttrId(0), AttrId(1)), &samples, cut_a, cut_b);
        assert_close(cube_split.total(), cube_batch.total(), "cube fork/merge total");
    }

    /// Marginal: integer counts — bit-identical sequentially AND across
    /// arbitrary fork/merge splits.
    #[test]
    fn marginal_online_equals_batch(
        specs in prop::collection::vec((0u16..3, 0u16..2, 0.0f64..10.0, 0.1f64..4.0), 0..60),
        cut_a in 0usize..60,
        cut_b in 0usize..60,
    ) {
        let s = schema();
        let samples: Vec<Sample> = specs.iter().map(sample).collect();
        let rows: Vec<&Row> = samples.iter().map(|smp| &smp.row).collect();
        let batch = MarginalEstimate::from_rows(&s, AttrId(0), rows.iter().copied());

        let mut online = OnlineMarginal::new(&s, AttrId(0));
        observe_into(&mut online, &samples, samples.len());
        prop_assert_eq!(online.snapshot(), batch.clone());

        let split = fork_split_merge(&OnlineMarginal::new(&s, AttrId(0)), &samples, cut_a, cut_b);
        prop_assert_eq!(split.snapshot(), batch);
    }

    /// Aggregates (proportion / count / avg / sum): sequential snapshots
    /// are bit-identical to the batch Estimator; fork/merge splits agree
    /// to within float re-association. Weighted samples throughout.
    #[test]
    fn aggregates_online_equal_batch(
        specs in prop::collection::vec((0u16..3, 0u16..2, 0.0f64..500.0, 0.1f64..4.0), 0..60),
        cut_a in 0usize..60,
        cut_b in 0usize..60,
    ) {
        let samples: Vec<Sample> = specs.iter().map(sample).collect();
        let set: SampleSet = samples.iter().cloned().collect();
        let est = Estimator::new(&set);
        let pred = |r: &Row| r.values[0] == 1;
        let n_total = 10_000.0;
        let m = MeasureId(0);

        let batch = [
            est.proportion(pred),
            est.count(n_total, pred),
            est.avg(m, pred),
            est.sum(n_total, m, pred),
        ];

        // Sequential online == batch, bit for bit.
        let mut p = OnlineProportion::new(pred);
        let mut c = OnlineCount::new(n_total, pred);
        let mut a = OnlineAvg::new(m, pred);
        let mut su = OnlineSum::new(n_total, m, pred);
        for smp in &samples {
            p.add(smp);
            c.add(smp);
            a.add(smp);
            su.add(smp);
        }
        let online = [p.snapshot(), c.snapshot(), a.snapshot(), su.snapshot()];
        for ((b, o), what) in batch.iter().zip(&online).zip(["prop", "count", "avg", "sum"]) {
            assert_estimates_bit_identical(o, b, what);
        }

        // fork/merge splits via the SampleSink face.
        let splits = [
            fork_split_merge(&OnlineProportion::new(pred), &samples, cut_a, cut_b).snapshot(),
            fork_split_merge(&OnlineCount::new(n_total, pred), &samples, cut_a, cut_b).snapshot(),
            fork_split_merge(&OnlineAvg::new(m, pred), &samples, cut_a, cut_b).snapshot(),
            fork_split_merge(&OnlineSum::new(n_total, m, pred), &samples, cut_a, cut_b).snapshot(),
        ];
        for ((b, o), what) in batch.iter().zip(&splits).zip(["prop", "count", "avg", "sum"]) {
            assert_estimates_close(o, b, &format!("{what} (split)"));
        }
    }

    /// Size and per-tuple frequencies: integer state — exact under any
    /// split/merge regrouping.
    #[test]
    fn size_and_frequencies_online_equal_batch(
        specs in prop::collection::vec((0u16..3, 0u16..2, 0.0f64..10.0, 0.1f64..4.0), 0..60),
        cut_a in 0usize..60,
        cut_b in 0usize..60,
    ) {
        let samples: Vec<Sample> = specs.iter().map(sample).collect();
        let set: SampleSet = samples.iter().cloned().collect();

        let batch_size = capture_recapture(set.len(), set.distinct());
        let mut online = OnlineSize::new();
        observe_into(&mut online, &samples, samples.len());
        prop_assert_eq!(online.snapshot(), batch_size);
        let split = fork_split_merge(&OnlineSize::new(), &samples, cut_a, cut_b);
        prop_assert_eq!(split.snapshot(), batch_size);

        let mut freq = OnlineFrequencies::new();
        observe_into(&mut freq, &samples, samples.len());
        let freq_split = fork_split_merge(&OnlineFrequencies::new(), &samples, cut_a, cut_b);
        prop_assert_eq!(freq.counts(), freq_split.counts());
        if !samples.is_empty() {
            prop_assert_eq!(
                freq.chi_square_uniform(6).to_bits(),
                freq_split.chi_square_uniform(6).to_bits()
            );
            prop_assert_eq!(
                freq.skew_coefficient(6).to_bits(),
                freq_split.skew_coefficient(6).to_bits()
            );
        }
    }
}
