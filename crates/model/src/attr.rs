//! Attribute definitions: names, kinds and finite domains.
//!
//! Every attribute exposed by a conjunctive web form has a *finite* domain of
//! selectable values (a `<select>` box, radio buttons, or a bucketized range
//! field). Internally a domain value is a dense index ([`DomIx`]) into the
//! attribute's label table, which keeps tuples compact and comparisons cheap.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// Dense index of a value within an attribute's domain.
///
/// `u16` bounds domains at 65 535 values, far beyond anything a real web form
/// exposes (the largest domain in the Google Base Vehicles scenario is the
/// model list with a few hundred entries).
pub type DomIx = u16;

/// Identifier of an attribute within a [`Schema`](crate::schema::Schema).
///
/// Attribute ids are dense positions assigned in schema declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for AttrId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// A half-open numeric range `[lo, hi)` used to discretize numeric attributes
/// the way web forms expose them ("$5,000–$10,000").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound (`f64::INFINITY` for the last open-ended bucket).
    pub hi: f64,
    /// Human-readable label rendered in the form ("$5,000–$10,000").
    pub label: String,
}

impl Bucket {
    /// Create a bucket covering `[lo, hi)` with the given display label.
    pub fn new(lo: f64, hi: f64, label: impl Into<String>) -> Self {
        Bucket {
            lo,
            hi,
            label: label.into(),
        }
    }

    /// Whether `x` falls inside this bucket.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x < self.hi
    }
}

/// The kind of an attribute, which determines its domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttrKind {
    /// Two-valued attribute; domain is `{false, true}` rendered as
    /// `["no", "yes"]` unless custom labels are supplied.
    Boolean,
    /// Categorical attribute with an explicit list of value labels.
    Categorical {
        /// Display labels, one per domain index.
        labels: Vec<String>,
    },
    /// Numeric attribute discretized into ordered, non-overlapping buckets.
    ///
    /// Only the *bucket* is queryable through the form; the raw numeric value
    /// travels with tuples as a measure.
    Numeric {
        /// Ordered buckets covering the attribute's range.
        buckets: Vec<Bucket>,
    },
}

/// A single form attribute: a name plus its finite domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribute {
    name: String,
    kind: AttrKind,
}

impl Attribute {
    /// Construct a Boolean attribute.
    pub fn boolean(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            kind: AttrKind::Boolean,
        }
    }

    /// Construct a categorical attribute from its value labels.
    ///
    /// # Errors
    /// Returns [`ModelError::EmptyDomain`] for an empty label list and
    /// [`ModelError::DomainTooLarge`] when more than `u16::MAX` labels are
    /// supplied, and [`ModelError::DuplicateLabel`] on repeated labels.
    pub fn categorical<S: Into<String>>(
        name: impl Into<String>,
        labels: impl IntoIterator<Item = S>,
    ) -> Result<Self, ModelError> {
        let name = name.into();
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        if labels.is_empty() {
            return Err(ModelError::EmptyDomain { attr: name });
        }
        if labels.len() > DomIx::MAX as usize {
            return Err(ModelError::DomainTooLarge {
                attr: name,
                size: labels.len(),
            });
        }
        let mut seen = std::collections::HashSet::with_capacity(labels.len());
        for l in &labels {
            if !seen.insert(l.as_str()) {
                return Err(ModelError::DuplicateLabel {
                    attr: name,
                    label: l.clone(),
                });
            }
        }
        Ok(Attribute {
            name,
            kind: AttrKind::Categorical { labels },
        })
    }

    /// Construct a discretized numeric attribute from ordered buckets.
    ///
    /// # Errors
    /// Returns [`ModelError::EmptyDomain`] for an empty bucket list and
    /// [`ModelError::UnorderedBuckets`] when buckets are not strictly
    /// increasing and contiguous-or-disjoint.
    pub fn numeric(name: impl Into<String>, buckets: Vec<Bucket>) -> Result<Self, ModelError> {
        let name = name.into();
        if buckets.is_empty() {
            return Err(ModelError::EmptyDomain { attr: name });
        }
        if buckets.len() > DomIx::MAX as usize {
            return Err(ModelError::DomainTooLarge {
                attr: name,
                size: buckets.len(),
            });
        }
        for w in buckets.windows(2) {
            if w[0].hi > w[1].lo || w[0].lo >= w[0].hi {
                return Err(ModelError::UnorderedBuckets { attr: name });
            }
        }
        if let Some(last) = buckets.last() {
            if last.lo >= last.hi {
                return Err(ModelError::UnorderedBuckets { attr: name });
            }
        }
        Ok(Attribute {
            name,
            kind: AttrKind::Numeric { buckets },
        })
    }

    /// Construct an evenly bucketized numeric attribute over `[lo, hi)`.
    ///
    /// Labels are generated as `"{lo}–{hi}"` with no unit formatting; callers
    /// that want pretty labels should build buckets explicitly.
    pub fn numeric_even(
        name: impl Into<String>,
        lo: f64,
        hi: f64,
        n_buckets: usize,
    ) -> Result<Self, ModelError> {
        let name = name.into();
        // `partial_cmp` keeps the NaN-rejecting behavior of `!(hi > lo)`
        // without the negated-comparison lint.
        if n_buckets == 0 || hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
            return Err(ModelError::EmptyDomain { attr: name });
        }
        let width = (hi - lo) / n_buckets as f64;
        let buckets = (0..n_buckets)
            .map(|i| {
                let b_lo = lo + width * i as f64;
                let b_hi = if i + 1 == n_buckets {
                    hi
                } else {
                    lo + width * (i + 1) as f64
                };
                Bucket::new(b_lo, b_hi, format!("{b_lo:.0}–{b_hi:.0}"))
            })
            .collect();
        Attribute::numeric(name, buckets)
    }

    /// The attribute's name as shown on the form.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute's kind.
    #[inline]
    pub fn kind(&self) -> &AttrKind {
        &self.kind
    }

    /// Number of values in the domain (the branching factor of this
    /// attribute's level in the query tree, §2 of the paper).
    #[inline]
    pub fn domain_size(&self) -> usize {
        match &self.kind {
            AttrKind::Boolean => 2,
            AttrKind::Categorical { labels } => labels.len(),
            AttrKind::Numeric { buckets } => buckets.len(),
        }
    }

    /// Display label for domain index `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range for this domain; use
    /// [`Attribute::check`] to validate untrusted indices first.
    pub fn label(&self, v: DomIx) -> std::borrow::Cow<'_, str> {
        use std::borrow::Cow;
        match &self.kind {
            AttrKind::Boolean => match v {
                0 => Cow::Borrowed("no"),
                1 => Cow::Borrowed("yes"),
                _ => panic!("boolean domain index {v} out of range"),
            },
            AttrKind::Categorical { labels } => Cow::Borrowed(&labels[v as usize]),
            AttrKind::Numeric { buckets } => Cow::Borrowed(&buckets[v as usize].label),
        }
    }

    /// Resolve a display label back to its domain index (the inverse of
    /// [`Attribute::label`]); used when scraping result pages.
    pub fn parse_label(&self, s: &str) -> Option<DomIx> {
        match &self.kind {
            AttrKind::Boolean => match s {
                "no" | "false" | "0" => Some(0),
                "yes" | "true" | "1" => Some(1),
                _ => None,
            },
            AttrKind::Categorical { labels } => {
                labels.iter().position(|l| l == s).map(|i| i as DomIx)
            }
            AttrKind::Numeric { buckets } => buckets
                .iter()
                .position(|b| b.label == s)
                .map(|i| i as DomIx),
        }
    }

    /// For numeric attributes, the bucket containing `x`, if any.
    pub fn bucket_of(&self, x: f64) -> Option<DomIx> {
        match &self.kind {
            AttrKind::Numeric { buckets } => buckets
                .iter()
                .position(|b| b.contains(x))
                .map(|i| i as DomIx),
            _ => None,
        }
    }

    /// Validate that `v` is a legal domain index for this attribute.
    pub fn check(&self, v: DomIx) -> Result<(), ModelError> {
        if (v as usize) < self.domain_size() {
            Ok(())
        } else {
            Err(ModelError::ValueOutOfRange {
                attr: self.name.clone(),
                value: v,
                domain_size: self.domain_size(),
            })
        }
    }

    /// Iterator over all domain indices of this attribute.
    pub fn domain(&self) -> impl Iterator<Item = DomIx> + '_ {
        (0..self.domain_size() as DomIx).map(|v| v as DomIx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boolean_domain() {
        let a = Attribute::boolean("used");
        assert_eq!(a.domain_size(), 2);
        assert_eq!(a.label(0), "no");
        assert_eq!(a.label(1), "yes");
        assert_eq!(a.parse_label("yes"), Some(1));
        assert_eq!(a.parse_label("true"), Some(1));
        assert_eq!(a.parse_label("maybe"), None);
        assert!(a.check(1).is_ok());
        assert!(a.check(2).is_err());
    }

    #[test]
    fn categorical_roundtrip() {
        let a = Attribute::categorical("make", ["Toyota", "Honda", "Ford"]).unwrap();
        assert_eq!(a.domain_size(), 3);
        for v in a.domain() {
            assert_eq!(a.parse_label(&a.label(v)), Some(v));
        }
    }

    #[test]
    fn categorical_rejects_empty_and_duplicates() {
        assert!(matches!(
            Attribute::categorical("x", Vec::<String>::new()),
            Err(ModelError::EmptyDomain { .. })
        ));
        assert!(matches!(
            Attribute::categorical("x", ["a", "b", "a"]),
            Err(ModelError::DuplicateLabel { .. })
        ));
    }

    #[test]
    fn numeric_buckets() {
        let a = Attribute::numeric(
            "price",
            vec![
                Bucket::new(0.0, 5_000.0, "under $5k"),
                Bucket::new(5_000.0, 15_000.0, "$5k–$15k"),
                Bucket::new(15_000.0, f64::INFINITY, "over $15k"),
            ],
        )
        .unwrap();
        assert_eq!(a.domain_size(), 3);
        assert_eq!(a.bucket_of(4_999.99), Some(0));
        assert_eq!(a.bucket_of(5_000.0), Some(1));
        assert_eq!(a.bucket_of(1e9), Some(2));
        assert_eq!(a.parse_label("$5k–$15k"), Some(1));
    }

    #[test]
    fn numeric_rejects_unordered() {
        let bad = vec![Bucket::new(0.0, 10.0, "a"), Bucket::new(5.0, 20.0, "b")];
        assert!(matches!(
            Attribute::numeric("x", bad),
            Err(ModelError::UnorderedBuckets { .. })
        ));
        let degenerate = vec![Bucket::new(10.0, 10.0, "a")];
        assert!(Attribute::numeric("x", degenerate).is_err());
    }

    #[test]
    fn numeric_even_covers_range() {
        let a = Attribute::numeric_even("year", 1995.0, 2011.0, 16).unwrap();
        assert_eq!(a.domain_size(), 16);
        assert_eq!(a.bucket_of(1995.0), Some(0));
        assert_eq!(a.bucket_of(2010.5), Some(15));
        assert_eq!(a.bucket_of(2011.0), None, "upper bound is exclusive");
    }

    #[test]
    fn bucket_of_non_numeric_is_none() {
        assert_eq!(Attribute::boolean("b").bucket_of(0.5), None);
    }
}
