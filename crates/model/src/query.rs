//! Conjunctive equality queries and their partial order.
//!
//! A query is a set of `attribute = value` predicates, at most one per
//! attribute, kept **normalized** (sorted by attribute id, deduplicated).
//! Normalization gives queries a canonical form so that the history cache
//! (ICDE 2009 optimization, paper §3.2) can key on them directly, and makes
//! the refinement partial order (`⊆` on predicate sets) cheap to test with a
//! linear merge.

use serde::{Deserialize, Serialize};

use crate::attr::{AttrId, DomIx};
use crate::error::ModelError;
use crate::schema::Schema;

/// A single `attribute = value` equality predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Predicate {
    /// Constrained attribute.
    pub attr: AttrId,
    /// Required domain index.
    pub value: DomIx,
}

impl Predicate {
    /// Construct a predicate.
    #[inline]
    pub fn new(attr: AttrId, value: DomIx) -> Self {
        Predicate { attr, value }
    }
}

/// A normalized conjunctive equality query.
///
/// The empty query (`SELECT *`) selects every tuple. Queries form a partial
/// order under predicate-set inclusion: `q2` *refines* `q1` when
/// `preds(q1) ⊆ preds(q2)`; refinement can only shrink the result set, which
/// is the monotonicity the drill-down walk and the inference cache exploit.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct ConjunctiveQuery {
    /// Sorted by `attr`, at most one predicate per attribute.
    preds: Vec<Predicate>,
}

impl ConjunctiveQuery {
    /// The empty (`SELECT *`) query.
    pub fn empty() -> Self {
        ConjunctiveQuery { preds: Vec::new() }
    }

    /// Build a query from arbitrary `(attr, value)` pairs.
    ///
    /// # Errors
    /// [`ModelError::ConflictingPredicate`] if one attribute appears with two
    /// different values (repeating the *same* binding is idempotent).
    pub fn from_pairs(
        pairs: impl IntoIterator<Item = (AttrId, DomIx)>,
    ) -> Result<Self, ModelError> {
        let mut q = ConjunctiveQuery::empty();
        for (a, v) in pairs {
            q = q.refine(a, v)?;
        }
        Ok(q)
    }

    /// Build from named attributes, validating against a schema.
    pub fn from_named<'a>(
        schema: &Schema,
        pairs: impl IntoIterator<Item = (&'a str, &'a str)>,
    ) -> Result<Self, ModelError> {
        let mut q = ConjunctiveQuery::empty();
        for (name, label) in pairs {
            let attr = schema.attr_by_name(name)?;
            let value = schema
                .attr_unchecked(attr)
                .parse_label(label)
                .ok_or_else(|| ModelError::ValueOutOfRange {
                    attr: name.to_owned(),
                    value: DomIx::MAX,
                    domain_size: schema.domain_size(attr),
                })?;
            q = q.refine(attr, value)?;
        }
        Ok(q)
    }

    /// Return a copy of this query with one extra predicate.
    ///
    /// This is the *drill-down step* of the random walk (§2): the query tree
    /// edge from the current node to the child labelled `value` at level
    /// `attr`.
    ///
    /// # Errors
    /// [`ModelError::ConflictingPredicate`] when `attr` is already bound to a
    /// different value.
    pub fn refine(&self, attr: AttrId, value: DomIx) -> Result<Self, ModelError> {
        match self.preds.binary_search_by_key(&attr, |p| p.attr) {
            Ok(i) => {
                let existing = self.preds[i].value;
                if existing == value {
                    Ok(self.clone())
                } else {
                    Err(ModelError::ConflictingPredicate {
                        attr: format!("{attr}"),
                        existing,
                        requested: value,
                    })
                }
            }
            Err(i) => {
                let mut preds = Vec::with_capacity(self.preds.len() + 1);
                preds.extend_from_slice(&self.preds[..i]);
                preds.push(Predicate::new(attr, value));
                preds.extend_from_slice(&self.preds[i..]);
                Ok(ConjunctiveQuery { preds })
            }
        }
    }

    /// Return a copy without the predicate on `attr` (broadening move a user
    /// makes when results are "too narrow", §1).
    pub fn drop_attr(&self, attr: AttrId) -> Self {
        let preds = self
            .preds
            .iter()
            .copied()
            .filter(|p| p.attr != attr)
            .collect::<Vec<_>>();
        ConjunctiveQuery { preds }
    }

    /// The normalized predicates, sorted by attribute id.
    #[inline]
    pub fn predicates(&self) -> &[Predicate] {
        &self.preds
    }

    /// Number of predicates (the query's *depth* in the fixed-order tree).
    #[inline]
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether this is the `SELECT *` query.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// The value this query binds `attr` to, if any.
    pub fn binding(&self, attr: AttrId) -> Option<DomIx> {
        self.preds
            .binary_search_by_key(&attr, |p| p.attr)
            .ok()
            .map(|i| self.preds[i].value)
    }

    /// Whether `attr` is constrained by this query.
    #[inline]
    pub fn binds(&self, attr: AttrId) -> bool {
        self.binding(attr).is_some()
    }

    /// `true` iff every predicate of `other` is also a predicate of `self`
    /// (i.e. `self` is `other` with zero or more extra constraints, so
    /// `result(self) ⊆ result(other)`).
    pub fn is_refinement_of(&self, other: &ConjunctiveQuery) -> bool {
        // Linear merge over two sorted predicate lists.
        let mut it = self.preds.iter();
        'outer: for needle in &other.preds {
            for p in it.by_ref() {
                match p.attr.cmp(&needle.attr) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => {
                        if p.value == needle.value {
                            continue 'outer;
                        }
                        return false;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// `true` iff this query's predicates hold on the given value vector.
    #[inline]
    pub fn matches(&self, values: &[DomIx]) -> bool {
        self.preds
            .iter()
            .all(|p| values.get(p.attr.index()) == Some(&p.value))
    }

    /// Validate every binding against a schema.
    pub fn validate(&self, schema: &Schema) -> Result<(), ModelError> {
        for p in &self.preds {
            schema.check_binding(p.attr, p.value)?;
        }
        Ok(())
    }

    /// A fully-specified query binding *every* attribute of `schema` to the
    /// given value vector — the leaf query the BRUTE-FORCE-SAMPLER issues.
    pub fn fully_specified(schema: &Schema, values: &[DomIx]) -> Result<Self, ModelError> {
        if values.len() != schema.arity() {
            return Err(ModelError::ArityMismatch {
                expected: schema.arity(),
                got: values.len(),
            });
        }
        let preds = schema
            .attr_ids()
            .zip(values.iter().copied())
            .map(|(a, v)| Predicate::new(a, v))
            .collect();
        let q = ConjunctiveQuery { preds };
        q.validate(schema)?;
        Ok(q)
    }

    /// Render with attribute/value names resolved through a schema, e.g.
    /// `` SELECT * FROM D WHERE make='Toyota' AND year='2005–2006' ``.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> QueryDisplay<'a> {
        QueryDisplay {
            query: self,
            schema,
        }
    }
}

/// Helper returned by [`ConjunctiveQuery::display`] implementing `Display`.
pub struct QueryDisplay<'a> {
    query: &'a ConjunctiveQuery,
    schema: &'a Schema,
}

impl std::fmt::Display for QueryDisplay<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SELECT * FROM D")?;
        if self.query.is_empty() {
            return Ok(());
        }
        write!(f, " WHERE ")?;
        for (i, p) in self.query.predicates().iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            let attr = self.schema.attr_unchecked(p.attr);
            write!(f, "{}='{}'", attr.name(), attr.label(p.value))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::schema::SchemaBuilder;

    fn schema() -> Schema {
        SchemaBuilder::new()
            .attribute(Attribute::boolean("a"))
            .attribute(Attribute::categorical("make", ["Toyota", "Honda", "Ford"]).unwrap())
            .attribute(Attribute::boolean("c"))
            .finish()
            .unwrap()
    }

    #[test]
    fn refine_keeps_sorted_normal_form() {
        let q = ConjunctiveQuery::empty()
            .refine(AttrId(2), 1)
            .unwrap()
            .refine(AttrId(0), 0)
            .unwrap();
        let attrs: Vec<u16> = q.predicates().iter().map(|p| p.attr.0).collect();
        assert_eq!(attrs, vec![0, 2]);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn refine_same_binding_is_idempotent() {
        let q = ConjunctiveQuery::from_pairs([(AttrId(1), 2)]).unwrap();
        let q2 = q.refine(AttrId(1), 2).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn refine_conflict_rejected() {
        let q = ConjunctiveQuery::from_pairs([(AttrId(1), 2)]).unwrap();
        assert!(matches!(
            q.refine(AttrId(1), 0),
            Err(ModelError::ConflictingPredicate { .. })
        ));
    }

    #[test]
    fn refinement_partial_order() {
        let broad = ConjunctiveQuery::from_pairs([(AttrId(0), 1)]).unwrap();
        let narrow = ConjunctiveQuery::from_pairs([(AttrId(0), 1), (AttrId(2), 0)]).unwrap();
        let other = ConjunctiveQuery::from_pairs([(AttrId(0), 0), (AttrId(2), 0)]).unwrap();

        assert!(narrow.is_refinement_of(&broad));
        assert!(!broad.is_refinement_of(&narrow));
        assert!(narrow.is_refinement_of(&narrow), "reflexive");
        assert!(narrow.is_refinement_of(&ConjunctiveQuery::empty()));
        assert!(
            !other.is_refinement_of(&broad),
            "same attr, different value"
        );
    }

    #[test]
    fn matches_checks_all_predicates() {
        let q = ConjunctiveQuery::from_pairs([(AttrId(0), 1), (AttrId(1), 2)]).unwrap();
        assert!(q.matches(&[1, 2, 0]));
        assert!(!q.matches(&[1, 1, 0]));
        assert!(!q.matches(&[0, 2, 0]));
        assert!(ConjunctiveQuery::empty().matches(&[5, 5, 5]));
    }

    #[test]
    fn drop_attr_broadens() {
        let q = ConjunctiveQuery::from_pairs([(AttrId(0), 1), (AttrId(1), 2)]).unwrap();
        let b = q.drop_attr(AttrId(0));
        assert_eq!(b.len(), 1);
        assert!(q.is_refinement_of(&b));
        // Dropping an unbound attribute is a no-op.
        assert_eq!(q.drop_attr(AttrId(2)), q);
    }

    #[test]
    fn binding_lookup() {
        let q = ConjunctiveQuery::from_pairs([(AttrId(1), 2)]).unwrap();
        assert_eq!(q.binding(AttrId(1)), Some(2));
        assert_eq!(q.binding(AttrId(0)), None);
        assert!(q.binds(AttrId(1)));
        assert!(!q.binds(AttrId(0)));
    }

    #[test]
    fn from_named_resolves_labels() {
        let s = schema();
        let q = ConjunctiveQuery::from_named(&s, [("make", "Honda"), ("a", "yes")]).unwrap();
        assert_eq!(q.binding(AttrId(1)), Some(1));
        assert_eq!(q.binding(AttrId(0)), Some(1));
        assert!(ConjunctiveQuery::from_named(&s, [("make", "Tesla")]).is_err());
        assert!(ConjunctiveQuery::from_named(&s, [("modell", "Civic")]).is_err());
    }

    #[test]
    fn fully_specified_binds_everything() {
        let s = schema();
        let q = ConjunctiveQuery::fully_specified(&s, &[1, 2, 0]).unwrap();
        assert_eq!(q.len(), 3);
        assert!(q.matches(&[1, 2, 0]));
        assert!(ConjunctiveQuery::fully_specified(&s, &[1, 2]).is_err());
        assert!(ConjunctiveQuery::fully_specified(&s, &[1, 9, 0]).is_err());
    }

    #[test]
    fn display_renders_sql_like() {
        let s = schema();
        let q = ConjunctiveQuery::from_named(&s, [("make", "Toyota"), ("c", "no")]).unwrap();
        let text = q.display(&s).to_string();
        assert_eq!(text, "SELECT * FROM D WHERE make='Toyota' AND c='no'");
        assert_eq!(
            ConjunctiveQuery::empty().display(&s).to_string(),
            "SELECT * FROM D"
        );
    }
}
