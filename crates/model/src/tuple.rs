//! Tuples: the rows stored inside a hidden database.

use serde::{Deserialize, Serialize};

use crate::attr::DomIx;
use crate::error::ModelError;
use crate::schema::Schema;

/// Internal identifier of a tuple inside one database instance.
///
/// Tuple ids are dense insertion positions. They are *internal*: the public
/// form interface exposes an opaque listing key instead (see
/// [`Row`](crate::outcome::Row)), exactly like a real site exposes item ids
/// rather than storage offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TupleId(pub u32);

impl TupleId {
    /// The id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TupleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One database row: a domain index per attribute plus raw measure values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tuple {
    values: Box<[DomIx]>,
    measures: Box<[f64]>,
}

impl Tuple {
    /// Build a tuple, validating arity and every domain index against the
    /// schema.
    pub fn new(
        schema: &Schema,
        values: Vec<DomIx>,
        measures: Vec<f64>,
    ) -> Result<Self, ModelError> {
        if values.len() != schema.arity() {
            return Err(ModelError::ArityMismatch {
                expected: schema.arity(),
                got: values.len(),
            });
        }
        if measures.len() != schema.measure_arity() {
            return Err(ModelError::ArityMismatch {
                expected: schema.measure_arity(),
                got: measures.len(),
            });
        }
        for (id, attr) in schema.iter() {
            attr.check(values[id.index()])?;
        }
        Ok(Tuple {
            values: values.into_boxed_slice(),
            measures: measures.into_boxed_slice(),
        })
    }

    /// Build a tuple without validation.
    ///
    /// Intended for generators that construct values straight from the
    /// schema's own domains; invariants are checked in debug builds.
    pub fn new_unchecked(values: Vec<DomIx>, measures: Vec<f64>) -> Self {
        Tuple {
            values: values.into_boxed_slice(),
            measures: measures.into_boxed_slice(),
        }
    }

    /// Attribute values as domain indices, in schema order.
    #[inline]
    pub fn values(&self) -> &[DomIx] {
        &self.values
    }

    /// Raw measure values, in schema order.
    #[inline]
    pub fn measures(&self) -> &[f64] {
        &self.measures
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::schema::{Measure, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new()
            .attribute(Attribute::boolean("used"))
            .attribute(Attribute::categorical("make", ["Toyota", "Honda"]).unwrap())
            .measure(Measure::new("price"))
            .finish()
            .unwrap()
    }

    #[test]
    fn valid_tuple_constructs() {
        let s = schema();
        let t = Tuple::new(&s, vec![1, 0], vec![19_999.0]).unwrap();
        assert_eq!(t.values(), &[1, 0]);
        assert_eq!(t.measures(), &[19_999.0]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let s = schema();
        assert!(matches!(
            Tuple::new(&s, vec![1], vec![0.0]),
            Err(ModelError::ArityMismatch {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            Tuple::new(&s, vec![1, 0], vec![]),
            Err(ModelError::ArityMismatch {
                expected: 1,
                got: 0
            })
        ));
    }

    #[test]
    fn out_of_domain_value_rejected() {
        let s = schema();
        assert!(matches!(
            Tuple::new(&s, vec![1, 7], vec![0.0]),
            Err(ModelError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn tuple_id_display() {
        assert_eq!(TupleId(3).to_string(), "t3");
    }
}
