//! Schemas: ordered collections of attributes plus numeric measures.

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::attr::{AttrId, Attribute, DomIx};
use crate::error::ModelError;

/// Identifier of a measure column within a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MeasureId(pub u16);

impl MeasureId {
    /// The id as a `usize`, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A numeric measure carried by every tuple but not queryable through the
/// form (e.g. the exact price in dollars, while the *queryable* `price`
/// attribute is its bucketized version).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measure {
    name: String,
}

impl Measure {
    /// Construct a measure with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Measure { name: name.into() }
    }

    /// The measure's name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// An immutable schema: the attributes a form exposes (in declaration
/// order) plus the measure columns tuples carry.
///
/// Schemas are cheap to share (`Arc` internally via [`Schema::into_shared`])
/// and validated on construction: names are unique and domains non-empty.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<Attribute>,
    measures: Vec<Measure>,
    #[serde(skip)]
    by_name: HashMap<String, AttrId>,
    #[serde(skip)]
    measures_by_name: HashMap<String, MeasureId>,
}

impl Schema {
    fn build_lookup(&mut self) {
        self.by_name = self
            .attributes
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name().to_owned(), AttrId(i as u16)))
            .collect();
        self.measures_by_name = self
            .measures
            .iter()
            .enumerate()
            .map(|(i, m)| (m.name().to_owned(), MeasureId(i as u16)))
            .collect();
    }

    /// Rebuild internal lookup tables; required after deserialization.
    pub fn rehydrate(mut self) -> Self {
        self.build_lookup();
        self
    }

    /// Number of attributes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Number of measure columns.
    #[inline]
    pub fn measure_arity(&self) -> usize {
        self.measures.len()
    }

    /// All attributes in declaration order.
    #[inline]
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// All measures in declaration order.
    #[inline]
    pub fn measures(&self) -> &[Measure] {
        &self.measures
    }

    /// Iterator over `(AttrId, &Attribute)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.attributes
            .iter()
            .enumerate()
            .map(|(i, a)| (AttrId(i as u16), a))
    }

    /// All attribute ids in declaration order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> {
        (0..self.attributes.len() as u16).map(AttrId)
    }

    /// Attribute by id.
    ///
    /// # Errors
    /// [`ModelError::AttrOutOfRange`] if `id` does not belong to this schema.
    pub fn attr(&self, id: AttrId) -> Result<&Attribute, ModelError> {
        self.attributes
            .get(id.index())
            .ok_or(ModelError::AttrOutOfRange {
                index: id.index(),
                len: self.attributes.len(),
            })
    }

    /// Attribute by id, panicking on range errors.
    ///
    /// Use when the id provably comes from this schema.
    #[inline]
    pub fn attr_unchecked(&self, id: AttrId) -> &Attribute {
        &self.attributes[id.index()]
    }

    /// Look up an attribute id by name.
    pub fn attr_by_name(&self, name: &str) -> Result<AttrId, ModelError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| ModelError::UnknownAttribute {
                name: name.to_owned(),
            })
    }

    /// Look up a measure id by name.
    pub fn measure_by_name(&self, name: &str) -> Result<MeasureId, ModelError> {
        self.measures_by_name
            .get(name)
            .copied()
            .ok_or_else(|| ModelError::UnknownMeasure {
                name: name.to_owned(),
            })
    }

    /// Measure by id, panicking on range errors.
    #[inline]
    pub fn measure_unchecked(&self, id: MeasureId) -> &Measure {
        &self.measures[id.index()]
    }

    /// Domain size of attribute `id` (branching factor at its tree level).
    #[inline]
    pub fn domain_size(&self, id: AttrId) -> usize {
        self.attributes[id.index()].domain_size()
    }

    /// Product of all domain sizes: the number of leaves of the full query
    /// tree, `B = ∏ |Dom(a_i)|`, as an `f64` (it can dwarf `u64` for wide
    /// schemas; samplers only ever use it in ratios).
    pub fn domain_product(&self) -> f64 {
        self.attributes
            .iter()
            .map(|a| a.domain_size() as f64)
            .product()
    }

    /// Validate a `(attr, value)` pair against this schema.
    pub fn check_binding(&self, attr: AttrId, value: DomIx) -> Result<(), ModelError> {
        self.attr(attr)?.check(value)
    }

    /// Wrap in an `Arc` for cheap sharing across threads and crates.
    pub fn into_shared(self) -> Arc<Schema> {
        Arc::new(self)
    }
}

/// Incremental builder for [`Schema`].
///
/// ```
/// use hdsampler_model::{Attribute, SchemaBuilder, Measure};
///
/// let schema = SchemaBuilder::new()
///     .attribute(Attribute::boolean("certified"))
///     .attribute(Attribute::categorical("make", ["Toyota", "Honda"]).unwrap())
///     .measure(Measure::new("price_usd"))
///     .finish()
///     .unwrap();
/// assert_eq!(schema.arity(), 2);
/// assert_eq!(schema.domain_product(), 4.0);
/// ```
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    attributes: Vec<Attribute>,
    measures: Vec<Measure>,
}

impl SchemaBuilder {
    /// Start an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an attribute (declaration order defines [`AttrId`]s).
    pub fn attribute(mut self, attr: Attribute) -> Self {
        self.attributes.push(attr);
        self
    }

    /// Append a measure column.
    pub fn measure(mut self, m: Measure) -> Self {
        self.measures.push(m);
        self
    }

    /// Validate and produce the schema.
    ///
    /// # Errors
    /// [`ModelError::DuplicateAttribute`] when two attributes (or two
    /// measures) share a name.
    pub fn finish(self) -> Result<Schema, ModelError> {
        let mut seen = std::collections::HashSet::new();
        for a in &self.attributes {
            if !seen.insert(a.name().to_owned()) {
                return Err(ModelError::DuplicateAttribute {
                    name: a.name().to_owned(),
                });
            }
        }
        let mut seen_m = std::collections::HashSet::new();
        for m in &self.measures {
            if !seen_m.insert(m.name().to_owned()) {
                return Err(ModelError::DuplicateAttribute {
                    name: m.name().to_owned(),
                });
            }
        }
        let mut s = Schema {
            attributes: self.attributes,
            measures: self.measures,
            by_name: HashMap::new(),
            measures_by_name: HashMap::new(),
        };
        s.build_lookup();
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_schema() -> Schema {
        SchemaBuilder::new()
            .attribute(Attribute::boolean("used"))
            .attribute(Attribute::categorical("make", ["Toyota", "Honda", "Ford"]).unwrap())
            .measure(Measure::new("price_usd"))
            .finish()
            .unwrap()
    }

    #[test]
    fn lookup_by_name_and_id() {
        let s = small_schema();
        let make = s.attr_by_name("make").unwrap();
        assert_eq!(make, AttrId(1));
        assert_eq!(s.attr(make).unwrap().name(), "make");
        assert!(s.attr_by_name("model").is_err());
        assert_eq!(s.measure_by_name("price_usd").unwrap(), MeasureId(0));
        assert!(s.measure_by_name("mileage").is_err());
    }

    #[test]
    fn domain_product_multiplies_sizes() {
        let s = small_schema();
        assert_eq!(s.domain_product(), 6.0);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let r = SchemaBuilder::new()
            .attribute(Attribute::boolean("x"))
            .attribute(Attribute::boolean("x"))
            .finish();
        assert!(matches!(r, Err(ModelError::DuplicateAttribute { .. })));
    }

    #[test]
    fn attr_out_of_range() {
        let s = small_schema();
        assert!(s.attr(AttrId(99)).is_err());
    }

    #[test]
    fn check_binding_validates_both_sides() {
        let s = small_schema();
        assert!(s.check_binding(AttrId(1), 2).is_ok());
        assert!(s.check_binding(AttrId(1), 3).is_err());
        assert!(s.check_binding(AttrId(9), 0).is_err());
    }

    #[test]
    fn serde_roundtrip_rehydrates_lookup() {
        let s = small_schema();
        let json = serde_json::to_string(&s).unwrap();
        let back: Schema = serde_json::from_str::<Schema>(&json).unwrap().rehydrate();
        assert_eq!(back.attr_by_name("make").unwrap(), AttrId(1));
        assert_eq!(back, s);
    }
}
