//! The [`FormInterface`] trait: the *only* channel between samplers and a
//! hidden database.
//!
//! Every implementation — the in-memory engine, the simulated web-form
//! scraper — enforces the same observable contract, so samplers are oblivious
//! to what sits behind the form, exactly like the real HDSampler was
//! oblivious to Google Base's internals.

use crate::error::InterfaceError;
use crate::outcome::QueryResponse;
use crate::query::ConjunctiveQuery;
use crate::schema::Schema;

/// A conjunctive web form interface with a top-k restriction (paper §1–2).
///
/// # Contract
///
/// * `execute(q)` returns the full result set when at most
///   [`result_limit`](FormInterface::result_limit) tuples qualify, otherwise
///   the top-k under a **deterministic, non-random** ranking plus
///   `overflow = true`.
/// * Responses are *stable*: re-issuing the same query yields the same
///   response (no randomness server-side) until the underlying data changes.
/// * Every `execute` / `count` call **charges one query** against the
///   interface's budget, whether or not the result was useful — matching how
///   sites meter page fetches per IP.
/// * Implementations must be usable behind a shared reference so that
///   concurrent walkers can share one session.
pub trait FormInterface: Send + Sync {
    /// The attributes/measures this form exposes.
    fn schema(&self) -> &Schema;

    /// The top-k display limit (`k = 1000` for Google Base, `k = 25` for MSN
    /// Stock Screener, … — §2).
    fn result_limit(&self) -> usize;

    /// Submit a query and scrape its response.
    fn execute(&self, query: &ConjunctiveQuery) -> Result<QueryResponse, InterfaceError>;

    /// Ask only for the result *count* of a query.
    ///
    /// Sites that print a count banner can answer this with one page fetch
    /// (still one charged query). Sites without count reporting return
    /// `Err(Unsupported)`. The default implementation falls back to
    /// [`execute`](FormInterface::execute) and inspects the banner.
    fn count(&self, query: &ConjunctiveQuery) -> Result<u64, InterfaceError> {
        let resp = self.execute(query)?;
        resp.reported_count
            .ok_or(InterfaceError::Unsupported("count reporting"))
    }

    /// Whether [`count`](FormInterface::count) is expected to succeed.
    fn supports_count(&self) -> bool {
        false
    }

    /// Total queries charged so far on this session (for efficiency
    /// accounting; §1 motivates minimizing this number).
    fn queries_issued(&self) -> u64;

    /// A stable digest of the dataset behind the form, when the
    /// implementation can compute one (the in-memory engine hashes its
    /// table; a scraper cannot see past the form and returns `None`).
    ///
    /// Combined with the schema and display limit it identifies a site
    /// *version*: persistent caches key their facts on it so stale
    /// knowledge from a changed dataset is never replayed.
    fn dataset_digest(&self) -> Option<u64> {
        None
    }
}

/// Blanket implementation so `&T`, `Box<T>`, `Arc<T>` are interfaces too.
impl<T: FormInterface + ?Sized> FormInterface for &T {
    fn schema(&self) -> &Schema {
        (**self).schema()
    }
    fn result_limit(&self) -> usize {
        (**self).result_limit()
    }
    fn execute(&self, query: &ConjunctiveQuery) -> Result<QueryResponse, InterfaceError> {
        (**self).execute(query)
    }
    fn count(&self, query: &ConjunctiveQuery) -> Result<u64, InterfaceError> {
        (**self).count(query)
    }
    fn supports_count(&self) -> bool {
        (**self).supports_count()
    }
    fn queries_issued(&self) -> u64 {
        (**self).queries_issued()
    }
    fn dataset_digest(&self) -> Option<u64> {
        (**self).dataset_digest()
    }
}

impl<T: FormInterface + ?Sized> FormInterface for std::sync::Arc<T> {
    fn schema(&self) -> &Schema {
        (**self).schema()
    }
    fn result_limit(&self) -> usize {
        (**self).result_limit()
    }
    fn execute(&self, query: &ConjunctiveQuery) -> Result<QueryResponse, InterfaceError> {
        (**self).execute(query)
    }
    fn count(&self, query: &ConjunctiveQuery) -> Result<u64, InterfaceError> {
        (**self).count(query)
    }
    fn supports_count(&self) -> bool {
        (**self).supports_count()
    }
    fn queries_issued(&self) -> u64 {
        (**self).queries_issued()
    }
    fn dataset_digest(&self) -> Option<u64> {
        (**self).dataset_digest()
    }
}

impl<T: FormInterface + ?Sized> FormInterface for Box<T> {
    fn schema(&self) -> &Schema {
        (**self).schema()
    }
    fn result_limit(&self) -> usize {
        (**self).result_limit()
    }
    fn execute(&self, query: &ConjunctiveQuery) -> Result<QueryResponse, InterfaceError> {
        (**self).execute(query)
    }
    fn count(&self, query: &ConjunctiveQuery) -> Result<u64, InterfaceError> {
        (**self).count(query)
    }
    fn supports_count(&self) -> bool {
        (**self).supports_count()
    }
    fn queries_issued(&self) -> u64 {
        (**self).queries_issued()
    }
    fn dataset_digest(&self) -> Option<u64> {
        (**self).dataset_digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::outcome::Row;
    use crate::schema::SchemaBuilder;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A toy interface over a fixed value list, used to test the trait's
    /// default methods and blanket impls.
    struct Toy {
        schema: Schema,
        charged: AtomicU64,
    }

    impl Toy {
        fn new() -> Self {
            Toy {
                schema: SchemaBuilder::new()
                    .attribute(Attribute::boolean("x"))
                    .finish()
                    .unwrap(),
                charged: AtomicU64::new(0),
            }
        }
    }

    impl FormInterface for Toy {
        fn schema(&self) -> &Schema {
            &self.schema
        }
        fn result_limit(&self) -> usize {
            1
        }
        fn execute(&self, _q: &ConjunctiveQuery) -> Result<QueryResponse, InterfaceError> {
            self.charged.fetch_add(1, Ordering::Relaxed);
            Ok(QueryResponse {
                rows: vec![Row::new(0, vec![1], vec![])],
                overflow: false,
                reported_count: Some(1),
            })
        }
        fn queries_issued(&self) -> u64 {
            self.charged.load(Ordering::Relaxed)
        }
    }

    #[test]
    fn default_count_goes_through_execute() {
        let toy = Toy::new();
        let c = toy.count(&ConjunctiveQuery::empty()).unwrap();
        assert_eq!(c, 1);
        assert_eq!(toy.queries_issued(), 1, "count charged one query");
        assert!(!toy.supports_count(), "default advertises no count support");
    }

    #[test]
    fn blanket_impls_delegate() {
        let toy = std::sync::Arc::new(Toy::new());
        let as_ref: &dyn FormInterface = &toy;
        assert_eq!(as_ref.result_limit(), 1);
        as_ref.execute(&ConjunctiveQuery::empty()).unwrap();
        assert_eq!(toy.queries_issued(), 1);

        let boxed: Box<dyn FormInterface> = Box::new(Toy::new());
        boxed.execute(&ConjunctiveQuery::empty()).unwrap();
        assert_eq!(boxed.queries_issued(), 1);
    }
}
