//! Error types shared across the HDSampler crates.

use crate::attr::DomIx;

/// Errors arising while constructing or validating model objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// An attribute was declared with an empty domain.
    EmptyDomain {
        /// Offending attribute name.
        attr: String,
    },
    /// An attribute domain exceeds the representable size.
    DomainTooLarge {
        /// Offending attribute name.
        attr: String,
        /// Declared size.
        size: usize,
    },
    /// A categorical attribute repeats a label.
    DuplicateLabel {
        /// Offending attribute name.
        attr: String,
        /// The repeated label.
        label: String,
    },
    /// Numeric buckets are not strictly increasing / non-overlapping.
    UnorderedBuckets {
        /// Offending attribute name.
        attr: String,
    },
    /// Two attributes share a name within one schema.
    DuplicateAttribute {
        /// The repeated name.
        name: String,
    },
    /// A name did not resolve to any attribute of the schema.
    UnknownAttribute {
        /// The unresolved name.
        name: String,
    },
    /// A name did not resolve to any measure of the schema.
    UnknownMeasure {
        /// The unresolved name.
        name: String,
    },
    /// An attribute id is out of range for the schema.
    AttrOutOfRange {
        /// The offending id index.
        index: usize,
        /// Number of attributes in the schema.
        len: usize,
    },
    /// A domain index is out of range for its attribute.
    ValueOutOfRange {
        /// Attribute name.
        attr: String,
        /// Offending index.
        value: DomIx,
        /// Size of the attribute's domain.
        domain_size: usize,
    },
    /// A query attempted to bind one attribute to two different values.
    ConflictingPredicate {
        /// Attribute name.
        attr: String,
        /// Previously bound value index.
        existing: DomIx,
        /// Newly requested value index.
        requested: DomIx,
    },
    /// A tuple's arity does not match its schema.
    ArityMismatch {
        /// Expected number of fields.
        expected: usize,
        /// Provided number of fields.
        got: usize,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::EmptyDomain { attr } => {
                write!(f, "attribute `{attr}` has an empty domain")
            }
            ModelError::DomainTooLarge { attr, size } => {
                write!(f, "attribute `{attr}` domain size {size} exceeds u16 range")
            }
            ModelError::DuplicateLabel { attr, label } => {
                write!(f, "attribute `{attr}` repeats label `{label}`")
            }
            ModelError::UnorderedBuckets { attr } => {
                write!(f, "attribute `{attr}` has unordered or overlapping buckets")
            }
            ModelError::DuplicateAttribute { name } => {
                write!(f, "schema declares attribute `{name}` twice")
            }
            ModelError::UnknownAttribute { name } => {
                write!(f, "schema has no attribute named `{name}`")
            }
            ModelError::UnknownMeasure { name } => {
                write!(f, "schema has no measure named `{name}`")
            }
            ModelError::AttrOutOfRange { index, len } => {
                write!(f, "attribute id {index} out of range (schema has {len})")
            }
            ModelError::ValueOutOfRange {
                attr,
                value,
                domain_size,
            } => write!(
                f,
                "value index {value} out of range for `{attr}` (domain size {domain_size})"
            ),
            ModelError::ConflictingPredicate {
                attr,
                existing,
                requested,
            } => write!(
                f,
                "attribute `{attr}` already bound to index {existing}, cannot rebind to {requested}"
            ),
            ModelError::ArityMismatch { expected, got } => {
                write!(f, "arity mismatch: expected {expected} fields, got {got}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Errors surfaced by a [`FormInterface`](crate::interface::FormInterface).
///
/// These model the failure modes of querying a real hidden database through
/// its public front end.
#[derive(Debug, Clone, PartialEq)]
pub enum InterfaceError {
    /// The per-session/IP query budget is exhausted (§1: "data providers
    /// limits the maximum number of queries that can be issued by an IP
    /// address"). Carries the number of queries already charged.
    BudgetExhausted {
        /// Queries charged before exhaustion.
        issued: u64,
    },
    /// The site rate-limited the request (429 + `Retry-After`, *without*
    /// the budget headers). Unlike [`BudgetExhausted`], this is transient:
    /// the same query succeeds once the client backs off for the advertised
    /// interval.
    ///
    /// [`BudgetExhausted`]: InterfaceError::BudgetExhausted
    Throttled {
        /// Server-advertised backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The query refers to attributes/values this interface does not expose.
    InvalidQuery(ModelError),
    /// The submitted request does not fit the *served* form — the client's
    /// schema has drifted from the site (unknown field, unknown value,
    /// conflicting duplicates). Terminal: every further query built from
    /// the same stale schema would fail identically, so drivers must stop
    /// instead of burning budget. Over HTTP this is a `400` whose body is
    /// carried here verbatim, so in-process and remote failures read the
    /// same.
    SchemaMismatch(String),
    /// The transport layer failed (timeouts, connection reset — simulated).
    Transport(String),
    /// A result page could not be parsed back into rows.
    Parse(String),
    /// The interface does not support the requested operation
    /// (e.g. COUNT on an interface without count reporting).
    Unsupported(&'static str),
}

impl std::fmt::Display for InterfaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterfaceError::BudgetExhausted { issued } => {
                write!(f, "query budget exhausted after {issued} queries")
            }
            InterfaceError::Throttled { retry_after_ms } => {
                write!(f, "rate limited: retry after {retry_after_ms} ms")
            }
            InterfaceError::InvalidQuery(e) => write!(f, "invalid query: {e}"),
            InterfaceError::SchemaMismatch(msg) => {
                write!(
                    f,
                    "schema mismatch (client schema drifted from the served form): {msg}"
                )
            }
            InterfaceError::Transport(msg) => write!(f, "transport failure: {msg}"),
            InterfaceError::Parse(msg) => write!(f, "result page parse failure: {msg}"),
            InterfaceError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for InterfaceError {}

impl From<ModelError> for InterfaceError {
    fn from(e: ModelError) -> Self {
        InterfaceError::InvalidQuery(e)
    }
}

impl InterfaceError {
    /// Whether retrying the same query may succeed.
    ///
    /// Throttling is transient by definition — the server itself names the
    /// backoff. Transport failures are transient when they look like the
    /// wire hiccuping (5xx service errors, dropped/reset/closed
    /// connections, read timeouts) rather than the peer being structurally
    /// unreachable. Everything else — budget exhaustion, invalid queries,
    /// parse failures, unsupported operations — is terminal: no amount of
    /// waiting changes the answer.
    pub fn is_transient(&self) -> bool {
        match self {
            InterfaceError::Throttled { .. } => true,
            InterfaceError::Transport(msg) => {
                // A connection that died *mid-response* is never transient:
                // the server already served (and charged) the request, so a
                // blind retry would double-charge it — even though the
                // embedded cause below would otherwise look retryable.
                if msg.contains("mid-response") {
                    return false;
                }
                msg.starts_with("503")
                    || msg.contains("503 ")
                    || msg.contains("service unavailable")
                    || msg.contains("closed the connection")
                    || msg.contains("connection reset")
                    || msg.contains("connection lost")
                    || msg.contains("read failed")
                    || msg.contains("timed out")
            }
            _ => false,
        }
    }

    /// The server-advertised backoff, when the error carries one.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            InterfaceError::Throttled { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ModelError::ConflictingPredicate {
            attr: "make".into(),
            existing: 1,
            requested: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("make") && msg.contains('1') && msg.contains('2'));

        let ie = InterfaceError::BudgetExhausted { issued: 42 };
        assert!(ie.to_string().contains("42"));
    }

    #[test]
    fn transience_classification() {
        assert!(InterfaceError::Throttled {
            retry_after_ms: 250
        }
        .is_transient());
        assert!(InterfaceError::Transport("503 service unavailable".into()).is_transient());
        assert!(InterfaceError::Transport(
            "connection to 127.0.0.1:80: server closed the connection".into()
        )
        .is_transient());
        assert!(InterfaceError::Transport("connection reset by peer".into()).is_transient());
        assert!(!InterfaceError::Transport(
            "connection to 127.0.0.1:80: connection died mid-response (partial bytes \
             discarded; server closed the connection)"
                .into()
        )
        .is_transient());
        assert!(!InterfaceError::BudgetExhausted { issued: 1 }.is_transient());
        assert!(
            !InterfaceError::SchemaMismatch("400 bad request: no such field".into()).is_transient(),
            "a drifted schema never heals by retrying"
        );
        assert!(!InterfaceError::Parse("bad page".into()).is_transient());
        assert!(!InterfaceError::Unsupported("count").is_transient());
        assert_eq!(
            InterfaceError::Throttled { retry_after_ms: 99 }.retry_after_ms(),
            Some(99)
        );
        assert_eq!(
            InterfaceError::Transport("503".into()).retry_after_ms(),
            None
        );
    }

    #[test]
    fn model_error_converts_to_interface_error() {
        let e = ModelError::UnknownAttribute { name: "zzz".into() };
        let ie: InterfaceError = e.clone().into();
        assert_eq!(ie, InterfaceError::InvalidQuery(e));
    }
}
