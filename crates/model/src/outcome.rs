//! Query responses as observed *through the form interface*.
//!
//! The crucial asymmetry of hidden databases (§2 of the paper): a
//! non-overflowing query reveals its full result set, while an overflowing
//! query reveals only the top-k tuples under a proprietary ranking plus the
//! fact that it overflowed. Samplers must treat overflow results as
//! *unusable for sampling* because the ranking is not random.

use serde::{Deserialize, Serialize};

use crate::attr::DomIx;
use crate::schema::Schema;

/// Three-way classification of a query against a top-k interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Classification {
    /// No tuple satisfies the query (a dead end; the walk restarts).
    Empty,
    /// Between 1 and k tuples satisfy the query; all are returned.
    Valid,
    /// More than k tuples satisfy the query; only the top-k are shown.
    Overflow,
}

impl std::fmt::Display for Classification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Classification::Empty => write!(f, "empty"),
            Classification::Valid => write!(f, "valid"),
            Classification::Overflow => write!(f, "overflow"),
        }
    }
}

/// One result row as rendered on (and scraped back from) a result page.
///
/// Unlike the storage-side [`Tuple`](crate::tuple::Tuple), a `Row` carries an
/// opaque *listing key* — the analogue of the item id a real site prints next
/// to each result — which samplers use for de-duplication and
/// capture–recapture size estimation, never for direct storage access.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Site-assigned opaque listing key (stable per tuple).
    pub key: u64,
    /// Attribute values as domain indices, in schema order.
    pub values: Box<[DomIx]>,
    /// Raw measure values, in schema order.
    pub measures: Box<[f64]>,
}

impl Row {
    /// Construct a row.
    pub fn new(key: u64, values: Vec<DomIx>, measures: Vec<f64>) -> Self {
        Row {
            key,
            values: values.into_boxed_slice(),
            measures: measures.into_boxed_slice(),
        }
    }

    /// Value of attribute `idx` (schema order).
    #[inline]
    pub fn value(&self, idx: usize) -> DomIx {
        self.values[idx]
    }

    /// Render the row with labels resolved through a schema.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> RowDisplay<'a> {
        RowDisplay { row: self, schema }
    }
}

/// Helper implementing `Display` for [`Row`].
pub struct RowDisplay<'a> {
    row: &'a Row,
    schema: &'a Schema,
}

impl std::fmt::Display for RowDisplay<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{} {{", self.row.key)?;
        for (i, (id, attr)) in self.schema.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "{}={}",
                attr.name(),
                attr.label(self.row.values[id.index()])
            )?;
        }
        for (i, m) in self.schema.measures().iter().enumerate() {
            write!(f, ", {}={}", m.name(), self.row.measures[i])?;
        }
        write!(f, "}}")
    }
}

/// Everything a single form submission reveals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResponse {
    /// The returned rows: the full result set when `overflow` is false, the
    /// top-k under the site's ranking when it is true.
    pub rows: Vec<Row>,
    /// Whether the site reported that not all qualifying tuples are shown.
    pub overflow: bool,
    /// The "about N results" count banner, when the site prints one.
    /// May be exact, approximate, or absent depending on the site
    /// (Google Base prints proprietary estimates — §3.1).
    pub reported_count: Option<u64>,
}

impl QueryResponse {
    /// Classify this response.
    #[inline]
    pub fn classification(&self) -> Classification {
        if self.overflow {
            Classification::Overflow
        } else if self.rows.is_empty() {
            Classification::Empty
        } else {
            Classification::Valid
        }
    }

    /// Number of rows actually returned (≤ k).
    #[inline]
    pub fn returned(&self) -> usize {
        self.rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attribute;
    use crate::schema::{Measure, SchemaBuilder};

    #[test]
    fn classification_rules() {
        let empty = QueryResponse {
            rows: vec![],
            overflow: false,
            reported_count: Some(0),
        };
        assert_eq!(empty.classification(), Classification::Empty);

        let valid = QueryResponse {
            rows: vec![Row::new(7, vec![0], vec![])],
            overflow: false,
            reported_count: None,
        };
        assert_eq!(valid.classification(), Classification::Valid);
        assert_eq!(valid.returned(), 1);

        let overflow = QueryResponse {
            rows: vec![Row::new(7, vec![0], vec![])],
            overflow: true,
            reported_count: Some(12_000),
        };
        assert_eq!(overflow.classification(), Classification::Overflow);
    }

    #[test]
    fn row_display_resolves_labels() {
        let s = SchemaBuilder::new()
            .attribute(Attribute::categorical("make", ["Toyota", "Honda"]).unwrap())
            .measure(Measure::new("price"))
            .finish()
            .unwrap();
        let r = Row::new(42, vec![1], vec![9_500.0]);
        let text = r.display(&s).to_string();
        assert!(text.contains("make=Honda"));
        assert!(text.contains("price=9500"));
        assert!(text.starts_with("#42"));
    }

    #[test]
    fn classification_display() {
        assert_eq!(Classification::Empty.to_string(), "empty");
        assert_eq!(Classification::Valid.to_string(), "valid");
        assert_eq!(Classification::Overflow.to_string(), "overflow");
    }
}
