//! # hdsampler-model
//!
//! Shared vocabulary for the HDSampler system: attribute/domain definitions,
//! schemas, tuples, conjunctive equality queries, query responses, and the
//! [`FormInterface`] contract that separates *samplers* from *hidden
//! databases*.
//!
//! The model follows the paper's abstraction (SIGMOD 2009 demo, §1–2): a
//! hidden database exposes a **conjunctive web form interface** — a query is
//! a conjunction of `attribute = value` equality predicates over finite
//! attribute domains, and the interface returns at most `k` tuples selected
//! by a proprietary (deterministic, non-random) ranking function, together
//! with an *overflow* indicator when more than `k` tuples qualify.
//!
//! Numeric attributes (price, mileage, …) are represented the way real web
//! forms expose them: *discretized* into labelled buckets that can be used in
//! predicates, while the raw numeric value is carried alongside each tuple as
//! a **measure** so that `SUM`/`AVG` style aggregates remain answerable from
//! samples.
//!
//! Nothing in this crate performs I/O or owns data-at-scale; it is the pure
//! data model every other crate builds upon.

pub mod attr;
pub mod error;
pub mod interface;
pub mod outcome;
pub mod query;
pub mod schema;
pub mod tuple;

pub use attr::{AttrId, AttrKind, Attribute, Bucket, DomIx};
pub use error::{InterfaceError, ModelError};
pub use interface::FormInterface;
pub use outcome::{Classification, QueryResponse, Row};
pub use query::{ConjunctiveQuery, Predicate, QueryDisplay};
pub use schema::{Measure, MeasureId, Schema, SchemaBuilder};
pub use tuple::{Tuple, TupleId};
