//! Property-based tests for the query model: normalization laws, the
//! refinement partial order, and label round-trips.

use hdsampler_model::{AttrId, Attribute, ConjunctiveQuery, DomIx, SchemaBuilder};
use proptest::prelude::*;

/// Strategy: a list of (attr, value) pairs over a small universe, possibly
/// with duplicate attributes (which `from_pairs` must reject only on
/// *conflicting* values).
fn pairs() -> impl Strategy<Value = Vec<(u16, u16)>> {
    prop::collection::vec((0u16..6, 0u16..4), 0..8)
}

fn to_query(pairs: &[(u16, u16)]) -> Option<ConjunctiveQuery> {
    ConjunctiveQuery::from_pairs(pairs.iter().map(|&(a, v)| (AttrId(a), v as DomIx))).ok()
}

proptest! {
    /// Construction succeeds iff no attribute appears with two different
    /// values, and the result is in sorted normal form with unique attrs.
    #[test]
    fn normal_form(pairs in pairs()) {
        let conflicted = (0..pairs.len()).any(|i| {
            pairs[i + 1..].iter().any(|&(a, v)| a == pairs[i].0 && v != pairs[i].1)
        });
        match to_query(&pairs) {
            None => prop_assert!(conflicted),
            Some(q) => {
                prop_assert!(!conflicted);
                let attrs: Vec<u16> = q.predicates().iter().map(|p| p.attr.0).collect();
                let mut sorted = attrs.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(attrs, sorted, "sorted and deduplicated");
            }
        }
    }

    /// Order of insertion never matters: any permutation of compatible pairs
    /// yields the identical normalized query.
    #[test]
    fn insertion_order_irrelevant(pairs in pairs(), seed in 0u64..1000) {
        if let Some(q) = to_query(&pairs) {
            // Deterministic pseudo-shuffle driven by `seed`.
            let mut shuffled = pairs.clone();
            let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            for i in (1..shuffled.len()).rev() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                shuffled.swap(i, (state % (i as u64 + 1)) as usize);
            }
            let q2 = to_query(&shuffled).expect("same pairs remain compatible");
            prop_assert_eq!(q, q2);
        }
    }

    /// Refinement is a partial order consistent with semantics: if
    /// `narrow.is_refinement_of(broad)` then every value vector matched by
    /// `narrow` is matched by `broad`.
    #[test]
    fn refinement_implies_containment(
        pa in pairs(), pb in pairs(),
        probe in prop::collection::vec(0u16..4, 6),
    ) {
        if let (Some(a), Some(b)) = (to_query(&pa), to_query(&pb)) {
            if a.is_refinement_of(&b) && a.matches(&probe) {
                prop_assert!(b.matches(&probe));
            }
            // Reflexivity and empty-query top element.
            prop_assert!(a.is_refinement_of(&a));
            prop_assert!(a.is_refinement_of(&ConjunctiveQuery::empty()));
        }
    }

    /// `refine` extends the partial order downward; `drop_attr` inverts it.
    #[test]
    fn refine_then_drop_roundtrip(pairs in pairs(), attr in 6u16..8, value in 0u16..4) {
        if let Some(q) = to_query(&pairs) {
            // `attr` ∈ 6..8 is guaranteed unbound (pairs use attrs < 6).
            let refined = q.refine(AttrId(attr), value as DomIx).unwrap();
            prop_assert!(refined.is_refinement_of(&q));
            prop_assert_eq!(refined.binding(AttrId(attr)), Some(value as DomIx));
            prop_assert_eq!(refined.drop_attr(AttrId(attr)), q);
        }
    }

    /// `is_refinement_of` agrees with the naive subset check on predicate
    /// sets.
    #[test]
    fn refinement_matches_naive_subset(pa in pairs(), pb in pairs()) {
        if let (Some(a), Some(b)) = (to_query(&pa), to_query(&pb)) {
            let naive = b
                .predicates()
                .iter()
                .all(|p| a.predicates().contains(p));
            prop_assert_eq!(a.is_refinement_of(&b), naive);
        }
    }
}

proptest! {
    /// Every domain label of a categorical attribute parses back to its own
    /// index — the invariant the HTML scraper relies on.
    #[test]
    fn label_roundtrip(n in 1usize..40) {
        let labels: Vec<String> = (0..n).map(|i| format!("v{i}")).collect();
        let attr = Attribute::categorical("x", labels).unwrap();
        for v in attr.domain() {
            prop_assert_eq!(attr.parse_label(&attr.label(v)), Some(v));
        }
    }

    /// Numeric bucketization maps each point to exactly one bucket within
    /// range.
    #[test]
    fn bucket_partition(x in 0.0f64..100.0, n in 1usize..12) {
        let attr = Attribute::numeric_even("m", 0.0, 100.0, n).unwrap();
        let b = attr.bucket_of(x).expect("in range");
        prop_assert!((b as usize) < n);
        // No other bucket claims the same point.
        let hits = (0..n)
            .filter(|&i| {
                let lo = 100.0 * i as f64 / n as f64;
                let hi = if i + 1 == n { 100.0 } else { 100.0 * (i + 1) as f64 / n as f64 };
                x >= lo && x < hi
            })
            .count();
        prop_assert_eq!(hits, 1);
    }
}

#[test]
fn fully_specified_matches_only_its_vector() {
    let schema = SchemaBuilder::new()
        .attribute(Attribute::boolean("a"))
        .attribute(Attribute::categorical("b", ["x", "y", "z"]).unwrap())
        .finish()
        .unwrap();
    let q = ConjunctiveQuery::fully_specified(&schema, &[1, 2]).unwrap();
    for a in 0..2u16 {
        for b in 0..3u16 {
            assert_eq!(q.matches(&[a, b]), a == 1 && b == 2);
        }
    }
}
