//! End-to-end locator tests: scrape-based discovery against a live
//! server, heterogeneous three-scheme fleets in one [`RunPlan`], and the
//! committed zero-server replay fixture.

use std::sync::Arc;

use hdsampler_hidden_db::HiddenDb;
use hdsampler_model::FormInterface as _;
use hdsampler_server::{HttpServer, ServerConfig, ServerHandle};
use hdsampler_webform::{
    ConnectOptions, ConnectorRegistry, Driver, HttpTransport, LocalSite, RunPlan, SiteLocator,
    SiteTask, WebFormInterface,
};
use hdsampler_workload::{resolve_dataset, DbConfig, WorkloadSpec};

fn build_db(dataset: &str, n: usize, k: usize, seed: u64) -> HiddenDb {
    WorkloadSpec {
        data: resolve_dataset(dataset).unwrap().data_spec(n, seed),
        db: DbConfig::no_counts().with_k(k),
        seed,
    }
    .build()
}

/// Boot a live `serve`-equivalent front door over the given dataset on an
/// ephemeral port.
fn serve(dataset: &str, n: usize, k: usize, seed: u64) -> ServerHandle {
    let db = build_db(dataset, n, k, seed);
    let schema = Arc::new(db.schema().clone());
    let site = Arc::new(LocalSite::new(db, schema));
    HttpServer::serve(ServerConfig::default(), site).unwrap()
}

fn keys(samples: &hdsampler_core::SampleSet) -> Vec<u64> {
    samples.rows().map(|r| r.key).collect()
}

fn plan(target: usize, seed: u64) -> RunPlan<'static> {
    RunPlan::target(target)
        .walkers(1)
        .seed(seed)
        .driver(Driver::Threaded)
}

/// The headline acceptance criterion: `sample http://addr` with *zero*
/// schema flags discovers the schema by scraping `/` and then walks the
/// exact same sample sequence as a run configured from flags.
#[test]
fn discovery_matches_flag_configured_run_sequence_identically() {
    let handle = serve("vehicles-compact", 400, 50, 2009);
    let addr = handle.addr().to_string();

    // Flag-configured baseline: the schema, k and count support are built
    // locally from workload flags (the pre-locator `--remote` contract).
    let twin = build_db("vehicles-compact", 400, 50, 2009);
    let schema = Arc::new(twin.schema().clone());
    let (k, counts) = (twin.result_limit(), twin.supports_count());
    drop(twin);
    let iface = WebFormInterface::new(HttpTransport::new(&addr), schema, k, counts);
    let mut flagged = vec![SiteTask::new("flagged", iface)];
    let flag_report = plan(30, 7).run(&mut flagged);

    // Locator run: nothing but the address crosses the wire.
    let loc = SiteLocator::parse(&format!("http://{addr}")).unwrap();
    let (loc_report, _fleet) = plan(30, 7).run_locators(&[loc]).unwrap();

    let flag_keys = keys(&flag_report.site().samples);
    let loc_keys = keys(&loc_report.site().samples);
    assert_eq!(flag_keys.len(), 30, "{:?}", flag_report.site().stopped);
    assert_eq!(
        flag_keys, loc_keys,
        "a discovered schema must walk the identical sample sequence"
    );
    handle.shutdown();
}

/// One RunPlan over a three-scheme heterogeneous fleet — a replayed tape
/// (slot 0, serverless), an in-process Boolean site, and a live HTTP
/// server over a third schema — with the replay leg reproducing the
/// recorded sample sequence bit-identically.
#[test]
fn mixed_fleet_drives_three_schemes_with_per_site_schemas() {
    let tape = std::env::temp_dir().join(format!("hds_e2e_mixed_{}.jsonl", std::process::id()));
    let tape_str = tape.to_str().unwrap().to_string();

    // Record leg 0 solo, under the exact plan config the fleet will use:
    // walker seeds mix the site index, so the tape only replays from the
    // same slot with the same target/walkers/seed.
    let recorded_loc = SiteLocator::parse("local:vehicles-compact?n=400&k=50&seed=11").unwrap();
    let (rec_report, _task) = plan(12, 5)
        .slider(1.0)
        .run_locators_with(
            &[recorded_loc],
            &ConnectOptions {
                record: Some(tape_str.clone()),
                l2: None,
            },
        )
        .unwrap();
    let recorded_keys = keys(&rec_report.site().samples);
    assert_eq!(recorded_keys.len(), 12);

    // The live leg serves a different schema than either simulated leg —
    // with a generous k so the 12-attribute form's walks stay short.
    let handle = serve("vehicles-full", 600, 300, 3);
    let locators = vec![
        SiteLocator::parse(&format!("replay:{tape_str}")).unwrap(),
        SiteLocator::parse("local:boolean?n=300&k=30&seed=2").unwrap(),
        SiteLocator::parse(&format!("http://{}", handle.addr())).unwrap(),
    ];
    // slider 1.0 keeps the deep 12-attribute vehicles-full walks cheap;
    // it must match the recording run for the tape to replay.
    let (report, fleet) = plan(12, 5).slider(1.0).run_locators(&locators).unwrap();
    handle.shutdown();

    // Every leg reached its target, and the schemas really differ per site.
    assert_eq!(report.fleet.sites.len(), 3);
    for site in &report.fleet.sites {
        assert_eq!(site.samples.len(), 12, "{}: {:?}", site.name, site.stopped);
    }
    let arities: Vec<usize> = fleet.iter().map(|t| t.iface.schema().arity()).collect();
    assert_eq!(arities.len(), 3);
    assert_ne!(arities[0], arities[1]);
    assert_ne!(arities[1], arities[2]);
    assert_ne!(arities[0], arities[2]);

    // The serverless replay leg reproduced the recorded walk exactly.
    assert_eq!(
        keys(&report.fleet.sites[0].samples),
        recorded_keys,
        "replay must reproduce the recorded sample sequence bit-identically"
    );
    std::fs::remove_file(&tape).ok();
}

/// The committed CI fixture still replays: 25/25 samples with no server,
/// under the CLI's default plan (`sample replay:… --samples 25`). If this
/// fails after a sampler/schema change, regenerate the fixture with:
/// `cargo run -p hdsampler-cli -- sample "local:vehicles-compact?n=400&k=50&seed=2009" --samples 25 --record crates/cli/tests/fixtures/replay_smoke.jsonl`
#[test]
fn committed_replay_fixture_is_fresh() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/replay_smoke.jsonl"
    );
    let loc = SiteLocator::parse(&format!("replay:{path}")).unwrap();
    let task = ConnectorRegistry::standard()
        .connect(&loc, &ConnectOptions::default())
        .unwrap();
    assert_eq!(task.iface.result_limit(), 50, "k comes off the taped `/`");
    drop(task);

    // The CLI's defaults: slider 0, seed 2009, one threaded walker.
    let (report, _fleet) = RunPlan::target(25)
        .walkers(1)
        .seed(2009)
        .driver(Driver::Threaded)
        .run_locators(&[loc])
        .unwrap();
    assert_eq!(
        report.site().samples.len(),
        25,
        "stale fixture? stopped: {:?} — regenerate it (see test doc)",
        report.site().stopped
    );
}
