//! C10K smoke: a real `hdsampler serve` process under the epoll reactor
//! holding ten thousand concurrent keep-alive connections, every one of
//! them doing pipelined HTTP exchanges — the load that motivated
//! replacing the bounded pool as the default serve mode.
//!
//! Two processes on purpose: the server is the released binary
//! (`CARGO_BIN_EXE_hdsampler`), so the file-descriptor budget splits
//! between the halves and the test exercises the same stdout contract a
//! shell user sees. Ignored by default — it needs ~10k fds and a few
//! seconds of wall clock — and run explicitly by CI's `c10k-smoke` job
//! with `--ignored`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Connections to hold open. Above the 10_000 assertion floor so a few
/// dial failures under load don't flake the run, while both processes
/// stay well inside a 20k-fd rlimit.
const CONNS: usize = 10_500;

/// The CI assertion floor: what "C10K" promises.
const FLOOR: usize = 10_000;

/// Dialer threads. The exchanges are loopback round trips, so a handful
/// of threads keeps the dial phase well inside the server's 5 s
/// keep-alive window even on a single-core runner.
const DIALERS: usize = 8;

/// A serve child that is killed on drop, so a failing assertion never
/// leaves an orphan listener behind.
struct ServeGuard(Child);

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Boot `hdsampler serve --port 0` and parse the bound address from its
/// startup banner; the rest of the child's stdout is drained by a
/// background thread so the pipe can never block the server.
fn spawn_serve() -> (ServeGuard, String) {
    let child = Command::new(env!("CARGO_BIN_EXE_hdsampler"))
        .args([
            "serve",
            "--port",
            "0",
            "--n",
            "500",
            "--k",
            "50",
            "--serve-for",
            "120",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn hdsampler serve");
    let mut guard = ServeGuard(child);
    let stdout = guard.0.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before its banner")
            .expect("banner is utf-8");
        // "serving `vehicles-compact` (n = 500, top-50) on http://ADDR — form at /, ..."
        if let Some(rest) = line.split("on http://").nth(1) {
            break rest
                .split(" — ")
                .next()
                .expect("banner names the address")
                .to_string();
        }
    };
    std::thread::spawn(move || for _ in lines.by_ref() {});
    (guard, addr)
}

fn request(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nHost: c10k\r\nConnection: keep-alive\r\n\r\n")
}

/// One fresh-connection scrape of `/metrics`, returning the value of the
/// open-connection gauge the reactor maintains.
fn scrape_open_connections(addr: &str) -> f64 {
    let mut conn = TcpStream::connect(addr).expect("dial /metrics");
    conn.write_all(request("/metrics").as_bytes())
        .expect("send scrape");
    conn.write_all(b"")
        .and_then(|_| conn.flush())
        .expect("flush scrape");
    // Close our half so the body read below terminates at EOF once the
    // server finishes the response and times the connection out — but
    // the exposition arrives long before that; just bound the read.
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut text = String::new();
    let mut buf = [0u8; 16 * 1024];
    while !text.contains("hds_server_open_connections") || !text.ends_with('\n') {
        match conn.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => text.push_str(&String::from_utf8_lossy(&buf[..n])),
            Err(e) => panic!("scrape read failed: {e}"),
        }
    }
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or(&text);
    hdsampler_core::parse_exposition(body)
        .expect("exposition parses")
        .get("hds_server_open_connections")
        .copied()
        .expect("gauge present")
}

/// Dial with a couple of retries: under a 10k-connection storm the
/// listener's accept backlog can momentarily fill even on loopback.
fn dial(addr: &str) -> Option<TcpStream> {
    for attempt in 0..3 {
        match TcpStream::connect(addr) {
            Ok(s) => return Some(s),
            Err(_) => std::thread::sleep(Duration::from_millis(5 << attempt)),
        }
    }
    None
}

#[test]
#[ignore = "needs ~10k fds; run by CI's c10k-smoke job with --ignored"]
fn reactor_serve_sustains_ten_thousand_keep_alive_connections() {
    let (_guard, addr) = spawn_serve();

    // Phase 1 — the storm: dial CONNS keep-alive connections, write one
    // pipelined GET on each as it lands (touching the slowloris timer),
    // and keep every socket open.
    let dial_started = Instant::now();
    let req = request("/");
    let mut held: Vec<TcpStream> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..DIALERS)
            .map(|d| {
                let addr = addr.as_str();
                let req = req.as_str();
                s.spawn(move || {
                    let quota = CONNS / DIALERS + usize::from(d < CONNS % DIALERS);
                    let mut conns = Vec::with_capacity(quota);
                    for _ in 0..quota {
                        let Some(mut conn) = dial(addr) else { continue };
                        if conn.write_all(req.as_bytes()).is_ok() {
                            conns.push(conn);
                        }
                    }
                    conns
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("dialer thread"))
            .collect()
    });
    assert!(
        held.len() >= FLOOR,
        "only {} of {CONNS} dials survived",
        held.len()
    );

    // Phase 2 — rearm: a second pipelined request on every held socket
    // resets each connection's idle timer to roughly now, guaranteeing
    // all of them are still open while the scrape below runs, however
    // long phase 1 took relative to the 5 s keep-alive timeout.
    for conn in &mut held {
        conn.write_all(req.as_bytes()).expect("pipelined rearm");
    }

    // Phase 3 — the headline number, read off the server's own gauge.
    let open = scrape_open_connections(&addr);
    assert!(
        open >= FLOOR as f64,
        "server gauge reports {open} open connections with {} held \
         (dial + rearm took {:?})",
        held.len(),
        dial_started.elapsed()
    );

    // Phase 4 — the connections are live HTTP, not just parked sockets:
    // spot-check that pipelined responses actually come back in order.
    for conn in held.iter_mut().take(16) {
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut seen = String::new();
        let mut buf = [0u8; 4096];
        while seen.matches("HTTP/1.1 200").count() < 2 {
            let n = conn.read(&mut buf).expect("pipelined response");
            assert!(n > 0, "server hung up a keep-alive connection");
            seen.push_str(&String::from_utf8_lossy(&buf[..n]));
        }
    }
}
