//! Hand-rolled argument parsing (no external parser dependencies).

use hdsampler_webform::ChaosSpec;

/// Usage text shown on parse errors and `--help`.
pub const USAGE: &str = "\
HDSampler — sampling hidden databases behind top-k web forms

USAGE:
  hdsampler <COMMAND> [OPTIONS]

COMMANDS:
  describe    show the simulated site's form (attributes and domains)
  sample      run an incremental sampling session and print histograms
  aggregate   estimate aggregates (proportion / count / avg / sum)
  validate    compare sampled marginals against the simulation's truth
  multi-site  drive a fleet of sites concurrently (virtual or real wire)
  serve       put the simulated site behind a real HTTP front door
  trace       analyze a trace journal or follow a live /events stream
  cache       inspect or maintain a persistent L2 history directory

COMMON OPTIONS:
  --source <name>      dataset registry name: vehicles-compact, vehicles-full,
                       boolean, boolean-correlated (default vehicles-compact)
  --dataset <...>      alias for --source
  --n <N>              number of tuples to simulate        (default 8000)
  --k <K>              top-k display limit                 (default 250)
  --seed <S>           data + sampler seed                 (default 2009)
  --samples <S>        sample target                       (default 200)
  --slider <0..1>      efficiency/skew slider              (default 0.0)
  --bind attr=label    pin a binding (repeatable; Figure 3 style scoping)
  --budget <Q>         per-session query limit
  --counts <absent|exact|noisy>  count banner mode         (default absent)

OBSERVABILITY (sample, multi-site, serve):
  --trace <path>       journal trace events to JSONL — sample/multi-site:
                       the run's span stream (full fidelity under --driver
                       coop, accepted samples otherwise); serve: the
                       per-request log, written at graceful shutdown.
                       Seeded virtual-wire journals replay bit-identically
  --metrics <value>    sample/multi-site: loopback port for a live
                       telemetry server exposing /metrics + /events while
                       the run progresses (0 = ephemeral, address printed);
                       serve: file path receiving the final Prometheus
                       exposition at shutdown (the live /metrics endpoint
                       is always on)

sample:
  <locator>            sample any site named by one locator string instead of
                       the flag-built in-process site:
                         local:<dataset>[?n=..&k=..&seed=..&counts=..&budget=..&latency=..&jitter=..]
                         http://host:port     (schema discovered by scraping /)
                         replay:<tape.jsonl>  (recorded tape served offline — no server)
  --record <path>      write every exchange to a JSONL tape; replay it later
                       with `sample replay:<path>` (no server needed)
  --l2 <dir>           persist learned facts under <dir>/<site fingerprint>/
                       (JSONL fact log); a second run against the same site
                       version warm-starts from disk instead of the wire
                       (also a multi-site flag; per-site `l2=` locator
                       parameters win over it)
  --histogram <attr>   attribute(s) to display (repeatable; default: first)
  --watch              re-render live histograms from streaming snapshots
                       every 25 samples while the session runs
  --remote <addr>      sample a live `hdsampler serve` at host:port — sugar
                       for the `http://<addr>` locator (the schema is
                       discovered by scraping /, never configured)
  --coop-walkers <W>   with --remote: drive W cooperative walker machines
                       from one thread, pipelined over the wire (optionally
                       share connections via --coop-conns)
  --coop-conns <C>     with --coop-walkers: TCP connections to share
                       (default 4 — a live server serves at most
                       `serve --workers` keep-alive connections at once)

aggregate:
  --proportion attr=label   estimate a proportion (repeatable)
  --avg <measure>           estimate an average   (repeatable)

validate:
  --attr <attr>        attribute to validate (default: first)

multi-site:
  --site <locator>     add one fleet leg by locator (repeatable) — mixes
                       local:, http:// and replay: legs in a single run;
                       replaces --sites/--latency/--jitter/--chaos/--remote
  --sites <S>          number of simulated sites                (default 4)
  --walkers <W>        walker threads (connections) per site    (default 2)
  --latency <MS[,MS,...]>  per-request latency in ms; a comma list assigns
                       site i the i-th value, cycling           (default 100)
  --jitter <MS>        ± uniform jitter around each site's latency (default 0)
  --driver <concurrent|serial|both|coop>  driving mode          (default concurrent)
                       coop: one thread multiplexes all sites' walkers over
                       pipelined connections instead of W threads per site
  --remote <addr[,addr,...]>  drive live servers (one site per address;
                       latency/jitter flags do not apply — the wire is real)
  --watch              re-render fleet-wide live histograms while the run
                       progresses
  --coop-conns <C>     with --driver coop: wire connections per site
                       (default: 1/walker on the virtual wire, 4 on live
                       servers)
  --chaos <spec>       make every simulated site adversarial: seeded faults
                       on the virtual wire (not valid with --remote — serve
                       the adversary with `serve --chaos` instead), e.g.
                       seed=7,latency=40,throttle=0.2,retry_after=250,
                       fail=0.1,drop=0.05,slow=400x50,jitter=30,count_noise=0.3
  --steal              with --driver coop: when a site finishes, reassign its
                       walkers to the hungriest site still sampling
  (--samples is the per-site target; --budget the per-site query cap)

serve:
  --port <P>           TCP port on 127.0.0.1 (default 8000; 0 = ephemeral)
  --reactor            event-driven serve mode: epoll readiness loops, one
                       per core, multiplexing every connection (default)
  --pool               thread-per-connection serve mode: a bounded worker
                       pool of --workers threads (at most that many
                       keep-alive connections at once)
  --workers <W>        connection worker threads with --pool     (default 4)
  --serve-for <SECS>   shut down gracefully after SECS (default: run until
                       killed)
  --max-conns <N>      admission cap: connections past N concurrently open
                       get `503` + `Retry-After: 1` and are closed
                       (default 0 = uncapped)
  --chaos <spec>       serve through a fault-injecting adversary (grammar as
                       under multi-site; sleeps are real wall-clock here)

trace:
  report <journal.jsonl>   per-stage latency breakdown (queue/service/
                           backoff), cache hit rates and the critical-path
                           summary of a --trace journal
  watch <host:port>        follow a live server's /events stream — the
                           remote face of --watch, printing the streaming
                           progress line for every accepted-sample event

cache:
  stats --l2 <dir>         per-site record/segment/byte counts of a
                           persistent history directory
  compact --l2 <dir>       fold every site's segments into one (dedup by
                           query, newest fact wins)
  clear --l2 <dir>         delete all persisted facts (keeps the directory)
";

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// Which subcommand to run.
    pub command: Command,
    /// Shared options.
    pub common: Common,
}

/// Subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Show the form definition.
    Describe,
    /// Incremental sampling with live histograms.
    Sample {
        /// Positional site locator (`local:…`, `http://…`, `replay:…`).
        /// `None` falls back to the flag-built in-process site (or
        /// `--remote`, which is sugar for an `http://` locator).
        locator: Option<String>,
        /// Attributes to display as histograms.
        histograms: Vec<String>,
        /// Record every exchange to this JSONL tape for `replay:`.
        record: Option<String>,
        /// With `--remote`: drive this many cooperative walker machines
        /// from one thread instead of a single blocking sampler.
        coop_walkers: Option<usize>,
        /// With `--coop-walkers`: wire connections to share (default: one
        /// per walker).
        coop_conns: Option<usize>,
        /// Re-render live histograms from streaming snapshots mid-run.
        watch: bool,
        /// Journal the run's trace events to this JSONL path.
        trace: Option<String>,
        /// Loopback port for a live telemetry server (`/metrics` +
        /// `/events`) over the run.
        metrics: Option<String>,
        /// Root directory of the persistent L2 fact log (facts learned
        /// on the wire persist; later runs warm-start from disk).
        l2: Option<String>,
    },
    /// Aggregate console.
    Aggregate {
        /// `attr=label` proportion targets.
        proportions: Vec<(String, String)>,
        /// Measures to average.
        avgs: Vec<String>,
    },
    /// Truth comparison.
    Validate {
        /// Attribute to validate.
        attr: Option<String>,
    },
    /// Fleet driving: S sites × W walkers over the virtual or real wire.
    MultiSite {
        /// Heterogeneous fleet legs by locator (`--site`, repeatable).
        /// Non-empty supersedes `sites`/`latencies_ms`/`jitter_ms`.
        site_locators: Vec<String>,
        /// Number of simulated sites.
        sites: usize,
        /// Walker threads (= virtual connections) per site.
        walkers: usize,
        /// Per-site latency list in milliseconds (site i uses entry
        /// `i % len`).
        latencies_ms: Vec<u64>,
        /// ± uniform jitter half-width around each site's latency.
        jitter_ms: u64,
        /// Driving mode.
        mode: DriverMode,
        /// With `--driver coop`: wire connections per site the walkers
        /// share. Defaults to one per walker on the virtual wire and a
        /// small pipelined handful on live servers (a thread-per-
        /// connection server serves at most `--workers` keep-alive
        /// connections at once).
        coop_conns: Option<usize>,
        /// Re-render fleet-wide live histograms mid-run.
        watch: bool,
        /// Seeded fault schedule wrapped around every simulated site's
        /// wire (never valid with `--remote`).
        chaos: Option<ChaosSpec>,
        /// With `--driver coop`: reassign finished sites' walkers to the
        /// hungriest site still sampling.
        steal: bool,
        /// Journal the run's trace events to this JSONL path.
        trace: Option<String>,
        /// Loopback port for a live telemetry server (`/metrics` +
        /// `/events`) over the run.
        metrics: Option<String>,
        /// Root directory of the persistent L2 fact log shared by every
        /// leg (per-site `l2=` locator parameters win over it).
        l2: Option<String>,
    },
    /// Serve the simulated site over real HTTP.
    Serve {
        /// Port on 127.0.0.1 (0 picks an ephemeral port).
        port: u16,
        /// Serve through the bounded thread-per-connection pool instead
        /// of the default epoll reactor (`--pool`).
        pool: bool,
        /// Connection worker threads (pool mode).
        workers: usize,
        /// Graceful shutdown after this many seconds (None: run until
        /// killed).
        serve_for: Option<u64>,
        /// Seeded fault schedule the served site hides behind.
        chaos: Option<ChaosSpec>,
        /// Journal the per-request log to this JSONL path at shutdown.
        trace: Option<String>,
        /// Write the final `/metrics` exposition to this file at shutdown.
        metrics: Option<String>,
        /// Admission cap: connections past this many concurrently open
        /// get `503` + `Retry-After` (0 = uncapped).
        max_conns: usize,
    },
    /// Observability tooling over journals and live event streams.
    Trace {
        /// What to do.
        action: TraceAction,
    },
    /// Maintenance of a persistent L2 history directory.
    Cache {
        /// What to do.
        action: CacheAction,
        /// The cache root (`--l2 <dir>`).
        dir: String,
    },
}

/// The `cache` subcommand's actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAction {
    /// Per-site record/segment/byte counts.
    Stats,
    /// Fold every site's segments into one, deduplicating by query.
    Compact,
    /// Delete all persisted facts.
    Clear,
}

/// The `trace` subcommand's actions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceAction {
    /// Summarize a `--trace` journal: per-stage latency and critical path.
    Report {
        /// Path to the JSONL journal.
        journal: String,
    },
    /// Follow a live server's `/events` stream (`--watch`'s remote mode).
    Watch {
        /// `host:port` of a running `hdsampler serve` or `--metrics` plane.
        addr: String,
    },
}

/// How the `multi-site` command drives the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverMode {
    /// All sites concurrently (per-site walker pools).
    Concurrent,
    /// One site after another, single connection each (baseline).
    Serial,
    /// Both, reporting the speedup.
    Both,
    /// Cooperative: every site's walkers multiplexed from one thread.
    Coop,
}

/// Options shared by all subcommands.
#[derive(Debug, Clone, PartialEq)]
pub struct Common {
    /// Data source name.
    pub source: String,
    /// Simulated tuple count.
    pub n: usize,
    /// Top-k limit.
    pub k: usize,
    /// Seed.
    pub seed: u64,
    /// Sample target.
    pub samples: usize,
    /// Slider position.
    pub slider: f64,
    /// Pinned bindings.
    pub binds: Vec<(String, String)>,
    /// Optional query budget.
    pub budget: Option<u64>,
    /// Count banner mode.
    pub counts: String,
    /// Live server address(es) — `host:port`, comma-separated for
    /// multi-site — instead of the in-process wire.
    pub remote: Option<String>,
}

impl Default for Common {
    fn default() -> Self {
        Common {
            source: "vehicles-compact".into(),
            n: 8_000,
            k: 250,
            seed: 2009,
            samples: 200,
            slider: 0.0,
            binds: Vec::new(),
            budget: None,
            counts: "absent".into(),
            remote: None,
        }
    }
}

fn split_kv(s: &str, flag: &str) -> Result<(String, String), String> {
    s.split_once('=')
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .ok_or_else(|| format!("{flag} expects attr=label, got `{s}`"))
}

/// Parse an argv slice (without the program name).
pub fn parse(argv: &[String]) -> Result<Cli, String> {
    let mut it = argv.iter().peekable();
    let command_word = it.next().ok_or("missing command")?;
    if command_word == "--help" || command_word == "-h" {
        return Err("help requested".into());
    }

    let mut common = Common::default();
    let mut histograms = Vec::new();
    let mut proportions = Vec::new();
    let mut avgs = Vec::new();
    let mut validate_attr = None;
    let mut sites = 4usize;
    let mut walkers = 2usize;
    let mut latencies_ms = vec![100u64];
    let mut jitter_ms = 0u64;
    let mut mode = DriverMode::Concurrent;
    let mut port = 8000u16;
    let mut serve_workers = 4usize;
    let mut serve_for = None;
    let mut serve_pool = false;
    let mut serve_reactor = false;
    let mut coop_walkers = None;
    let mut coop_conns = None;
    let mut watch = false;
    let mut chaos = None;
    let mut steal = false;
    let mut locator = None;
    let mut site_locators: Vec<String> = Vec::new();
    let mut record = None;
    let mut trace_path = None;
    let mut metrics = None;
    let mut trace_words: Vec<String> = Vec::new();
    let mut cache_word: Option<String> = None;
    let mut l2 = None;
    let mut max_conns = 0usize;
    let mut sites_set = false;
    let mut latency_set = false;
    let mut jitter_set = false;

    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--source" => common.source = value("--source")?.clone(),
            "--dataset" => common.source = value("--dataset")?.clone(),
            "--n" => common.n = value("--n")?.parse().map_err(|_| "--n: not a number")?,
            "--k" => common.k = value("--k")?.parse().map_err(|_| "--k: not a number")?,
            "--seed" => {
                common.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed: not a number")?
            }
            "--samples" => {
                common.samples = value("--samples")?
                    .parse()
                    .map_err(|_| "--samples: not a number")?
            }
            "--slider" => {
                common.slider = value("--slider")?
                    .parse()
                    .map_err(|_| "--slider: not a number")?;
                if !(0.0..=1.0).contains(&common.slider) {
                    return Err("--slider must lie in [0, 1]".into());
                }
            }
            "--bind" => common.binds.push(split_kv(value("--bind")?, "--bind")?),
            "--budget" => {
                common.budget = Some(
                    value("--budget")?
                        .parse()
                        .map_err(|_| "--budget: not a number")?,
                )
            }
            "--counts" => {
                let v = value("--counts")?.clone();
                if !["absent", "exact", "noisy"].contains(&v.as_str()) {
                    return Err(format!("--counts: unknown mode `{v}`"));
                }
                common.counts = v;
            }
            "--sites" => {
                sites_set = true;
                sites = value("--sites")?
                    .parse()
                    .map_err(|_| "--sites: not a number")?;
                if sites == 0 {
                    return Err("--sites must be at least 1".into());
                }
            }
            "--walkers" => {
                walkers = value("--walkers")?
                    .parse()
                    .map_err(|_| "--walkers: not a number")?;
                if walkers == 0 {
                    return Err("--walkers must be at least 1".into());
                }
            }
            "--latency" => {
                latency_set = true;
                latencies_ms = value("--latency")?
                    .split(',')
                    .map(|part| part.trim().parse::<u64>())
                    .collect::<Result<Vec<u64>, _>>()
                    .map_err(|_| "--latency: expects ms or a comma list of ms")?;
                if latencies_ms.is_empty() || latencies_ms.contains(&0) {
                    return Err(
                        "--latency entries must be at least 1 ms (the wire model bills round trips)"
                            .into(),
                    );
                }
            }
            "--jitter" => {
                jitter_set = true;
                jitter_ms = value("--jitter")?
                    .parse()
                    .map_err(|_| "--jitter: not a number")?
            }
            "--remote" => common.remote = Some(value("--remote")?.clone()),
            "--port" => {
                port = value("--port")?
                    .parse()
                    .map_err(|_| "--port: not a port number")?
            }
            "--workers" => {
                serve_workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers: not a number")?;
                if serve_workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--pool" => serve_pool = true,
            "--reactor" => serve_reactor = true,
            "--serve-for" => {
                serve_for = Some(
                    value("--serve-for")?
                        .parse()
                        .map_err(|_| "--serve-for: not a number of seconds")?,
                )
            }
            "--driver" => {
                mode = match value("--driver")?.as_str() {
                    "concurrent" => DriverMode::Concurrent,
                    "serial" => DriverMode::Serial,
                    "both" => DriverMode::Both,
                    "coop" => DriverMode::Coop,
                    other => return Err(format!("--driver: unknown mode `{other}`")),
                }
            }
            "--coop-walkers" => {
                let w: usize = value("--coop-walkers")?
                    .parse()
                    .map_err(|_| "--coop-walkers: not a number")?;
                if w == 0 {
                    return Err("--coop-walkers must be at least 1".into());
                }
                coop_walkers = Some(w);
            }
            "--coop-conns" => {
                let c: usize = value("--coop-conns")?
                    .parse()
                    .map_err(|_| "--coop-conns: not a number")?;
                if c == 0 {
                    return Err("--coop-conns must be at least 1".into());
                }
                coop_conns = Some(c);
            }
            "--watch" => watch = true,
            "--chaos" => chaos = Some(ChaosSpec::parse(value("--chaos")?)?),
            "--steal" => steal = true,
            "--histogram" => histograms.push(value("--histogram")?.clone()),
            "--proportion" => proportions.push(split_kv(value("--proportion")?, "--proportion")?),
            "--avg" => avgs.push(value("--avg")?.clone()),
            "--attr" => validate_attr = Some(value("--attr")?.clone()),
            "--site" => site_locators.push(value("--site")?.clone()),
            "--record" => record = Some(value("--record")?.clone()),
            "--l2" => l2 = Some(value("--l2")?.clone()),
            "--max-conns" => {
                max_conns = value("--max-conns")?
                    .parse()
                    .map_err(|_| "--max-conns: not a number")?
            }
            "--trace" => trace_path = Some(value("--trace")?.clone()),
            "--metrics" => metrics = Some(value("--metrics")?.clone()),
            other if !other.starts_with('-') => {
                // A bare word is `sample`'s positional locator or one of
                // `trace`'s action words — nothing else takes positionals.
                if command_word == "trace" {
                    if trace_words.len() == 2 {
                        return Err(format!(
                            "unexpected argument `{other}` (trace takes an action \
                             and one operand)"
                        ));
                    }
                    trace_words.push(other.to_string());
                    continue;
                }
                if command_word == "cache" {
                    if cache_word.is_some() {
                        return Err(format!(
                            "unexpected argument `{other}` (cache takes one action)"
                        ));
                    }
                    cache_word = Some(other.to_string());
                    continue;
                }
                if command_word != "sample" {
                    return Err(format!(
                        "unexpected argument `{other}` (only `sample` takes a \
                         positional locator)"
                    ));
                }
                if locator.is_some() {
                    return Err(format!("unexpected second locator `{other}`"));
                }
                locator = Some(other.to_string());
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }

    // The coop flags belong to specific commands; anywhere else they
    // would parse and then be silently ignored — reject instead.
    if coop_walkers.is_some() && command_word != "sample" {
        return Err(
            "--coop-walkers is a `sample` flag (multi-site sizes its cooperative \
             fleet with --walkers)"
                .into(),
        );
    }
    if coop_conns.is_some() && !matches!(command_word.as_str(), "sample" | "multi-site") {
        return Err(format!("--coop-conns does not apply to `{command_word}`"));
    }
    if watch && !matches!(command_word.as_str(), "sample" | "multi-site") {
        return Err(format!("--watch does not apply to `{command_word}`"));
    }
    if chaos.is_some() && !matches!(command_word.as_str(), "multi-site" | "serve") {
        return Err(format!("--chaos does not apply to `{command_word}`"));
    }
    if steal && command_word != "multi-site" {
        return Err(format!("--steal does not apply to `{command_word}`"));
    }
    if !site_locators.is_empty() && command_word != "multi-site" {
        return Err("--site is a `multi-site` flag (sample one site by passing \
                    the locator positionally: `sample <locator>`)"
            .into());
    }
    if record.is_some() && command_word != "sample" {
        return Err(format!(
            "--record does not apply to `{command_word}` (record one site's \
             exchanges with `sample <locator> --record <path>`)"
        ));
    }
    if trace_path.is_some() && !matches!(command_word.as_str(), "sample" | "multi-site" | "serve") {
        return Err(format!("--trace does not apply to `{command_word}`"));
    }
    if metrics.is_some() && !matches!(command_word.as_str(), "sample" | "multi-site" | "serve") {
        return Err(format!("--metrics does not apply to `{command_word}`"));
    }
    if l2.is_some() && !matches!(command_word.as_str(), "sample" | "multi-site" | "cache") {
        return Err(format!("--l2 does not apply to `{command_word}`"));
    }
    if max_conns != 0 && command_word != "serve" {
        return Err(format!("--max-conns does not apply to `{command_word}`"));
    }
    if (serve_pool || serve_reactor) && command_word != "serve" {
        return Err(format!(
            "--{} does not apply to `{command_word}`",
            if serve_pool { "pool" } else { "reactor" }
        ));
    }
    if serve_pool && serve_reactor {
        return Err("--pool and --reactor name opposite serve modes; pick one".into());
    }

    let command = match command_word.as_str() {
        "describe" => Command::Describe,
        "sample" => {
            if locator.is_some() && common.remote.is_some() {
                return Err("pass a locator or --remote, not both (a locator \
                            already names the wire; --remote <addr> is sugar \
                            for `sample http://<addr>`)"
                    .into());
            }
            if coop_walkers.is_some() && common.remote.is_none() && locator.is_none() {
                return Err("--coop-walkers needs a wire to pipeline on (pass \
                            a locator or --remote)"
                    .into());
            }
            if coop_conns.is_some() && coop_walkers.is_none() {
                return Err("--coop-conns requires --coop-walkers".into());
            }
            Command::Sample {
                locator,
                histograms,
                record,
                coop_walkers,
                coop_conns,
                watch,
                trace: trace_path,
                metrics,
                l2,
            }
        }
        "aggregate" => Command::Aggregate { proportions, avgs },
        "validate" => Command::Validate {
            attr: validate_attr,
        },
        "multi-site" => {
            if !site_locators.is_empty() {
                // A locator list *is* the fleet: every flag that sizes or
                // decorates the simulated fleet contradicts it.
                if sites_set {
                    return Err("--sites counts simulated sites; with --site, \
                                the locator list is the fleet"
                        .into());
                }
                if latency_set || jitter_set {
                    return Err("--latency/--jitter configure simulated wires; \
                                bake them into the locator instead \
                                (local:<dataset>?latency=..&jitter=..)"
                        .into());
                }
                if common.remote.is_some() {
                    return Err("--remote and --site both name fleet legs; use --site \
                         http://<addr>"
                        .into());
                }
                if chaos.is_some() {
                    return Err("--chaos wraps the flag-built simulated fleet \
                                and does not apply to --site locator legs"
                        .into());
                }
                if watch {
                    return Err("--watch needs one fleet-wide schema; --site \
                                legs have per-site schemas"
                        .into());
                }
                if mode == DriverMode::Both {
                    return Err("--driver both does not combine with --site \
                                (run the drivers as two invocations)"
                        .into());
                }
            }
            if coop_conns.is_some() && mode != DriverMode::Coop {
                return Err("--coop-conns requires --driver coop".into());
            }
            if steal && mode != DriverMode::Coop {
                return Err("--steal requires --driver coop (only the cooperative \
                            driver can move walkers between sites)"
                    .into());
            }
            if chaos.is_some() && common.remote.is_some() {
                return Err("--chaos wraps the simulated wire and cannot apply to \
                            --remote servers; serve the adversary itself with \
                            `hdsampler serve --chaos ...`"
                    .into());
            }
            Command::MultiSite {
                site_locators,
                sites,
                walkers,
                latencies_ms,
                jitter_ms,
                mode,
                coop_conns,
                watch,
                chaos,
                steal,
                trace: trace_path,
                metrics,
                l2,
            }
        }
        "serve" => Command::Serve {
            port,
            pool: serve_pool,
            workers: serve_workers,
            serve_for,
            chaos,
            trace: trace_path,
            metrics,
            max_conns,
        },
        "trace" => {
            let mut words = trace_words.into_iter();
            let action = match (words.next(), words.next()) {
                (Some(a), Some(operand)) => match a.as_str() {
                    "report" => TraceAction::Report { journal: operand },
                    "watch" => TraceAction::Watch { addr: operand },
                    other => {
                        return Err(format!(
                            "unknown trace action `{other}` (expected `report` or `watch`)"
                        ))
                    }
                },
                (Some(a), None) => {
                    return Err(match a.as_str() {
                        "report" => "trace report needs a journal path \
                                     (`trace report <journal.jsonl>`)"
                            .into(),
                        "watch" => {
                            "trace watch needs an address (`trace watch <host:port>`)".into()
                        }
                        other => {
                            format!("unknown trace action `{other}` (expected `report` or `watch`)")
                        }
                    })
                }
                (None, _) => {
                    return Err("trace needs an action: `trace report <journal.jsonl>` \
                                or `trace watch <host:port>`"
                        .into())
                }
            };
            Command::Trace { action }
        }
        "cache" => {
            let action = match cache_word.as_deref() {
                Some("stats") => CacheAction::Stats,
                Some("compact") => CacheAction::Compact,
                Some("clear") => CacheAction::Clear,
                Some(other) => {
                    return Err(format!(
                        "unknown cache action `{other}` (expected `stats`, `compact` or `clear`)"
                    ))
                }
                None => {
                    return Err(
                        "cache needs an action: `cache stats|compact|clear --l2 <dir>`".into(),
                    )
                }
            };
            let dir = l2.ok_or("cache needs the history directory: --l2 <dir>")?;
            Command::Cache { action, dir }
        }
        other => return Err(format!("unknown command `{other}`")),
    };
    Ok(Cli { command, common })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_sample_with_everything() {
        let cli = parse(&argv(&[
            "sample",
            "--source",
            "vehicles-full",
            "--n",
            "1000",
            "--k",
            "50",
            "--seed",
            "7",
            "--samples",
            "99",
            "--slider",
            "0.5",
            "--bind",
            "condition=used",
            "--bind",
            "make=Toyota",
            "--budget",
            "5000",
            "--histogram",
            "make",
            "--histogram",
            "year",
        ]))
        .unwrap();
        assert_eq!(cli.common.source, "vehicles-full");
        assert_eq!(cli.common.n, 1000);
        assert_eq!(cli.common.k, 50);
        assert_eq!(cli.common.samples, 99);
        assert_eq!(cli.common.slider, 0.5);
        assert_eq!(cli.common.binds.len(), 2);
        assert_eq!(cli.common.budget, Some(5000));
        assert_eq!(
            cli.command,
            Command::Sample {
                locator: None,
                histograms: vec!["make".into(), "year".into()],
                record: None,
                coop_walkers: None,
                coop_conns: None,
                watch: false,
                trace: None,
                metrics: None,
                l2: None,
            }
        );
    }

    #[test]
    fn defaults_apply() {
        let cli = parse(&argv(&["describe"])).unwrap();
        assert_eq!(cli.common, Common::default());
        assert_eq!(cli.command, Command::Describe);
    }

    #[test]
    fn aggregate_flags() {
        let cli = parse(&argv(&[
            "aggregate",
            "--proportion",
            "make=Toyota",
            "--avg",
            "price_usd",
        ]))
        .unwrap();
        match cli.command {
            Command::Aggregate { proportions, avgs } => {
                assert_eq!(
                    proportions,
                    vec![("make".to_string(), "Toyota".to_string())]
                );
                assert_eq!(avgs, vec!["price_usd".to_string()]);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn multi_site_flags() {
        let cli = parse(&argv(&[
            "multi-site",
            "--sites",
            "16",
            "--walkers",
            "4",
            "--latency",
            "150",
            "--driver",
            "both",
            "--samples",
            "80",
            "--budget",
            "2000",
        ]))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::MultiSite {
                site_locators: vec![],
                sites: 16,
                walkers: 4,
                latencies_ms: vec![150],
                jitter_ms: 0,
                mode: DriverMode::Both,
                coop_conns: None,
                watch: false,
                chaos: None,
                steal: false,
                trace: None,
                metrics: None,
                l2: None,
            }
        );
        assert_eq!(cli.common.samples, 80);
        assert_eq!(cli.common.budget, Some(2000));

        let defaults = parse(&argv(&["multi-site"])).unwrap();
        assert_eq!(
            defaults.command,
            Command::MultiSite {
                site_locators: vec![],
                sites: 4,
                walkers: 2,
                latencies_ms: vec![100],
                jitter_ms: 0,
                mode: DriverMode::Concurrent,
                coop_conns: None,
                watch: false,
                chaos: None,
                steal: false,
                trace: None,
                metrics: None,
                l2: None,
            }
        );
        assert!(parse(&argv(&["multi-site", "--sites", "0"])).is_err());
        assert!(parse(&argv(&["multi-site", "--walkers", "0"])).is_err());
        assert!(parse(&argv(&["multi-site", "--latency", "0"])).is_err());
        assert!(parse(&argv(&["multi-site", "--driver", "psychic"])).is_err());
    }

    #[test]
    fn multi_site_heterogeneous_latency_and_jitter() {
        let cli = parse(&argv(&[
            "multi-site",
            "--latency",
            "50,100, 250",
            "--jitter",
            "20",
        ]))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::MultiSite {
                site_locators: vec![],
                sites: 4,
                walkers: 2,
                latencies_ms: vec![50, 100, 250],
                jitter_ms: 20,
                mode: DriverMode::Concurrent,
                coop_conns: None,
                watch: false,
                chaos: None,
                steal: false,
                trace: None,
                metrics: None,
                l2: None,
            }
        );
        assert!(parse(&argv(&["multi-site", "--latency", "50,0,100"])).is_err());
        assert!(parse(&argv(&["multi-site", "--latency", ""])).is_err());
        assert!(parse(&argv(&["multi-site", "--latency", "50,,100"])).is_err());
    }

    #[test]
    fn serve_and_remote_flags() {
        let cli = parse(&argv(&[
            "serve",
            "--port",
            "9090",
            "--workers",
            "8",
            "--serve-for",
            "30",
            "--dataset",
            "boolean",
        ]))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                port: 9090,
                pool: false,
                workers: 8,
                serve_for: Some(30),
                chaos: None,
                trace: None,
                metrics: None,
                max_conns: 0,
            }
        );
        assert_eq!(cli.common.source, "boolean", "--dataset aliases --source");

        let defaults = parse(&argv(&["serve"])).unwrap();
        assert_eq!(
            defaults.command,
            Command::Serve {
                port: 8000,
                pool: false,
                workers: 4,
                serve_for: None,
                chaos: None,
                trace: None,
                metrics: None,
                max_conns: 0,
            }
        );
        assert!(parse(&argv(&["serve", "--workers", "0"])).is_err());
        assert!(parse(&argv(&["serve", "--port", "99999"])).is_err());

        // Serve modes: the reactor is the default, `--pool` opts out, and
        // the two flags are mutually exclusive and serve-only.
        assert!(matches!(
            parse(&argv(&["serve", "--pool"])).unwrap().command,
            Command::Serve { pool: true, .. }
        ));
        assert!(matches!(
            parse(&argv(&["serve", "--reactor"])).unwrap().command,
            Command::Serve { pool: false, .. }
        ));
        assert!(parse(&argv(&["serve", "--pool", "--reactor"])).is_err());
        assert!(parse(&argv(&["sample", "--pool"])).is_err());
        assert!(parse(&argv(&["describe", "--reactor"])).is_err());

        let remote = parse(&argv(&["sample", "--remote", "127.0.0.1:9090"])).unwrap();
        assert_eq!(remote.common.remote.as_deref(), Some("127.0.0.1:9090"));
        let fleet = parse(&argv(&["multi-site", "--remote", "h1:1,h2:2"])).unwrap();
        assert_eq!(fleet.common.remote.as_deref(), Some("h1:1,h2:2"));
    }

    #[test]
    fn coop_flags() {
        let cli = parse(&argv(&[
            "sample",
            "--remote",
            "127.0.0.1:9090",
            "--coop-walkers",
            "64",
            "--coop-conns",
            "4",
        ]))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Sample {
                locator: None,
                histograms: vec![],
                record: None,
                coop_walkers: Some(64),
                coop_conns: Some(4),
                watch: false,
                trace: None,
                metrics: None,
                l2: None,
            }
        );
        let fleet = parse(&argv(&["multi-site", "--driver", "coop"])).unwrap();
        assert!(matches!(
            fleet.command,
            Command::MultiSite {
                mode: DriverMode::Coop,
                ..
            }
        ));
        // The cooperative sampler needs a wire to pipeline on.
        assert!(parse(&argv(&["sample", "--coop-walkers", "4"])).is_err());
        assert!(parse(&argv(&["sample", "--remote", "h:1", "--coop-walkers", "0"])).is_err());
        assert!(parse(&argv(&["sample", "--remote", "h:1", "--coop-conns", "2"])).is_err());
        // Coop flags are never silently ignored by other commands.
        assert!(parse(&argv(&[
            "multi-site",
            "--driver",
            "coop",
            "--coop-walkers",
            "64"
        ]))
        .is_err());
        assert!(parse(&argv(&["multi-site", "--coop-conns", "2"])).is_err());
        assert!(parse(&argv(&["serve", "--coop-conns", "2"])).is_err());
        let with_conns = parse(&argv(&[
            "multi-site",
            "--driver",
            "coop",
            "--coop-conns",
            "8",
        ]))
        .unwrap();
        assert!(matches!(
            with_conns.command,
            Command::MultiSite {
                coop_conns: Some(8),
                ..
            }
        ));
    }

    #[test]
    fn chaos_and_steal_flags() {
        let fleet = parse(&argv(&[
            "multi-site",
            "--driver",
            "coop",
            "--steal",
            "--chaos",
            "seed=7,throttle=0.2,retry_after=250,fail=0.1,drop=0.05",
        ]))
        .unwrap();
        match fleet.command {
            Command::MultiSite { chaos, steal, .. } => {
                let spec = chaos.expect("--chaos parsed");
                assert_eq!(spec.seed, 7);
                assert_eq!(spec.throttle, 0.2);
                assert_eq!(spec.retry_after_ms, 250);
                assert!(steal);
            }
            other => panic!("wrong command {other:?}"),
        }
        let served = parse(&argv(&["serve", "--chaos", "latency=30,fail=0.1"])).unwrap();
        match served.command {
            Command::Serve { chaos, .. } => {
                let spec = chaos.expect("--chaos parsed");
                assert_eq!(spec.latency_ms, 30);
                assert_eq!(spec.fail, 0.1);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Strictness: bad grammar, wrong commands, wrong driver, real wire.
        assert!(parse(&argv(&["serve", "--chaos", "throttle=2.0"])).is_err());
        assert!(parse(&argv(&["serve", "--chaos", "psychic=1"])).is_err());
        assert!(parse(&argv(&["sample", "--chaos", "fail=0.1"])).is_err());
        assert!(parse(&argv(&["multi-site", "--steal"])).is_err());
        assert!(parse(&argv(&["serve", "--steal"])).is_err());
        assert!(parse(&argv(&[
            "multi-site",
            "--remote",
            "h1:1",
            "--chaos",
            "fail=0.1"
        ]))
        .is_err());
    }

    #[test]
    fn watch_flag() {
        let cli = parse(&argv(&["sample", "--watch"])).unwrap();
        assert!(matches!(cli.command, Command::Sample { watch: true, .. }));
        let fleet = parse(&argv(&["multi-site", "--watch"])).unwrap();
        assert!(matches!(
            fleet.command,
            Command::MultiSite { watch: true, .. }
        ));
        // --watch is never silently ignored by other commands.
        assert!(parse(&argv(&["serve", "--watch"])).is_err());
        assert!(parse(&argv(&["aggregate", "--watch"])).is_err());
    }

    #[test]
    fn locator_and_site_flags() {
        // `sample` takes one positional locator, any scheme.
        let cli = parse(&argv(&["sample", "local:boolean?n=500", "--samples", "40"])).unwrap();
        assert!(matches!(
            cli.command,
            Command::Sample { locator: Some(ref l), .. } if l == "local:boolean?n=500"
        ));
        let cli = parse(&argv(&["sample", "http://127.0.0.1:8080"])).unwrap();
        assert!(matches!(
            cli.command,
            Command::Sample { locator: Some(ref l), .. } if l == "http://127.0.0.1:8080"
        ));
        // --record rides along; locators make --coop-walkers legal.
        let cli = parse(&argv(&[
            "sample",
            "http://h:1",
            "--record",
            "tape.jsonl",
            "--coop-walkers",
            "8",
        ]))
        .unwrap();
        assert!(matches!(
            cli.command,
            Command::Sample {
                record: Some(ref r),
                coop_walkers: Some(8),
                ..
            } if r == "tape.jsonl"
        ));
        // Repeatable --site builds a heterogeneous fleet.
        let cli = parse(&argv(&[
            "multi-site",
            "--site",
            "replay:tape.jsonl",
            "--site",
            "local:boolean",
            "--site",
            "http://h:1",
        ]))
        .unwrap();
        match cli.command {
            Command::MultiSite { site_locators, .. } => assert_eq!(
                site_locators,
                vec!["replay:tape.jsonl", "local:boolean", "http://h:1"]
            ),
            other => panic!("wrong command {other:?}"),
        }
        // Contradictions fail loudly instead of being silently ignored.
        assert!(parse(&argv(&["sample", "http://h:1", "--remote", "h:2"])).is_err());
        assert!(parse(&argv(&["sample", "a", "b"])).is_err());
        assert!(parse(&argv(&["describe", "local:boolean"])).is_err());
        assert!(parse(&argv(&["serve", "--site", "local:boolean"])).is_err());
        assert!(parse(&argv(&["multi-site", "--record", "t.jsonl"])).is_err());
        assert!(parse(&argv(&["multi-site", "--site", "local:b", "--sites", "2"])).is_err());
        assert!(parse(&argv(&[
            "multi-site",
            "--site",
            "local:b",
            "--latency",
            "50"
        ]))
        .is_err());
        assert!(parse(&argv(&[
            "multi-site",
            "--site",
            "local:b",
            "--remote",
            "h:1"
        ]))
        .is_err());
        assert!(parse(&argv(&[
            "multi-site",
            "--site",
            "local:b",
            "--chaos",
            "fail=0.1"
        ]))
        .is_err());
        assert!(parse(&argv(&["multi-site", "--site", "local:b", "--watch"])).is_err());
        assert!(parse(&argv(&[
            "multi-site",
            "--site",
            "local:b",
            "--driver",
            "both"
        ]))
        .is_err());
    }

    #[test]
    fn trace_and_metrics_flags() {
        let cli = parse(&argv(&["sample", "--trace", "run.jsonl", "--metrics", "0"])).unwrap();
        assert!(matches!(
            cli.command,
            Command::Sample {
                trace: Some(ref t),
                metrics: Some(ref m),
                ..
            } if t == "run.jsonl" && m == "0"
        ));
        let fleet = parse(&argv(&["multi-site", "--trace", "fleet.jsonl"])).unwrap();
        assert!(matches!(
            fleet.command,
            Command::MultiSite { trace: Some(ref t), .. } if t == "fleet.jsonl"
        ));
        let served = parse(&argv(&[
            "serve",
            "--trace",
            "requests.jsonl",
            "--metrics",
            "final.prom",
        ]))
        .unwrap();
        assert!(matches!(
            served.command,
            Command::Serve {
                trace: Some(ref t),
                metrics: Some(ref m),
                ..
            } if t == "requests.jsonl" && m == "final.prom"
        ));
        // Never silently ignored elsewhere.
        assert!(parse(&argv(&["describe", "--trace", "x.jsonl"])).is_err());
        assert!(parse(&argv(&["aggregate", "--metrics", "0"])).is_err());
        assert!(parse(&argv(&["validate", "--trace", "x.jsonl"])).is_err());
    }

    #[test]
    fn trace_subcommand() {
        let report = parse(&argv(&["trace", "report", "run.jsonl"])).unwrap();
        assert_eq!(
            report.command,
            Command::Trace {
                action: TraceAction::Report {
                    journal: "run.jsonl".into()
                }
            }
        );
        let watch = parse(&argv(&["trace", "watch", "127.0.0.1:8000"])).unwrap();
        assert_eq!(
            watch.command,
            Command::Trace {
                action: TraceAction::Watch {
                    addr: "127.0.0.1:8000".into()
                }
            }
        );
        // Missing or bogus actions and operands fail loudly.
        assert!(parse(&argv(&["trace"])).is_err());
        assert!(parse(&argv(&["trace", "report"])).is_err());
        assert!(parse(&argv(&["trace", "watch"])).is_err());
        assert!(parse(&argv(&["trace", "psychic", "x"])).is_err());
        assert!(parse(&argv(&["trace", "report", "a.jsonl", "b.jsonl"])).is_err());
    }

    #[test]
    fn l2_cache_and_max_conns_flags() {
        let cli = parse(&argv(&["sample", "local:boolean", "--l2", "hist"])).unwrap();
        assert!(matches!(
            cli.command,
            Command::Sample { l2: Some(ref d), .. } if d == "hist"
        ));
        let fleet = parse(&argv(&["multi-site", "--l2", "hist"])).unwrap();
        assert!(matches!(
            fleet.command,
            Command::MultiSite { l2: Some(ref d), .. } if d == "hist"
        ));
        let served = parse(&argv(&["serve", "--max-conns", "64"])).unwrap();
        assert!(matches!(
            served.command,
            Command::Serve { max_conns: 64, .. }
        ));
        for (word, action) in [
            ("stats", CacheAction::Stats),
            ("compact", CacheAction::Compact),
            ("clear", CacheAction::Clear),
        ] {
            let cli = parse(&argv(&["cache", word, "--l2", "hist"])).unwrap();
            assert_eq!(
                cli.command,
                Command::Cache {
                    action,
                    dir: "hist".into()
                }
            );
        }
        // Never silently ignored or under-specified.
        assert!(parse(&argv(&["serve", "--l2", "hist"])).is_err());
        assert!(parse(&argv(&["describe", "--l2", "hist"])).is_err());
        assert!(parse(&argv(&["sample", "--max-conns", "4"])).is_err());
        assert!(parse(&argv(&["serve", "--max-conns", "abc"])).is_err());
        assert!(parse(&argv(&["cache", "--l2", "hist"])).is_err());
        assert!(parse(&argv(&["cache", "stats"])).is_err());
        assert!(parse(&argv(&["cache", "psychic", "--l2", "hist"])).is_err());
        assert!(parse(&argv(&["cache", "stats", "clear", "--l2", "hist"])).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse(&argv(&[])).is_err());
        assert!(parse(&argv(&["frobnicate"])).is_err());
        assert!(parse(&argv(&["sample", "--n"])).is_err());
        assert!(parse(&argv(&["sample", "--n", "abc"])).is_err());
        assert!(parse(&argv(&["sample", "--slider", "1.5"])).is_err());
        assert!(parse(&argv(&["sample", "--bind", "nokv"])).is_err());
        assert!(parse(&argv(&["sample", "--counts", "psychic"])).is_err());
        assert!(parse(&argv(&["sample", "--wat", "1"])).is_err());
    }
}
