//! Terminal rendering helpers.

use hdsampler_core::SamplerStats;
use hdsampler_webform::FleetReport;

/// A one-line progress string (the AJAX live counter of the original UI).
#[allow(dead_code)] // kept for front ends that stream stats live
pub fn progress_line(collected: usize, target: usize, stats: &SamplerStats) -> String {
    format!(
        "\r  samples {collected}/{target}  queries {}  saved {:.0}%   ",
        stats.queries_issued,
        stats.savings_rate() * 100.0
    )
}

/// Final session summary block.
pub fn summary(stats: &SamplerStats) -> String {
    format!(
        "session: {} samples | {} walks | {} queries charged ({} requests, {:.0}% from history)\n\
         per sample: {:.2} queries, {:.2} walks | acceptance rate {:.3}\n\
         dead ends {} | leaf overflows {} | rejected {}",
        stats.accepted,
        stats.walks,
        stats.queries_issued,
        stats.requests,
        stats.savings_rate() * 100.0,
        stats.queries_per_sample(),
        stats.walks_per_sample(),
        stats.acceptance_rate(),
        stats.dead_ends,
        stats.leaf_overflows,
        stats.rejected,
    )
}

/// Per-site table plus fleet summary for a `multi-site` run.
pub fn fleet_report(report: &FleetReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mode = if report.concurrent {
        "concurrent"
    } else {
        "serial"
    };
    let _ = writeln!(
        out,
        "  {:<10} {:>8} {:>9} {:>10} {:>8} {:>11}  stopped",
        "site", "samples", "fetches", "requests", "hits", "elapsed s"
    );
    for site in &report.sites {
        let _ = writeln!(
            out,
            "  {:<10} {:>8} {:>9} {:>10} {:>8} {:>11.1}  {:?}",
            site.name,
            site.samples.len(),
            site.queries_issued,
            site.requests,
            site.history_hits,
            site.elapsed_ms as f64 / 1_000.0,
            site.stopped,
        );
    }
    // Belt and braces: `samples_per_vsec` returns 0.0 for a zero-elapsed
    // fleet these days, but a non-finite value must never reach the table
    // (it used to print a literal `NaN`).
    let rate = report.samples_per_vsec();
    let rate = if report.fleet_elapsed_ms == 0 || !rate.is_finite() {
        "n/a".to_string()
    } else {
        format!("{rate:.1}")
    };
    let _ = writeln!(
        out,
        "  fleet ({mode}): {} samples over {} sites in {:.1} s — {rate} samples/s, {} fetches",
        report.total_samples(),
        report.sites.len(),
        report.fleet_elapsed_ms as f64 / 1_000.0,
        report.total_fetches(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SamplerStats {
        SamplerStats {
            walks: 50,
            dead_ends: 10,
            leaf_overflows: 0,
            candidates: 40,
            accepted: 20,
            rejected: 20,
            requests: 200,
            queries_issued: 100,
        }
    }

    #[test]
    fn progress_is_single_line() {
        let line = progress_line(5, 10, &stats());
        assert!(line.starts_with('\r'));
        assert!(line.contains("5/10"));
        assert!(!line.trim_start_matches('\r').contains('\n'));
    }

    #[test]
    fn zero_elapsed_fleet_prints_na_not_nan() {
        // Regression: a fleet served entirely from history has 0 elapsed
        // ms; the table used to print `NaN samples/s`.
        let report = FleetReport {
            sites: vec![],
            fleet_elapsed_ms: 0,
            concurrent: true,
        };
        let text = fleet_report(&report);
        assert!(text.contains("n/a samples/s"), "{text}");
        assert!(!text.contains("NaN"), "{text}");
    }

    #[test]
    fn summary_mentions_key_counters() {
        let text = summary(&stats());
        assert!(text.contains("20 samples"));
        assert!(text.contains("100 queries charged"));
        assert!(text.contains("50%"));
    }
}
