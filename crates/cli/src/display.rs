//! Terminal rendering helpers, including the CLI's streaming
//! [`SampleSink`]s: [`ProgressSink`] (the AJAX live counter) and
//! [`WatchSink`] (`--watch`: live histogram re-rendering mid-run).

use std::any::Any;
use std::io::Write as _;
use std::sync::{Arc, Mutex};

use hdsampler_core::{merged, SampleEvent, SampleSink, SamplerStats};
use hdsampler_estimator::{fmt_stat, Histogram};
use hdsampler_webform::FleetReport;

/// Streaming progress printer: re-renders the [`progress_line`] (running
/// count, charged queries, history savings) every `every`-th sample and
/// at the target. Forks share the terminal, so merging is a no-op.
#[derive(Debug, Clone)]
pub struct ProgressSink {
    every: usize,
}

impl ProgressSink {
    /// Print every `every`-th sample (and the final one).
    pub fn new(every: usize) -> Self {
        ProgressSink {
            every: every.max(1),
        }
    }
}

impl SampleSink for ProgressSink {
    fn observe(&mut self, event: &SampleEvent<'_>) {
        if event.collected.is_multiple_of(self.every) || event.collected == event.target {
            // Only the counters the event stream carries are live here;
            // the rest of the stats block stays zero (savings_rate is
            // well-defined at zero requests).
            let stats = SamplerStats {
                queries_issued: event.queries,
                requests: event.requests,
                ..SamplerStats::default()
            };
            let mut out = std::io::stdout();
            let _ = write!(
                out,
                "{}",
                progress_line(event.collected, event.target, &stats)
            );
            let _ = out.flush();
        }
    }

    fn fork(&self) -> Box<dyn SampleSink> {
        Box::new(self.clone())
    }

    fn merge(&mut self, other: Box<dyn SampleSink>) {
        let _ = merged::<ProgressSink>(other);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

struct WatchState {
    hists: Vec<Histogram>,
    every: usize,
    seen: usize,
}

/// `--watch`: maintains live histograms over the sample stream and
/// re-renders them every `every`-th observed sample — the demo's headline
/// AJAX behavior, previously impossible mid-run. Forks return a handle to
/// the same shared state (concurrently driven sites all feed one
/// display), so merging is a no-op.
pub struct WatchSink {
    state: Arc<Mutex<WatchState>>,
    width: usize,
}

impl WatchSink {
    /// Watch the given (empty) histograms, re-rendering every `every`
    /// samples with `width`-column bars.
    pub fn new(hists: Vec<Histogram>, every: usize, width: usize) -> Self {
        WatchSink {
            state: Arc::new(Mutex::new(WatchState {
                hists,
                every: every.max(1),
                seen: 0,
            })),
            width,
        }
    }

    /// Snapshot of the live histograms.
    #[allow(dead_code)] // exercised by tests; kept for front ends reading the live state
    pub fn histograms(&self) -> Vec<Histogram> {
        self.state.lock().expect("watch state").hists.clone()
    }
}

impl SampleSink for WatchSink {
    fn observe(&mut self, event: &SampleEvent<'_>) {
        let mut st = self.state.lock().expect("watch state");
        for h in &mut st.hists {
            h.add(&event.sample.row, event.sample.weight);
        }
        st.seen += 1;
        if st.seen.is_multiple_of(st.every) {
            let mut out = String::new();
            out.push_str(&format!("\n── live after {} samples ──\n", st.seen));
            for h in &st.hists {
                out.push_str(&h.snapshot().render(self.width));
            }
            print!("{out}");
            let _ = std::io::stdout().flush();
        }
    }

    fn fork(&self) -> Box<dyn SampleSink> {
        Box::new(WatchSink {
            state: Arc::clone(&self.state),
            width: self.width,
        })
    }

    fn merge(&mut self, _other: Box<dyn SampleSink>) {
        // Forks share this sink's state; nothing to fold back.
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// A one-line progress string (the AJAX live counter of the original UI):
/// the body [`ProgressSink`] re-renders locally and `trace watch` renders
/// for remote `/events` streams.
pub fn progress_line(collected: usize, target: usize, stats: &SamplerStats) -> String {
    format!(
        "\r  samples {collected}/{target}  queries {}  saved {:.0}%   ",
        stats.queries_issued,
        stats.savings_rate() * 100.0
    )
}

/// Final session summary block. Per-sample ratios are NaN before the
/// first sample; they render as `n/a`, never raw float debug output.
pub fn summary(stats: &SamplerStats) -> String {
    format!(
        "session: {} samples | {} walks | {} queries charged ({} requests, {:.0}% from history)\n\
         per sample: {} queries, {} walks | acceptance rate {}\n\
         dead ends {} | leaf overflows {} | rejected {}",
        stats.accepted,
        stats.walks,
        stats.queries_issued,
        stats.requests,
        stats.savings_rate() * 100.0,
        fmt_stat(stats.queries_per_sample(), 2),
        fmt_stat(stats.walks_per_sample(), 2),
        fmt_stat(stats.acceptance_rate(), 3),
        stats.dead_ends,
        stats.leaf_overflows,
        stats.rejected,
    )
}

/// Per-site table plus fleet summary for a `multi-site` run.
pub fn fleet_report(report: &FleetReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mode = if report.concurrent {
        "concurrent"
    } else {
        "serial"
    };
    let _ = writeln!(
        out,
        "  {:<10} {:>8} {:>9} {:>10} {:>8} {:>8} {:>10} {:>7} {:>11}  stopped",
        "site",
        "samples",
        "fetches",
        "requests",
        "hits",
        "retries",
        "backoff s",
        "steals",
        "elapsed s"
    );
    for site in &report.sites {
        let _ = writeln!(
            out,
            "  {:<10} {:>8} {:>9} {:>10} {:>8} {:>8} {:>10.1} {:>7} {:>11.1}  {:?}",
            site.name,
            site.samples.len(),
            site.queries_issued,
            site.requests,
            site.history_hits,
            site.retries,
            site.backoff_vms as f64 / 1_000.0,
            site.steals,
            site.elapsed_ms as f64 / 1_000.0,
            site.stopped,
        );
    }
    // Belt and braces: `samples_per_vsec` returns 0.0 for a zero-elapsed
    // fleet these days, but a non-finite value must never reach the table
    // (it used to print a literal `NaN`).
    let rate = report.samples_per_vsec();
    let rate = if report.fleet_elapsed_ms == 0 || !rate.is_finite() {
        "n/a".to_string()
    } else {
        format!("{rate:.1}")
    };
    let _ = writeln!(
        out,
        "  fleet ({mode}): {} samples over {} sites in {:.1} s — {rate} samples/s, {} fetches",
        report.total_samples(),
        report.sites.len(),
        report.fleet_elapsed_ms as f64 / 1_000.0,
        report.total_fetches(),
    );
    // The resilience line only earns its place when something went wrong
    // (or walkers moved): a clean run keeps the clean summary.
    if report.total_retries() > 0 || report.total_steals() > 0 {
        let _ = writeln!(
            out,
            "  resilience: {} retries (budget never double-charged), {} walkers stolen",
            report.total_retries(),
            report.total_steals(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SamplerStats {
        SamplerStats {
            walks: 50,
            dead_ends: 10,
            leaf_overflows: 0,
            candidates: 40,
            accepted: 20,
            rejected: 20,
            requests: 200,
            queries_issued: 100,
            retries: 0,
            backoff_ms: 0,
        }
    }

    #[test]
    fn progress_is_single_line() {
        let line = progress_line(5, 10, &stats());
        assert!(line.starts_with('\r'));
        assert!(line.contains("5/10"));
        assert!(!line.trim_start_matches('\r').contains('\n'));
    }

    #[test]
    fn zero_elapsed_fleet_prints_na_not_nan() {
        // Regression: a fleet served entirely from history has 0 elapsed
        // ms; the table used to print `NaN samples/s`.
        let report = FleetReport {
            sites: vec![],
            fleet_elapsed_ms: 0,
            concurrent: true,
        };
        let text = fleet_report(&report);
        assert!(text.contains("n/a samples/s"), "{text}");
        assert!(!text.contains("NaN"), "{text}");
    }

    #[test]
    fn fleet_table_shows_resilience_columns() {
        use hdsampler_core::{SampleSet, StopReason};
        use hdsampler_webform::SiteReport;
        let site = SiteReport {
            name: "site-0".into(),
            samples: SampleSet::default(),
            requests: 120,
            queries_issued: 100,
            history_hits: 20,
            elapsed_ms: 4_200,
            retries: 7,
            backoff_vms: 1_500,
            steals: 2,
            stopped: StopReason::TargetReached,
            stats: stats(),
            history: Default::default(),
        };
        let report = FleetReport {
            sites: vec![site],
            fleet_elapsed_ms: 4_200,
            concurrent: true,
        };
        let text = fleet_report(&report);
        assert!(text.contains("retries"), "{text}");
        assert!(text.contains("steals"), "{text}");
        assert!(text.contains("1.5"), "backoff in seconds: {text}");
        assert!(text.contains("resilience: 7 retries"), "{text}");
        assert!(text.contains("2 walkers stolen"), "{text}");
        // A clean fleet keeps the clean summary.
        let mut clean = report;
        clean.sites[0].retries = 0;
        clean.sites[0].steals = 0;
        assert!(!fleet_report(&clean).contains("resilience"));
    }

    #[test]
    fn summary_mentions_key_counters() {
        let text = summary(&stats());
        assert!(text.contains("20 samples"));
        assert!(text.contains("100 queries charged"));
        assert!(text.contains("50%"));
        assert!(text.contains("5.00 queries"), "{text}");
    }

    #[test]
    fn empty_session_summary_prints_na_not_nan() {
        // Zero accepted samples make every per-sample ratio NaN; the
        // summary must say `n/a`, never raw float debug output.
        let text = summary(&SamplerStats::default());
        assert!(text.contains("n/a queries"), "{text}");
        assert!(!text.contains("NaN"), "{text}");
    }

    #[test]
    fn watch_sink_maintains_live_histograms_across_forks() {
        use hdsampler_core::{Sample, SampleMeta};
        use hdsampler_model::{AttrId, Attribute, Row, SchemaBuilder};
        let schema = SchemaBuilder::new()
            .attribute(Attribute::categorical("make", ["Toyota", "Honda"]).unwrap())
            .finish()
            .unwrap();
        let mut watch = WatchSink::new(vec![Histogram::new(&schema, AttrId(0))], 1000, 10);
        let mut forked = watch.fork();
        let s = Sample {
            row: Row::new(1, vec![1], vec![]),
            weight: 1.0,
            meta: SampleMeta::default(),
        };
        let ev = SampleEvent {
            sample: &s,
            site: 0,
            walker: 0,
            collected: 1,
            target: 100,
            queries: 0,
            requests: 0,
        };
        watch.observe(&ev);
        forked.observe(&ev);
        watch.merge(forked);
        let hists = watch.histograms();
        assert_eq!(hists[0].total(), 2.0, "fork shares the live state");
        assert_eq!(hists[0].counts()[1], 2.0);
    }
}
