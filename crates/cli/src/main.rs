//! The HDSampler command-line front end — the demo's web UI (Figures 3
//! and 4) translated to a terminal: pick a data source, pin attribute
//! bindings, set the efficiency ↔ skew slider and a sample target, watch
//! histograms refresh incrementally, and pose aggregate queries.
//!
//! ```text
//! hdsampler describe  --source vehicles-compact --n 8000
//! hdsampler sample    --source vehicles-full --n 20000 --samples 300 --slider 0.4 \
//!                     --bind condition=used --histogram make --histogram year
//! hdsampler aggregate --source vehicles-compact --n 5000 --samples 400 \
//!                     --proportion make=Toyota --avg price_usd
//! hdsampler validate  --source vehicles-compact --n 5000 --samples 400 --attr make
//! hdsampler multi-site --sites 16 --walkers 4 --latency 50,100,250 --jitter 20 \
//!                     --samples 100 --driver both
//! hdsampler serve     --port 8000 --workers 4 --n 8000 --k 250
//! hdsampler sample    --remote 127.0.0.1:8000 --n 8000 --k 250 --samples 200
//! ```

mod args;
mod commands;
mod display;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
