//! Command implementations.

use std::io::Write as _;
use std::sync::Arc;

use hdsampler_core::{
    CachingExecutor, HdsSampler, MetricsRegistry, MetricsSink, SampleSet, SamplerConfig,
    SamplerStats, SamplingSession, SessionEvent, TraceEvent, TraceLog,
};
use hdsampler_estimator::{fmt_stat, Estimator, Histogram, MarginalComparison, OnlineFrequencies};
use hdsampler_hidden_db::{CountMode, HiddenDb};
use hdsampler_model::{ConjunctiveQuery, FormInterface, Schema};
use hdsampler_server::{
    render_server_metrics, Adversary, BridgeSink, HttpServer, Response, ServeMode, ServerConfig,
    ServerHandle, SiteBehavior,
};
use hdsampler_webform::{
    read_journal, summarize, watch_events, write_journal, AsyncTransport, BoxTransport, ChaosSpec,
    ChaosTransport, Clocked, ConnectOptions, ConnectorRegistry, Driver, LatencyTransport,
    LocalSite, RetryPolicy, RunPlan, RunReport, SiteLocator, SiteReport, SiteTask, Transport,
    WebForm, WebFormInterface,
};
use hdsampler_workload::{resolve_dataset, DbConfig, WorkloadSpec};

use crate::args::{CacheAction, Cli, Command, Common, DriverMode, TraceAction};
use crate::display::{self, progress_line, ProgressSink, WatchSink};

/// Build one simulated hidden database from the common options with an
/// explicit seed (multi-site fleets give every site its own data).
fn build_db(common: &Common, seed: u64) -> Result<HiddenDb, String> {
    let count_mode = match common.counts.as_str() {
        "exact" => CountMode::Exact,
        "noisy" => CountMode::Noisy { sigma: 0.15, seed },
        _ => CountMode::Absent,
    };
    let mut db_cfg = DbConfig {
        count_mode,
        ..DbConfig::no_counts().with_k(common.k)
    };
    if let Some(b) = common.budget {
        db_cfg = db_cfg.with_budget(b);
    }
    // The registry rejects unknown names early, listing every valid one
    // (plus a nearest-match hint) — no string-matched dispatch here.
    let data = resolve_dataset(&common.source)?.data_spec(common.n, seed);
    Ok(WorkloadSpec {
        data,
        db: db_cfg,
        seed,
    }
    .build())
}

/// Build the simulated site from the common options.
fn build_site(common: &Common) -> Result<Arc<HiddenDb>, String> {
    Ok(Arc::new(build_db(common, common.seed)?))
}

fn scope_query(schema: &Schema, binds: &[(String, String)]) -> Result<ConjunctiveQuery, String> {
    ConjunctiveQuery::from_named(schema, binds.iter().map(|(a, b)| (a.as_str(), b.as_str())))
        .map_err(|e| e.to_string())
}

/// Run one sampling session over any interface (the in-process database
/// or a scraped remote site) behind a history cache.
fn run_session_on<F: FormInterface>(
    iface: F,
    schema: &Schema,
    common: &Common,
) -> Result<(SampleSet, hdsampler_core::SamplerStats), String> {
    let scope = scope_query(schema, &common.binds)?;
    let cfg = SamplerConfig::seeded(common.seed)
        .with_slider(common.slider)
        .with_scope(scope);
    let exec = CachingExecutor::new(iface);
    let mut sampler = HdsSampler::new(&exec, cfg).map_err(|e| e.to_string())?;
    let session = SamplingSession::new(common.samples);
    let mut out = std::io::stdout();
    let outcome = session.run(&mut sampler, |event| {
        if let SessionEvent::SampleAccepted {
            collected, target, ..
        } = event
        {
            if collected % 25 == 0 || *collected == *target {
                let _ = write!(out, "\r  samples {collected}/{target}   ");
                let _ = out.flush();
            }
        }
    });
    println!();
    println!("{}", display::summary(&outcome.stats));
    let hist = exec.history_stats();
    println!(
        "history cache: {} shards (autotuned), {} hits, {} evictions",
        hist.shard_count,
        hist.total_hits(),
        hist.evictions
    );
    match &outcome.reason {
        hdsampler_core::StopReason::TargetReached => {}
        // A failed session (e.g. the remote server refused connections) is
        // a command failure, not a short result — scripts polling
        // `sample --remote` rely on the exit code.
        hdsampler_core::StopReason::Failed(e) => {
            return Err(format!("session failed: {e}"));
        }
        early => println!("note: session stopped early ({early:?})"),
    }
    Ok((outcome.samples, outcome.stats))
}

fn run_session(
    db: &Arc<HiddenDb>,
    common: &Common,
) -> Result<(SampleSet, hdsampler_core::SamplerStats), String> {
    let schema = db.schema().clone();
    run_session_on(Arc::clone(db), &schema, common)
}

/// The locator a `sample` invocation means: the positional locator wins,
/// `--remote <addr>` is sugar for `http://<addr>`, and bare flags name an
/// in-process `local:` site (so every path goes through the connector
/// registry and its scrape-based schema discovery).
fn effective_locator(common: &Common, locator: Option<&str>) -> Result<SiteLocator, String> {
    if let Some(s) = locator {
        return SiteLocator::parse(s);
    }
    if let Some(addr) = &common.remote {
        return SiteLocator::parse(&format!("http://{addr}"));
    }
    Ok(local_locator_from_flags(common))
}

/// Translate the classic workload flags into their `local:` locator.
fn local_locator_from_flags(common: &Common) -> SiteLocator {
    let mut params = vec![
        ("n".to_string(), common.n.to_string()),
        ("k".to_string(), common.k.to_string()),
        ("seed".to_string(), common.seed.to_string()),
    ];
    if common.counts != "absent" {
        params.push(("counts".into(), common.counts.clone()));
    }
    if let Some(b) = common.budget {
        params.push(("budget".into(), b.to_string()));
    }
    SiteLocator::Local {
        dataset: common.source.clone(),
        params,
    }
}

/// The `--trace` / `--metrics` options a run surface carries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetryOpts {
    /// `--trace <path>`: journal the run's trace events to JSONL.
    pub trace: Option<String>,
    /// `--metrics <port>`: loopback port for a live telemetry server
    /// exposing `/metrics` and `/events` over the run.
    pub metrics: Option<String>,
}

impl TelemetryOpts {
    fn new(trace: Option<String>, metrics: Option<String>) -> Self {
        TelemetryOpts { trace, metrics }
    }
}

/// The landing page of the embedded telemetry plane. `/metrics` and
/// `/events` are answered by the server itself before routing reaches
/// the site, so the only job here is pointing a browser at them.
struct TelemetrySite;

impl SiteBehavior for TelemetrySite {
    fn get(&self, _target: &str) -> Response {
        Response::text(
            200,
            "OK",
            "hdsampler telemetry plane — scrape /metrics, stream /events\n".to_string(),
        )
    }
}

/// The live half of a run's observability, resolved from
/// [`TelemetryOpts`]: a journal accumulator for `--trace`, and (for
/// `--metrics <port>`) an embedded telemetry server whose registry
/// aggregates the same trace stream and whose `/events` hub mirrors
/// every accepted sample to remote watchers.
struct PlanTelemetry {
    journal: Option<String>,
    log: TraceLog,
    metrics_sink: Option<MetricsSink>,
    bridge: Option<BridgeSink>,
    plane: Option<ServerHandle>,
}

impl PlanTelemetry {
    /// Resolve the flags, booting the telemetry server if one was asked
    /// for (`--metrics 0` picks an ephemeral port; the bound address is
    /// printed so a second terminal can `trace watch` it).
    fn start(opts: &TelemetryOpts) -> Result<Self, String> {
        let served = match &opts.metrics {
            Some(port) => {
                let port: u16 = port.parse().map_err(|_| {
                    format!(
                        "--metrics: `{port}` is not a port number (sample/multi-site \
                         serve a live telemetry plane; 0 = ephemeral)"
                    )
                })?;
                let registry = MetricsRegistry::new();
                let cfg = ServerConfig {
                    addr: format!("127.0.0.1:{port}"),
                    workers: 2,
                    metrics: Some(registry.clone()),
                    ..ServerConfig::default()
                };
                let handle = HttpServer::serve(cfg, Arc::new(TelemetrySite))
                    .map_err(|e| format!("cannot bind telemetry plane on 127.0.0.1:{port}: {e}"))?;
                println!(
                    "telemetry: http://{0} — scrape /metrics, stream /events \
                     (`hdsampler trace watch {0}`)",
                    handle.addr()
                );
                Some((handle, registry))
            }
            None => None,
        };
        let (plane, metrics_sink, bridge) = match served {
            Some((handle, registry)) => {
                let bridge = BridgeSink::new(handle.events());
                (Some(handle), Some(MetricsSink::new(registry)), Some(bridge))
            }
            None => (None, None, None),
        };
        Ok(PlanTelemetry {
            journal: opts.trace.clone(),
            log: TraceLog::new(),
            metrics_sink,
            bridge,
            plane,
        })
    }

    /// Attach the resolved sinks to one plan. Called once per driver pass
    /// (the journal accumulates across passes of `--driver both`).
    fn attach<'a>(&'a mut self, mut plan: RunPlan<'a>) -> RunPlan<'a> {
        if let Some(b) = self.bridge.as_mut() {
            plan = plan.attach(b);
        }
        if self.journal.is_some() {
            plan = plan.attach_trace(&mut self.log);
        }
        if let Some(m) = self.metrics_sink.as_mut() {
            plan = plan.attach_trace(m);
        }
        plan
    }

    /// Write the journal and retire the telemetry server (ending any
    /// `/events` watcher's stream cleanly).
    fn finish(self) -> Result<(), String> {
        if let Some(path) = &self.journal {
            write_journal(std::path::Path::new(path), self.log.events())
                .map_err(|e| format!("cannot write trace journal `{path}`: {e}"))?;
            println!(
                "trace: {} event(s) journaled to `{path}` — inspect with `trace report {path}`",
                self.log.events().len()
            );
        }
        if let Some(handle) = self.plane {
            let stats = handle.shutdown();
            println!(
                "telemetry: plane served {} request(s) on {} connection(s)",
                stats.requests, stats.connections
            );
        }
        Ok(())
    }
}

/// Execute a parsed command.
pub fn run(cli: Cli) -> Result<(), String> {
    match cli.command {
        Command::Describe => describe(&cli.common),
        Command::Sample {
            locator,
            histograms,
            record,
            coop_walkers,
            coop_conns,
            watch,
            trace,
            metrics,
            l2,
        } => sample(
            &cli.common,
            locator.as_deref(),
            &histograms,
            record.as_deref(),
            coop_walkers,
            coop_conns,
            watch,
            &TelemetryOpts::new(trace, metrics),
            l2.as_deref(),
        ),
        Command::Aggregate { proportions, avgs } => aggregate(&cli.common, &proportions, &avgs),
        Command::Validate { attr } => validate(&cli.common, attr.as_deref()),
        Command::MultiSite {
            site_locators,
            sites,
            walkers,
            latencies_ms,
            jitter_ms,
            mode,
            coop_conns,
            watch,
            chaos,
            steal,
            trace,
            metrics,
            l2,
        } => {
            let telemetry = TelemetryOpts::new(trace, metrics);
            if !site_locators.is_empty() {
                return multi_site_locators(
                    &cli.common,
                    &site_locators,
                    walkers,
                    mode,
                    coop_conns,
                    steal,
                    &telemetry,
                    l2.as_deref(),
                );
            }
            if l2.is_some() {
                // The flag-built simulated fleet gives every site the
                // same schema and k, so a digest-free fingerprint would
                // collide across sites with different data — facts from
                // one site would answer another's queries. Locator legs
                // scrape each site's advertised (data-sensitive)
                // fingerprint instead.
                return Err("--l2 needs fingerprinted legs; name the fleet with --site \
                            locators (e.g. --site local:boolean?seed=1) or bake an \
                            `l2=` parameter into each locator"
                    .into());
            }
            multi_site(
                &cli.common,
                sites,
                walkers,
                &latencies_ms,
                jitter_ms,
                mode,
                coop_conns,
                watch,
                chaos,
                steal,
                &telemetry,
            )
        }
        Command::Serve {
            port,
            pool,
            workers,
            serve_for,
            chaos,
            trace,
            metrics,
            max_conns,
        } => serve(
            &cli.common,
            port,
            pool,
            workers,
            serve_for,
            chaos,
            &TelemetryOpts::new(trace, metrics),
            max_conns,
        ),
        Command::Trace { action } => match action {
            TraceAction::Report { journal } => trace_report(&journal),
            TraceAction::Watch { addr } => trace_watch(&addr),
        },
        Command::Cache { action, dir } => cache_cmd(action, &dir),
    }
}

/// `cache stats|compact|clear --l2 <dir>`: maintenance of a persistent
/// history directory, one fingerprint subdirectory per site version.
fn cache_cmd(action: CacheAction, dir: &str) -> Result<(), String> {
    use hdsampler_core::L2Log;
    let root = std::path::Path::new(dir);
    let sites =
        L2Log::list_sites(root).map_err(|e| format!("cannot scan cache root `{dir}`: {e}"))?;
    if sites.is_empty() {
        println!("cache root `{dir}`: no persisted sites");
        return Ok(());
    }
    println!("cache root `{dir}`: {} site(s)", sites.len());
    for fp in sites {
        let log = L2Log::open(root, fp.clone())
            .map_err(|e| format!("cannot open site log `{}`: {e}", fp.as_str()))?;
        match action {
            CacheAction::Stats => {
                let s = log
                    .stats()
                    .map_err(|e| format!("cannot scan `{}`: {e}", fp.as_str()))?;
                println!(
                    "  {}: {} records in {} segment(s), {} bytes, {} skipped",
                    fp.as_str(),
                    s.records,
                    s.segments,
                    s.bytes,
                    s.skipped
                );
            }
            CacheAction::Compact => {
                let r = log
                    .compact()
                    .map_err(|e| format!("cannot compact `{}`: {e}", fp.as_str()))?;
                println!(
                    "  {}: {} records in {} segment(s) -> {} records in 1 segment \
                     ({} torn line(s) dropped)",
                    fp.as_str(),
                    r.records_before,
                    r.segments_before,
                    r.records_after,
                    r.skipped
                );
            }
            CacheAction::Clear => {
                log.clear()
                    .map_err(|e| format!("cannot clear `{}`: {e}", fp.as_str()))?;
                println!("  {}: cleared", fp.as_str());
            }
        }
    }
    Ok(())
}

/// `trace report <journal.jsonl>`: per-stage latency breakdown and the
/// critical-path summary of a `--trace` journal.
fn trace_report(journal: &str) -> Result<(), String> {
    let events = read_journal(std::path::Path::new(journal))?;
    println!("{}", summarize(&events));
    Ok(())
}

/// `trace watch <host:port>`: `--watch`'s remote mode — follow a live
/// server's `/events` stream, re-rendering the streaming progress line
/// for every accepted-sample event until the server closes the stream.
fn trace_watch(addr: &str) -> Result<(), String> {
    println!("watching http://{addr}/events — ends when the server closes the stream");
    let mut out = std::io::stdout();
    let delivered = watch_events(addr, |ev| {
        let stats = SamplerStats {
            queries_issued: ev.queries,
            requests: ev.requests,
            ..SamplerStats::default()
        };
        let _ = write!(out, "{}", progress_line(ev.collected, ev.target, &stats));
        let _ = out.flush();
        true
    })?;
    println!("\nstream closed after {delivered} accepted-sample event(s)");
    Ok(())
}

/// Put the simulated site behind a real HTTP front door on 127.0.0.1,
/// optionally hidden behind a fault-injecting [`Adversary`].
#[allow(clippy::too_many_arguments)]
fn serve(
    common: &Common,
    port: u16,
    pool: bool,
    workers: usize,
    serve_for: Option<u64>,
    chaos: Option<ChaosSpec>,
    telemetry: &TelemetryOpts,
    max_conns: usize,
) -> Result<(), String> {
    let db = build_db(common, common.seed)?;
    let schema = Arc::new(db.schema().clone());
    let n = db.n_tuples();
    let k = db.result_limit();
    let site = Arc::new(LocalSite::new(db, Arc::clone(&schema)));
    let action = site.form().action().to_string();
    let mode = if pool {
        ServeMode::Pool
    } else {
        ServeMode::Reactor
    };
    let reactor_live = mode == ServeMode::Reactor && cfg!(target_os = "linux");
    let cfg = ServerConfig {
        addr: format!("127.0.0.1:{port}"),
        workers,
        mode,
        max_conns,
        ..ServerConfig::default()
    };
    // The adversary (when any) is kept on this side too, so the shutdown
    // report can print what it injected.
    let adversary = chaos.map(|spec| Arc::new(Adversary::new(Arc::clone(&site), spec)));
    let handle = match &adversary {
        Some(adv) => HttpServer::serve(cfg, Arc::clone(adv)),
        None => HttpServer::serve(cfg, site),
    }
    .map_err(|e| format!("cannot bind 127.0.0.1:{port}: {e}"))?;
    println!(
        "serving `{}` (n = {n}, top-{k}) on http://{} — form at /, results at {action}",
        common.source,
        handle.addr()
    );
    println!("telemetry: /metrics exposition and /events live stream on the same port");
    if reactor_live {
        println!("mode: epoll reactor — one readiness loop per core multiplexing every connection");
    } else if mode == ServeMode::Reactor {
        println!("mode: bounded pool, {workers} worker thread(s) (the epoll reactor needs Linux)");
    } else {
        println!("mode: bounded pool, {workers} worker thread(s) (--pool)");
    }
    if max_conns > 0 {
        println!(
            "admission: at most {max_conns} open connection(s); extras get \
             503 + Retry-After"
        );
    }
    if let Some(adv) = &adversary {
        let spec = adv.spec();
        println!(
            "adversary: seed {} — throttle {:.0}%, fail {:.0}%, drop {:.0}%, \
             latency {} ms, slow-start {} ms × {}, jitter ±{} ms, count-noise {:.0}%",
            spec.seed,
            spec.throttle * 100.0,
            spec.fail * 100.0,
            spec.drop * 100.0,
            spec.latency_ms,
            spec.slow_start_ms,
            spec.slow_warmup,
            spec.jitter_ms,
            spec.count_noise * 100.0,
        );
    }
    match serve_for {
        Some(secs) => {
            println!("shutting down gracefully after {secs} s");
            std::thread::sleep(std::time::Duration::from_secs(secs));
            let request_log = handle.request_log();
            let stats = handle.shutdown();
            println!(
                "served {} requests on {} connections ({} ok / {} client-error / {} server-error), {} bytes out / {} bytes in",
                stats.requests,
                stats.connections,
                stats.responses_ok,
                stats.responses_client_error,
                stats.responses_server_error,
                stats.bytes_out,
                stats.bytes_in,
            );
            if stats.admission_rejects > 0 {
                println!(
                    "admission: {} connection(s) turned away at the --max-conns cap",
                    stats.admission_rejects
                );
            }
            println!(
                "routes: {} landing, {} search, {} metrics, {} events, {} other",
                stats.requests_landing,
                stats.requests_search,
                stats.requests_metrics,
                stats.requests_events,
                stats.requests_other,
            );
            if reactor_live {
                println!(
                    "reactor: {} wakeups, {} ready events, {} accepts, {} timers fired, \
                     {} connection(s) still open",
                    stats.reactor_wakeups,
                    stats.reactor_ready_events,
                    stats.reactor_accepts,
                    stats.timers_fired,
                    stats.open_connections,
                );
            }
            if let Some(path) = &telemetry.metrics {
                std::fs::write(path, render_server_metrics(&stats, None))
                    .map_err(|e| format!("cannot write metrics exposition `{path}`: {e}"))?;
                println!("metrics: final exposition written to `{path}`");
            }
            if let Some(path) = &telemetry.trace {
                let events: Vec<TraceEvent> = request_log
                    .iter()
                    .map(|entry| TraceEvent {
                        kind: "request".into(),
                        detail: entry.target.clone(),
                        tag: entry.trace.clone(),
                        seq: entry.seq,
                        code: u64::from(entry.status),
                        ..TraceEvent::default()
                    })
                    .collect();
                write_journal(std::path::Path::new(path), &events)
                    .map_err(|e| format!("cannot write request journal `{path}`: {e}"))?;
                println!(
                    "trace: {} request(s) journaled to `{path}` (ring buffer keeps the last {})",
                    events.len(),
                    hdsampler_server::REQUEST_LOG_CAP,
                );
            }
            if let Some(adv) = &adversary {
                let c = adv.counters();
                println!(
                    "injected: {} throttles, {} transient failures, {} dropped connections, \
                     {} noisy pages, {} ms extra delay",
                    c.throttles, c.transient_fails, c.drops, c.noisy_pages, c.extra_delay_ms,
                );
            }
        }
        None => {
            println!("press Ctrl-C to stop");
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
    }
    Ok(())
}

/// Build one fleet of `sites` scraper stacks, each over its own seeded
/// data behind a latency-decorated wire. Site `i` gets latency
/// `latencies_ms[i % len] ± jitter_ms` (heterogeneous fleets: pass a
/// comma list to `--latency`).
fn build_fleet(
    common: &Common,
    sites: usize,
    latencies_ms: &[u64],
    jitter_ms: u64,
) -> Result<Vec<SiteTask<LatencyTransport<LocalSite<HiddenDb>>>>, String> {
    (0..sites)
        .map(|i| {
            let db = build_db(common, common.seed.wrapping_add(i as u64))?;
            let schema = Arc::new(db.schema().clone());
            let k = db.result_limit();
            let supports_count = db.supports_count();
            let site = LocalSite::new(db, Arc::clone(&schema));
            let latency = latencies_ms[i % latencies_ms.len()];
            let wire = LatencyTransport::with_jitter(
                site,
                latency,
                jitter_ms,
                common.seed.wrapping_add(i as u64),
            );
            Ok(SiteTask::new(
                format!("site-{i}"),
                WebFormInterface::new(wire, schema, k, supports_count),
            ))
        })
        .collect()
}

/// Build an adversarial fleet: the same seeded per-site data, but each
/// wire is a [`ChaosTransport`] injecting the `--chaos` schedule. Site `i`
/// faults on its own stream (the spec seed is offset per site, so the
/// fleet never throttles in lockstep); a spec without `latency=` inherits
/// the site's `--latency` entry as its base service time.
fn build_chaos_fleet(
    common: &Common,
    sites: usize,
    latencies_ms: &[u64],
    spec: &ChaosSpec,
) -> Result<Vec<SiteTask<ChaosTransport<LocalSite<HiddenDb>>>>, String> {
    (0..sites)
        .map(|i| {
            let db = build_db(common, common.seed.wrapping_add(i as u64))?;
            let schema = Arc::new(db.schema().clone());
            let k = db.result_limit();
            let supports_count = db.supports_count();
            let site = LocalSite::new(db, Arc::clone(&schema));
            let mut site_spec = ChaosSpec {
                seed: spec.seed.wrapping_add(i as u64),
                ..spec.clone()
            };
            if site_spec.latency_ms == 0 {
                site_spec.latency_ms = latencies_ms[i % latencies_ms.len()];
            }
            let wire = ChaosTransport::new(site, site_spec);
            Ok(SiteTask::new(
                format!("site-{i}"),
                WebFormInterface::new(wire, schema, k, supports_count)
                    .with_retry(CHAOS_RETRY_POLICY),
            ))
        })
        .collect()
}

/// The retry policy an adversarial fleet runs under: patient enough to
/// ride out bursts at the default fault rates, still bounded so a dead
/// site fails instead of spinning.
const CHAOS_RETRY_POLICY: RetryPolicy = RetryPolicy {
    max_retries: 12,
    base_backoff_ms: 25,
    max_backoff_ms: 2_000,
};

/// Build a fleet of scraper stacks over live servers, one per address,
/// each schema discovered by scraping the server's landing page — no
/// local schema flags needed.
fn build_remote_fleet(addrs: &[&str]) -> Result<Vec<SiteTask<BoxTransport>>, String> {
    let registry = ConnectorRegistry::standard();
    addrs
        .iter()
        .map(|addr| {
            let loc = SiteLocator::parse(&format!("http://{addr}"))?;
            registry.connect(&loc, &ConnectOptions::default())
        })
        .collect()
}

/// `multi-site --site a --site b …`: a heterogeneous fleet where every
/// leg is its own locator — mixed `local:`, `http://` and `replay:` wires
/// with per-site schemas, all resolved through the connector registry and
/// driven by one [`RunPlan`].
#[allow(clippy::too_many_arguments)]
fn multi_site_locators(
    common: &Common,
    locs: &[String],
    walkers: usize,
    mode: DriverMode,
    coop_conns: Option<usize>,
    steal: bool,
    telemetry: &TelemetryOpts,
    l2: Option<&str>,
) -> Result<(), String> {
    if !common.binds.is_empty() {
        return Err("--bind does not combine with --site: fleet legs have \
                    per-site schemas, and the scope is fleet-wide"
            .into());
    }
    let locators: Vec<SiteLocator> = locs
        .iter()
        .map(|s| SiteLocator::parse(s))
        .collect::<Result<_, String>>()?;
    let driver = match mode {
        DriverMode::Concurrent => Driver::Threaded,
        DriverMode::Serial => Driver::Serial,
        DriverMode::Coop => Driver::Coop { conns: coop_conns },
        // Rejected at parse time: `both` would need to rebuild the fleet.
        DriverMode::Both => return Err("--driver both does not combine with --site".into()),
    };
    println!(
        "fleet: {} site(s) by locator, {} samples per site, {walkers} walker(s) per site",
        locators.len(),
        common.samples
    );
    for loc in &locators {
        println!("  - {loc}");
    }
    if mode == DriverMode::Coop {
        println!(
            "driver: cooperative — one thread multiplexes every site's walkers{}",
            if steal { ", stealing enabled" } else { "" }
        );
    }
    if let Some(root) = l2 {
        println!("l2 history: persisting learned facts under `{root}/<fingerprint>/`");
    }
    let mut observers = PlanTelemetry::start(telemetry)?;
    let mut plan = RunPlan::target(common.samples)
        .walkers(walkers)
        .seed(common.seed)
        .slider(common.slider)
        .driver(driver)
        .steal(steal);
    if let Some(root) = l2 {
        plan = plan.l2(root);
    }
    let (report, fleet) = observers.attach(plan).run_locators(&locators)?;
    println!("\n{}", display::fleet_report(&report.fleet));
    if l2.is_some() {
        for (task, site) in fleet.iter().zip(&report.fleet.sites) {
            print_l2_block(
                &site.history,
                task.l2().map(|log| log.fingerprint().as_str()),
            );
        }
    }
    observers.finish()
}

/// Drive one fleet through the chosen mode(s): the shared back half of
/// `multi-site`, generic over the wire (virtual, chaos-wrapped, or real).
/// `build` is called once up front and again for the serial pass of
/// `--driver both` (each pass gets fresh clocks).
#[allow(clippy::too_many_arguments)]
fn drive_fleet<T, B>(
    common: &Common,
    build: B,
    walkers: usize,
    mode: DriverMode,
    coop_conns: Option<usize>,
    watch: bool,
    steal: bool,
    telemetry: &TelemetryOpts,
) -> Result<(), String>
where
    T: Transport + AsyncTransport + Clocked + Send,
    B: Fn() -> Result<Vec<SiteTask<T>>, String>,
{
    // Build one fleet up front: its schema validates the --bind scope
    // (the sites share a schema structure, so ids resolve fleet-wide).
    let mut fleet = build()?;
    let schema = fleet[0].iface.schema().clone();
    let scope = scope_query(&schema, &common.binds)?;
    let plan_for = |driver: Driver| {
        RunPlan::target(common.samples)
            .walkers(walkers)
            .seed(common.seed)
            .slider(common.slider)
            .scope(scope.clone())
            .driver(driver)
            .steal(steal)
    };
    let mut watch_sink = watch.then(|| fleet_watch_sink(&schema)).transpose()?;
    let mut observers = PlanTelemetry::start(telemetry)?;
    if mode == DriverMode::Coop {
        println!(
            "driver: cooperative — one thread multiplexes every site's walkers{}",
            if steal { ", stealing enabled" } else { "" }
        );
        let mut plan = plan_for(Driver::Coop { conns: coop_conns });
        if let Some(w) = watch_sink.as_mut() {
            plan = plan.attach(w);
        }
        let report = observers.attach(plan).run(&mut fleet);
        println!("\n{}", display::fleet_report(&report.fleet));
        return observers.finish();
    }
    let concurrent = match mode {
        DriverMode::Serial | DriverMode::Coop => None,
        DriverMode::Concurrent | DriverMode::Both => {
            let mut plan = plan_for(Driver::Threaded);
            if let Some(w) = watch_sink.as_mut() {
                plan = plan.attach(w);
            }
            let report = observers.attach(plan).run(&mut fleet);
            println!("\n{}", display::fleet_report(&report.fleet));
            Some(report)
        }
    };
    let serial = match mode {
        DriverMode::Concurrent | DriverMode::Coop => None,
        DriverMode::Serial | DriverMode::Both => {
            let mut plan = plan_for(Driver::Serial);
            if let Some(w) = watch_sink.as_mut() {
                plan = plan.attach(w);
            }
            let report = observers.attach(plan).run(&mut build()?);
            println!("\n{}", display::fleet_report(&report.fleet));
            Some(report)
        }
    };
    if let (Some(c), Some(s)) = (concurrent, serial) {
        if c.fleet.fleet_elapsed_ms > 0 {
            println!(
                "speedup: {:.1}× (serial {:.1} s → concurrent {:.1} s of virtual wall clock)",
                s.fleet.fleet_elapsed_ms as f64 / c.fleet.fleet_elapsed_ms as f64,
                s.fleet.fleet_elapsed_ms as f64 / 1_000.0,
                c.fleet.fleet_elapsed_ms as f64 / 1_000.0,
            );
        }
    }
    observers.finish()
}

#[allow(clippy::too_many_arguments)]
fn multi_site(
    common: &Common,
    sites: usize,
    walkers: usize,
    latencies_ms: &[u64],
    jitter_ms: u64,
    mode: DriverMode,
    coop_conns: Option<usize>,
    watch: bool,
    chaos: Option<ChaosSpec>,
    steal: bool,
    telemetry: &TelemetryOpts,
) -> Result<(), String> {
    if let Some(remote) = &common.remote {
        return multi_site_remote(
            common, remote, walkers, mode, coop_conns, watch, steal, telemetry,
        );
    }
    let latency_desc = if latencies_ms.len() == 1 {
        format!("{} ms", latencies_ms[0])
    } else {
        format!("{latencies_ms:?} ms (cycling)")
    };
    match chaos {
        Some(spec) => {
            println!(
                "fleet: {sites} × `{}` (n = {} each) behind adversarial wires \
                 (seed {} — throttle {:.0}%, fail {:.0}%, drop {:.0}%, count-noise {:.0}%), \
                 {} samples per site, {walkers} walker(s) per site",
                common.source,
                common.n,
                spec.seed,
                spec.throttle * 100.0,
                spec.fail * 100.0,
                spec.drop * 100.0,
                spec.count_noise * 100.0,
                common.samples
            );
            drive_fleet(
                common,
                || build_chaos_fleet(common, sites, latencies_ms, &spec),
                walkers,
                mode,
                coop_conns,
                watch,
                steal,
                telemetry,
            )
        }
        None => {
            println!(
                "fleet: {sites} × `{}` (n = {} each) at {latency_desc} ± {jitter_ms} ms \
                 virtual latency, {} samples per site, {walkers} walker(s) per site",
                common.source, common.n, common.samples
            );
            drive_fleet(
                common,
                || build_fleet(common, sites, latencies_ms, jitter_ms),
                walkers,
                mode,
                coop_conns,
                watch,
                steal,
                telemetry,
            )
        }
    }
}

/// The fleet-wide `--watch` sink: live histograms over the schema's
/// first attribute, re-rendered every 25 samples.
fn fleet_watch_sink(schema: &Schema) -> Result<WatchSink, String> {
    let attr = schema
        .attr_ids()
        .next()
        .ok_or("schema has no attributes to watch")?;
    Ok(WatchSink::new(vec![Histogram::new(schema, attr)], 25, 40))
}

/// `multi-site --remote a,b,c`: one site per live server address, real
/// wall clock instead of the virtual one.
/// Pipelined connections per live site when `--driver coop` is used
/// without `--coop-conns`: the reactor server (the `serve` default)
/// multiplexes every connection onto per-core readiness loops, so a
/// wide fan-out no longer starves a worker pool — 64 connections keeps
/// per-connection pipelines shallow (better latency under cancellation)
/// while staying far below fd limits. Against a `serve --pool` server,
/// cap it by hand (`--coop-conns <= --workers`).
const DEFAULT_REMOTE_COOP_CONNS: usize = 64;

#[allow(clippy::too_many_arguments)]
fn multi_site_remote(
    common: &Common,
    remote: &str,
    walkers: usize,
    mode: DriverMode,
    coop_conns: Option<usize>,
    watch: bool,
    steal: bool,
    telemetry: &TelemetryOpts,
) -> Result<(), String> {
    let addrs: Vec<&str> = remote.split(',').map(str::trim).collect();
    if addrs.iter().any(|a| a.is_empty()) {
        return Err("--remote: empty address in list".into());
    }
    let mut fleet = build_remote_fleet(&addrs)?;
    let schema = fleet[0].iface.schema().clone();
    let scope = scope_query(&schema, &common.binds)?;
    let plan_for = |driver: Driver| {
        RunPlan::target(common.samples)
            .walkers(walkers)
            .seed(common.seed)
            .slider(common.slider)
            .scope(scope.clone())
            .driver(driver)
            .steal(steal)
    };
    println!(
        "fleet: {} live server(s) over real TCP, {} samples per site, {walkers} walker(s) per site",
        addrs.len(),
        common.samples
    );
    let mut watch_sink = watch.then(|| fleet_watch_sink(&schema)).transpose()?;
    let mut observers = PlanTelemetry::start(telemetry)?;
    if mode == DriverMode::Coop {
        let conns = coop_conns
            .unwrap_or(DEFAULT_REMOTE_COOP_CONNS)
            .min(walkers.max(1));
        println!(
            "driver: cooperative — one thread, {walkers} walker(s) pipelined over \
             {conns} connection(s) per site"
        );
        let mut plan = plan_for(Driver::Coop { conns: Some(conns) });
        if let Some(w) = watch_sink.as_mut() {
            plan = plan.attach(w);
        }
        let report = observers.attach(plan).run(&mut fleet);
        println!("\n{}", display::fleet_report(&report.fleet));
        return observers.finish();
    }
    if matches!(mode, DriverMode::Concurrent | DriverMode::Both) {
        let mut plan = plan_for(Driver::Threaded);
        if let Some(w) = watch_sink.as_mut() {
            plan = plan.attach(w);
        }
        let report = observers.attach(plan).run(&mut fleet);
        println!("\n{}", display::fleet_report(&report.fleet));
    }
    if matches!(mode, DriverMode::Serial | DriverMode::Both) {
        // A fresh fleet for the serial pass: each transport's real clock
        // starts at zero, like the virtual-wire path rebuilds its fleet.
        let mut plan = plan_for(Driver::Serial);
        if let Some(w) = watch_sink.as_mut() {
            plan = plan.attach(w);
        }
        let report = observers.attach(plan).run(&mut build_remote_fleet(&addrs)?);
        println!("\n{}", display::fleet_report(&report.fleet));
    }
    observers.finish()
}

fn describe(common: &Common) -> Result<(), String> {
    let db = build_site(common)?;
    let schema = Arc::new(db.schema().clone());
    println!(
        "source `{}`: {} tuples behind a top-{} conjunctive form ({} attributes, {} measures)",
        common.source,
        db.n_tuples(),
        db.result_limit(),
        schema.arity(),
        schema.measure_arity(),
    );
    println!("domain product B = {:.3e}\n", schema.domain_product());
    for (_, attr) in schema.iter() {
        let labels: Vec<String> = attr
            .domain()
            .take(6)
            .map(|v| attr.label(v).into_owned())
            .collect();
        let ellipsis = if attr.domain_size() > 6 { ", …" } else { "" };
        println!(
            "  {:<14} |Dom| = {:<4} {{{}{}}}",
            attr.name(),
            attr.domain_size(),
            labels.join(", "),
            ellipsis
        );
    }
    println!("\nform HTML (Figure 3 analogue):\n");
    let form = WebForm::new(schema, "/search");
    for line in form.render_html().lines().take(12) {
        println!("  {line}");
    }
    println!("  …");
    Ok(())
}

/// Report a site's stop reason: failure is a command failure (scripts
/// polling `sample --remote` rely on the exit code), early stops are
/// noted, the target is silent.
fn check_site_stopped(site: &SiteReport) -> Result<(), String> {
    match &site.stopped {
        hdsampler_core::StopReason::TargetReached => Ok(()),
        hdsampler_core::StopReason::Failed(e) => Err(format!("session failed: {e}")),
        early => {
            println!("note: session stopped early ({early:?})");
            Ok(())
        }
    }
}

/// Resolve the histogram attribute list (default: the first attribute).
fn wanted_histograms(schema: &Schema, requested: &[String]) -> Result<Vec<Histogram>, String> {
    let names: Vec<String> = if requested.is_empty() {
        vec![schema.attributes()[0].name().to_owned()]
    } else {
        requested.to_vec()
    };
    names
        .iter()
        .map(|name| {
            schema
                .attr_by_name(name)
                .map(|attr| Histogram::new(schema, attr))
                .map_err(|e| e.to_string())
        })
        .collect()
}

/// Run one `sample` plan over a single site task, streaming progress and
/// live histograms through attached sinks, and return the report plus
/// the final (online-built) histograms.
#[allow(clippy::too_many_arguments)]
fn run_sample_plan<T>(
    common: &Common,
    task: &mut SiteTask<T>,
    schema: &Schema,
    requested: &[String],
    driver: Driver,
    walkers: usize,
    watch: bool,
    telemetry: &TelemetryOpts,
) -> Result<(RunReport, Vec<Histogram>), String>
where
    T: Transport + AsyncTransport + Clocked + Send,
{
    let scope = scope_query(schema, &common.binds)?;
    let mut hists = wanted_histograms(schema, requested)?;
    let mut progress = ProgressSink::new(25);
    let mut watch_sink = watch.then(|| WatchSink::new(hists.clone(), 25, 40));
    let mut observers = PlanTelemetry::start(telemetry)?;
    let mut plan = RunPlan::target(common.samples)
        .walkers(walkers)
        .seed(common.seed)
        .slider(common.slider)
        .scope(scope)
        .driver(driver)
        .attach(&mut progress);
    for hist in hists.iter_mut() {
        plan = plan.attach(hist);
    }
    if let Some(w) = watch_sink.as_mut() {
        plan = plan.attach(w);
    }
    let plan = observers.attach(plan);
    let report = plan.run(std::slice::from_mut(task));
    println!();
    observers.finish()?;
    Ok((report, hists))
}

/// The per-session summary + history-cache lines shared by every
/// `sample` surface.
fn print_session_block(site: &SiteReport) {
    println!("{}", display::summary(&site.stats));
    println!(
        "history cache: {} shards (autotuned), {} hits, {} evictions",
        site.history.shard_count,
        site.history.total_hits(),
        site.history.evictions
    );
    print_l2_block(&site.history, None);
}

/// The persistent-tier summary line, printed only when an L2 log was
/// actually attached (any of its counters moved).
fn print_l2_block(hist: &hdsampler_core::HistoryStats, fingerprint: Option<&str>) {
    if hist.l2_loads == 0 && hist.l2_hits == 0 && hist.l2_misses == 0 && hist.l2_puts == 0 {
        return;
    }
    let site = fingerprint.map(|fp| format!(" [{fp}]")).unwrap_or_default();
    let torn = if hist.l2_skipped > 0 {
        format!(", {} torn line(s) skipped", hist.l2_skipped)
    } else {
        String::new()
    };
    println!(
        "l2 history{site}: {} fact(s) loaded, {} hits, {} misses, {} puts{torn}",
        hist.l2_loads, hist.l2_hits, hist.l2_misses, hist.l2_puts
    );
}

#[allow(clippy::too_many_arguments)]
fn sample(
    common: &Common,
    locator: Option<&str>,
    histograms: &[String],
    record: Option<&str>,
    coop_walkers: Option<usize>,
    coop_conns: Option<usize>,
    watch: bool,
    telemetry: &TelemetryOpts,
    l2: Option<&str>,
) -> Result<(), String> {
    let loc = effective_locator(common, locator)?;
    let opts = ConnectOptions {
        record: record.map(str::to_string),
        l2: l2.map(str::to_string),
    };
    // Every wire goes through the same connector: the schema, k and count
    // support are discovered by scraping the site's `/`, never configured.
    let mut task = ConnectorRegistry::standard().connect(&loc, &opts)?;
    let schema = task.iface.schema().clone();
    if locator.is_some() {
        println!(
            "site {loc}: discovered a {}-attribute form off `/`",
            schema.arity()
        );
    }
    let (driver, walker_count) = match (&loc, coop_walkers) {
        (SiteLocator::Http { addr }, Some(w)) => {
            // Without an explicit --coop-conns, fan out over a reactor-
            // sized default: the event-driven server multiplexes them all
            // on epoll, and `.min(w)` keeps small fleets at one socket
            // per walker.
            let conns = coop_conns
                .unwrap_or(DEFAULT_REMOTE_COOP_CONNS)
                .min(w.max(1));
            println!(
                "sampling live server http://{addr}: {w} cooperative walker(s) on one \
                 thread, {conns} pipelined connection(s)"
            );
            (Driver::Coop { conns: Some(conns) }, w)
        }
        (SiteLocator::Http { addr }, None) => {
            println!("sampling live server http://{addr} over real TCP");
            (Driver::Threaded, 1)
        }
        (_, Some(w)) => (Driver::Coop { conns: coop_conns }, w),
        (_, None) => (Driver::Threaded, 1),
    };
    let (report, hists) = run_sample_plan(
        common,
        &mut task,
        &schema,
        histograms,
        driver,
        walker_count,
        watch,
        telemetry,
    )?;
    let site = report.site();
    print_session_block(site);
    if let Some(log) = task.l2() {
        println!("l2 history: persisted under `{}`", log.dir().display());
    }
    if let Some(details) = &report.details {
        println!(
            "coop: {} walker machine(s) over {} pipelined connection(s), {} history hits",
            walker_count, details[0].connections, site.history_hits
        );
    }
    check_site_stopped(site)?;
    if let Some(path) = record {
        println!(
            "tape: exchanges recorded to `{path}` — replay offline with `sample replay:{path}`"
        );
    }
    // The histograms were built online, sample by sample, by the attached
    // sinks — rendering them is a pure snapshot read.
    for hist in &hists {
        println!("\n{}", hist.render(40));
    }
    Ok(())
}

fn aggregate(
    common: &Common,
    proportions: &[(String, String)],
    avgs: &[String],
) -> Result<(), String> {
    let db = build_site(common)?;
    let schema = db.schema().clone();
    let (samples, _) = run_session(&db, common)?;
    let est = Estimator::new(&samples);
    println!();
    for (attr_name, label) in proportions {
        let attr = schema.attr_by_name(attr_name).map_err(|e| e.to_string())?;
        let value = schema
            .attr_unchecked(attr)
            .parse_label(label)
            .ok_or_else(|| format!("`{label}` is not a value of `{attr_name}`"))?;
        let p = est.proportion(|r| r.values[attr.index()] == value);
        println!(
            "  proportion({attr_name}={label})  = {:.2}% ± {:.2}%",
            p.value * 100.0,
            p.half_width * 100.0
        );
    }
    for m_name in avgs {
        let m = schema.measure_by_name(m_name).map_err(|e| e.to_string())?;
        let a = est.avg(m, |_| true);
        println!(
            "  avg({m_name})             = {:.2} ± {:.2}",
            a.value, a.half_width
        );
    }
    if proportions.is_empty() && avgs.is_empty() {
        println!("  (nothing requested — pass --proportion attr=label or --avg measure)");
    }
    Ok(())
}

fn validate(common: &Common, attr_name: Option<&str>) -> Result<(), String> {
    let db = build_site(common)?;
    let schema = db.schema().clone();
    let (samples, _) = run_session(&db, common)?;
    let attr = match attr_name {
        Some(n) => schema.attr_by_name(n).map_err(|e| e.to_string())?,
        None => schema.attr_ids().next().ok_or("schema has no attributes")?,
    };
    let hist = Histogram::from_rows(&schema, attr, samples.rows());
    let cmp = MarginalComparison::new(
        &schema,
        attr,
        hist.proportions(),
        db.oracle().marginal(attr),
    );
    println!("\n{}", cmp.render(0.01));
    // Per-tuple skew metrics over the same stream (online face). Both can
    // go non-finite (χ² needs draws, KL is ∞ when the estimate puts mass
    // where the truth has none) — `fmt_stat` renders inf/n-a table-safe.
    let mut freq = OnlineFrequencies::new();
    for row in samples.rows() {
        freq.add(row.key);
    }
    println!(
        "skew: chi^2 vs uniform = {} over {} tuples | KL(sampled ‖ truth) = {}",
        fmt_stat(freq.chi_square_uniform(db.n_tuples()), 1),
        db.n_tuples(),
        fmt_stat(cmp.kl(), 4),
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Common;

    fn quick_common() -> Common {
        Common {
            n: 400,
            k: 50,
            samples: 20,
            ..Common::default()
        }
    }

    #[test]
    fn build_site_sources() {
        assert!(build_site(&quick_common()).is_ok());
        let full = Common {
            source: "vehicles-full".into(),
            ..quick_common()
        };
        assert!(build_site(&full).is_ok());
        let boolean = Common {
            source: "boolean".into(),
            ..quick_common()
        };
        assert!(build_site(&boolean).is_ok());
        let bad = Common {
            source: "nope".into(),
            ..quick_common()
        };
        assert!(build_site(&bad).is_err());
    }

    #[test]
    fn end_to_end_sample_command() {
        let common = quick_common();
        sample(
            &common,
            None,
            &["make".into()],
            None,
            None,
            None,
            false,
            &TelemetryOpts::default(),
            None,
        )
        .unwrap();
    }

    #[test]
    fn end_to_end_sample_with_locator() {
        // The positional-locator path: dataset, n, k and seed all live in
        // the locator; schema comes off the scraped landing page.
        let common = Common {
            samples: 15,
            ..Common::default()
        };
        sample(
            &common,
            Some("local:vehicles-compact?n=400&k=50&seed=9"),
            &["make".into()],
            None,
            None,
            None,
            false,
            &TelemetryOpts::default(),
            None,
        )
        .unwrap();
        // Unknown datasets fail early with the registry's hint.
        let err = sample(
            &common,
            Some("local:vehicles-compat?n=400"),
            &[],
            None,
            None,
            None,
            false,
            &TelemetryOpts::default(),
            None,
        )
        .unwrap_err();
        assert!(err.contains("did you mean `vehicles-compact`?"), "{err}");
    }

    #[test]
    fn end_to_end_record_then_replay() {
        // `sample <local> --record tape` then `sample replay:tape` with no
        // flags at all: the tape carries discovery and every page.
        let tape = std::env::temp_dir().join(format!("hds_cli_tape_{}.jsonl", std::process::id()));
        let tape_str = tape.to_str().unwrap().to_string();
        let common = Common {
            samples: 10,
            ..Common::default()
        };
        sample(
            &common,
            Some("local:vehicles-compact?n=400&k=50&seed=4"),
            &["make".into()],
            Some(&tape_str),
            None,
            None,
            false,
            &TelemetryOpts::default(),
            None,
        )
        .unwrap();
        sample(
            &common,
            Some(&format!("replay:{tape_str}")),
            &["make".into()],
            None,
            None,
            None,
            false,
            &TelemetryOpts::default(),
            None,
        )
        .unwrap();
        std::fs::remove_file(&tape).ok();
    }

    #[test]
    fn end_to_end_aggregate_command() {
        let common = quick_common();
        aggregate(
            &common,
            &[("make".to_string(), "Toyota".to_string())],
            &["price_usd".to_string()],
        )
        .unwrap();
        // Unknown label is a user error, not a panic.
        assert!(aggregate(&common, &[("make".to_string(), "Tesla".to_string())], &[],).is_err());
    }

    #[test]
    fn end_to_end_validate_command() {
        validate(&quick_common(), Some("make")).unwrap();
        assert!(validate(&quick_common(), Some("bogus")).is_err());
    }

    #[test]
    fn end_to_end_multi_site_command() {
        let common = Common {
            n: 300,
            k: 50,
            samples: 15,
            ..Common::default()
        };
        multi_site(
            &common,
            3,
            2,
            &[100],
            0,
            DriverMode::Both,
            None,
            false,
            None,
            false,
            &TelemetryOpts::default(),
        )
        .unwrap();
    }

    #[test]
    fn end_to_end_multi_site_chaos_command() {
        let common = Common {
            n: 300,
            k: 50,
            samples: 15,
            ..Common::default()
        };
        let spec =
            ChaosSpec::parse("seed=3,throttle=0.15,retry_after=80,fail=0.05,drop=0.03").unwrap();
        // The adversarial fleet still converges, under both the threaded
        // and the cooperative (stealing) drivers.
        multi_site(
            &common,
            3,
            2,
            &[40],
            0,
            DriverMode::Concurrent,
            None,
            false,
            Some(spec.clone()),
            false,
            &TelemetryOpts::default(),
        )
        .unwrap();
        multi_site(
            &common,
            3,
            2,
            &[40],
            0,
            DriverMode::Coop,
            None,
            false,
            Some(spec),
            true,
            &TelemetryOpts::default(),
        )
        .unwrap();
    }

    #[test]
    fn sample_remote_round_trip() {
        // Boot a real server on an ephemeral port and point `sample
        // --remote` at it.
        let common = quick_common();
        let db = build_db(&common, common.seed).unwrap();
        let schema = Arc::new(db.schema().clone());
        let site = Arc::new(LocalSite::new(db, Arc::clone(&schema)));
        let handle = HttpServer::serve(ServerConfig::default(), site).unwrap();
        let remote_common = Common {
            remote: Some(handle.addr().to_string()),
            ..common
        };
        sample(
            &remote_common,
            None,
            &["make".into()],
            None,
            None,
            None,
            false,
            &TelemetryOpts::default(),
            None,
        )
        .unwrap();
        let stats = handle.shutdown();
        assert!(stats.requests > 0, "the session must hit the live server");
        assert_eq!(stats.responses_server_error, 0);
    }

    #[test]
    fn sample_remote_coop_round_trip() {
        // The cooperative path against a live server: 16 walker machines
        // pipelined over 2 TCP connections, one client thread.
        let common = quick_common();
        let db = build_db(&common, common.seed).unwrap();
        let schema = Arc::new(db.schema().clone());
        let site = Arc::new(LocalSite::new(db, Arc::clone(&schema)));
        let handle = HttpServer::serve(ServerConfig::default(), site).unwrap();
        let remote_common = Common {
            remote: Some(handle.addr().to_string()),
            ..common
        };
        sample(
            &remote_common,
            None,
            &["make".into()],
            None,
            Some(16),
            Some(2),
            false,
            &TelemetryOpts::default(),
            None,
        )
        .unwrap();
        let stats = handle.shutdown();
        assert!(stats.requests > 0);
        assert_eq!(stats.responses_server_error, 0);
        assert_eq!(
            stats.connections, 3,
            "schema discovery dials one connection, then 16 walkers share \
             exactly the 2 requested pipelined connections"
        );
    }

    #[test]
    fn sample_remote_rides_out_a_served_adversary() {
        // The `serve --chaos` analogue: a live server answering through an
        // Adversary, sampled over real TCP with the default retry policy.
        let common = quick_common();
        let db = build_db(&common, common.seed).unwrap();
        let schema = Arc::new(db.schema().clone());
        let site = Arc::new(LocalSite::new(db, Arc::clone(&schema)));
        let spec =
            ChaosSpec::parse("seed=11,throttle=0.15,retry_after=40,fail=0.05,drop=0.05").unwrap();
        let adversary = Arc::new(Adversary::new(site, spec));
        let handle = HttpServer::serve(ServerConfig::default(), Arc::clone(&adversary)).unwrap();
        let remote_common = Common {
            remote: Some(handle.addr().to_string()),
            ..common
        };
        sample(
            &remote_common,
            None,
            &["make".into()],
            None,
            None,
            None,
            false,
            &TelemetryOpts::default(),
            None,
        )
        .unwrap();
        let stats = handle.shutdown();
        let injected = adversary.counters();
        assert!(
            injected.throttles + injected.transient_fails + injected.drops > 0,
            "the schedule must actually have fired: {injected:?}"
        );
        assert_eq!(stats.connections_dropped, injected.drops);
    }

    #[test]
    fn end_to_end_multi_site_coop_command() {
        let common = Common {
            n: 300,
            k: 50,
            samples: 15,
            ..Common::default()
        };
        multi_site(
            &common,
            3,
            4,
            &[100],
            0,
            DriverMode::Coop,
            None,
            false,
            None,
            false,
            &TelemetryOpts::default(),
        )
        .unwrap();
    }

    #[test]
    fn end_to_end_multi_site_heterogeneous_latency() {
        let common = Common {
            n: 300,
            k: 50,
            samples: 10,
            ..Common::default()
        };
        multi_site(
            &common,
            3,
            2,
            &[50, 100, 250],
            20,
            DriverMode::Concurrent,
            None,
            false,
            None,
            false,
            &TelemetryOpts::default(),
        )
        .unwrap();
    }

    #[test]
    fn multi_site_applies_and_validates_binds() {
        let common = Common {
            n: 300,
            k: 50,
            samples: 10,
            binds: vec![("condition".to_string(), "used".to_string())],
            ..Common::default()
        };
        multi_site(
            &common,
            2,
            1,
            &[100],
            0,
            DriverMode::Concurrent,
            None,
            false,
            None,
            false,
            &TelemetryOpts::default(),
        )
        .unwrap();
        let bad = Common {
            binds: vec![("condition".to_string(), "imaginary".to_string())],
            ..common
        };
        assert!(multi_site(
            &bad,
            2,
            1,
            &[100],
            0,
            DriverMode::Concurrent,
            None,
            false,
            None,
            false,
            &TelemetryOpts::default()
        )
        .is_err());
    }

    #[test]
    fn multi_site_fleet_sites_have_distinct_data() {
        let common = quick_common();
        let fleet = build_fleet(&common, 2, &[50], 0).unwrap();
        let a = fleet[0].iface.transport().inner().backend();
        let b = fleet[1].iface.transport().inner().backend();
        // Different seeds ⇒ (almost surely) different marginals; check a
        // cheap fingerprint rather than whole tables.
        assert_eq!(a.n_tuples(), b.n_tuples());
        let fp = |db: &HiddenDb| {
            let attr = db.schema().attr_ids().next().unwrap();
            db.oracle().marginal(attr)
        };
        assert_ne!(fp(a), fp(b), "sites must simulate distinct databases");
    }

    #[test]
    fn trace_journal_replays_bit_identically_and_reports() {
        // The acceptance property at the CLI surface: a seeded
        // virtual-wire `--trace` run writes the same journal bytes every
        // time, and `trace report` digests it.
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let p1 = dir.join(format!("hds_trace_a_{pid}.jsonl"));
        let p2 = dir.join(format!("hds_trace_b_{pid}.jsonl"));
        let common = Common {
            samples: 15,
            ..Common::default()
        };
        let run = |path: &std::path::Path| {
            sample(
                &common,
                Some("local:vehicles-compact?n=400&k=50&seed=9&latency=40"),
                &[],
                None,
                Some(4),
                Some(2),
                false,
                &TelemetryOpts::new(Some(path.to_str().unwrap().to_string()), None),
                None,
            )
            .unwrap();
        };
        run(&p1);
        run(&p2);
        let a = std::fs::read(&p1).unwrap();
        let b = std::fs::read(&p2).unwrap();
        assert!(!a.is_empty(), "the journal must not be empty");
        assert_eq!(a, b, "seeded virtual-wire journals replay bit-identically");
        // The cooperative driver journals the full span stream.
        let events = read_journal(&p1).unwrap();
        assert!(events.iter().any(|e| e.kind == "wire"));
        assert!(events.iter().any(|e| e.kind == "sample"));
        trace_report(p1.to_str().unwrap()).unwrap();
        assert!(trace_report("definitely_not_a_journal.jsonl").is_err());
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn telemetry_plane_scrapes_and_retires() {
        // `--metrics 0` boots a live plane on an ephemeral port; its
        // /metrics endpoint parses, and finish() retires it cleanly.
        let opts = TelemetryOpts::new(None, Some("0".into()));
        let telem = PlanTelemetry::start(&opts).unwrap();
        let addr = telem.plane.as_ref().unwrap().addr().to_string();
        let t = hdsampler_webform::HttpTransport::new(addr);
        let text = t.fetch("/metrics").unwrap();
        let parsed = hdsampler_core::parse_exposition(&text).unwrap();
        assert!(parsed.contains_key("hds_server_requests_total"));
        telem.finish().unwrap();
        // A non-numeric port is a user error, not a panic.
        assert!(PlanTelemetry::start(&TelemetryOpts::new(None, Some("lots".into()))).is_err());
    }

    #[test]
    fn binds_scope_the_session() {
        let common = Common {
            binds: vec![("condition".to_string(), "used".to_string())],
            ..quick_common()
        };
        let db = build_site(&common).unwrap();
        let (samples, _) = run_session(&db, &common).unwrap();
        let cond = db.schema().attr_by_name("condition").unwrap();
        assert!(samples.rows().all(|r| r.values[cond.index()] == 1));
    }
}
