//! Command implementations.

use std::io::Write as _;
use std::sync::Arc;

use hdsampler_core::{
    CachingExecutor, HdsSampler, SampleSet, SamplerConfig, SamplingSession, SessionEvent,
};
use hdsampler_estimator::{Estimator, Histogram, MarginalComparison};
use hdsampler_hidden_db::{CountMode, HiddenDb};
use hdsampler_model::{ConjunctiveQuery, FormInterface, Schema};
use hdsampler_webform::{
    FleetConfig, LatencyTransport, LocalSite, MultiSiteDriver, SiteTask, WebForm, WebFormInterface,
};
use hdsampler_workload::{DataSpec, DbConfig, VehiclesSpec, WorkloadSpec};

use crate::args::{Cli, Command, Common, DriverMode};
use crate::display;

/// Build one simulated hidden database from the common options with an
/// explicit seed (multi-site fleets give every site its own data).
fn build_db(common: &Common, seed: u64) -> Result<HiddenDb, String> {
    let count_mode = match common.counts.as_str() {
        "exact" => CountMode::Exact,
        "noisy" => CountMode::Noisy { sigma: 0.15, seed },
        _ => CountMode::Absent,
    };
    let mut db_cfg = DbConfig {
        count_mode,
        ..DbConfig::no_counts().with_k(common.k)
    };
    if let Some(b) = common.budget {
        db_cfg = db_cfg.with_budget(b);
    }
    let data = match common.source.as_str() {
        "vehicles-full" => DataSpec::Vehicles(VehiclesSpec::full(common.n, seed)),
        "vehicles-compact" => DataSpec::Vehicles(VehiclesSpec::compact(common.n, seed)),
        "boolean" => DataSpec::BooleanIid {
            m: 14,
            n: common.n,
            p: 0.5,
        },
        other => return Err(format!("unknown source `{other}`")),
    };
    Ok(WorkloadSpec {
        data,
        db: db_cfg,
        seed,
    }
    .build())
}

/// Build the simulated site from the common options.
fn build_site(common: &Common) -> Result<Arc<HiddenDb>, String> {
    Ok(Arc::new(build_db(common, common.seed)?))
}

fn scope_query(schema: &Schema, binds: &[(String, String)]) -> Result<ConjunctiveQuery, String> {
    ConjunctiveQuery::from_named(schema, binds.iter().map(|(a, b)| (a.as_str(), b.as_str())))
        .map_err(|e| e.to_string())
}

fn run_session(
    db: &Arc<HiddenDb>,
    common: &Common,
) -> Result<(SampleSet, hdsampler_core::SamplerStats), String> {
    let schema = db.schema().clone();
    let scope = scope_query(&schema, &common.binds)?;
    let cfg = SamplerConfig::seeded(common.seed)
        .with_slider(common.slider)
        .with_scope(scope);
    let mut sampler =
        HdsSampler::new(CachingExecutor::new(Arc::clone(db)), cfg).map_err(|e| e.to_string())?;
    let session = SamplingSession::new(common.samples);
    let mut out = std::io::stdout();
    let outcome = session.run(&mut sampler, |event| {
        if let SessionEvent::SampleAccepted { collected, target } = event {
            if collected % 25 == 0 || *collected == *target {
                let _ = write!(out, "\r  samples {collected}/{target}   ");
                let _ = out.flush();
            }
        }
    });
    println!();
    println!("{}", display::summary(&outcome.stats));
    if !matches!(outcome.reason, hdsampler_core::StopReason::TargetReached) {
        println!("note: session stopped early ({:?})", outcome.reason);
    }
    Ok((outcome.samples, outcome.stats))
}

/// Execute a parsed command.
pub fn run(cli: Cli) -> Result<(), String> {
    match cli.command {
        Command::Describe => describe(&cli.common),
        Command::Sample { histograms } => sample(&cli.common, &histograms),
        Command::Aggregate { proportions, avgs } => aggregate(&cli.common, &proportions, &avgs),
        Command::Validate { attr } => validate(&cli.common, attr.as_deref()),
        Command::MultiSite {
            sites,
            walkers,
            latency_ms,
            mode,
        } => multi_site(&cli.common, sites, walkers, latency_ms, mode),
    }
}

/// Build one fleet of `sites` scraper stacks, each over its own seeded
/// data behind a latency-decorated wire.
fn build_fleet(
    common: &Common,
    sites: usize,
    latency_ms: u64,
) -> Result<Vec<SiteTask<LocalSite<HiddenDb>>>, String> {
    (0..sites)
        .map(|i| {
            let db = build_db(common, common.seed.wrapping_add(i as u64))?;
            let schema = Arc::new(db.schema().clone());
            let k = db.result_limit();
            let supports_count = db.supports_count();
            let site = LocalSite::new(db, Arc::clone(&schema));
            let wire = LatencyTransport::new(site, latency_ms);
            Ok(SiteTask::new(
                format!("site-{i}"),
                WebFormInterface::new(wire, schema, k, supports_count),
            ))
        })
        .collect()
}

fn multi_site(
    common: &Common,
    sites: usize,
    walkers: usize,
    latency_ms: u64,
    mode: DriverMode,
) -> Result<(), String> {
    // Build one fleet up front: its schema validates the --bind scope
    // (the sites share a schema structure, so ids resolve fleet-wide).
    let fleet = build_fleet(common, sites, latency_ms)?;
    let scope = scope_query(fleet[0].iface.schema(), &common.binds)?;
    let driver = MultiSiteDriver::new(FleetConfig {
        walkers_per_site: walkers,
        target_per_site: common.samples,
        seed: common.seed,
        slider: common.slider,
        scope,
    });
    println!(
        "fleet: {sites} × `{}` (n = {} each) at {latency_ms} ms virtual latency, \
         {} samples per site, {walkers} walker(s) per site",
        common.source, common.n, common.samples
    );
    let concurrent = match mode {
        DriverMode::Serial => None,
        DriverMode::Concurrent | DriverMode::Both => {
            let report = driver.run_concurrent(&fleet);
            println!("\n{}", display::fleet_report(&report));
            Some(report)
        }
    };
    let serial = match mode {
        DriverMode::Concurrent => None,
        DriverMode::Serial | DriverMode::Both => {
            let report = driver.run_serial(&build_fleet(common, sites, latency_ms)?);
            println!("\n{}", display::fleet_report(&report));
            Some(report)
        }
    };
    if let (Some(c), Some(s)) = (concurrent, serial) {
        if c.fleet_elapsed_ms > 0 {
            println!(
                "speedup: {:.1}× (serial {:.1} s → concurrent {:.1} s of virtual wall clock)",
                s.fleet_elapsed_ms as f64 / c.fleet_elapsed_ms as f64,
                s.fleet_elapsed_ms as f64 / 1_000.0,
                c.fleet_elapsed_ms as f64 / 1_000.0,
            );
        }
    }
    Ok(())
}

fn describe(common: &Common) -> Result<(), String> {
    let db = build_site(common)?;
    let schema = Arc::new(db.schema().clone());
    println!(
        "source `{}`: {} tuples behind a top-{} conjunctive form ({} attributes, {} measures)",
        common.source,
        db.n_tuples(),
        db.result_limit(),
        schema.arity(),
        schema.measure_arity(),
    );
    println!("domain product B = {:.3e}\n", schema.domain_product());
    for (_, attr) in schema.iter() {
        let labels: Vec<String> = attr
            .domain()
            .take(6)
            .map(|v| attr.label(v).into_owned())
            .collect();
        let ellipsis = if attr.domain_size() > 6 { ", …" } else { "" };
        println!(
            "  {:<14} |Dom| = {:<4} {{{}{}}}",
            attr.name(),
            attr.domain_size(),
            labels.join(", "),
            ellipsis
        );
    }
    println!("\nform HTML (Figure 3 analogue):\n");
    let form = WebForm::new(schema, "/search");
    for line in form.render_html().lines().take(12) {
        println!("  {line}");
    }
    println!("  …");
    Ok(())
}

fn sample(common: &Common, histograms: &[String]) -> Result<(), String> {
    let db = build_site(common)?;
    let schema = db.schema().clone();
    let (samples, _) = run_session(&db, common)?;
    let wanted: Vec<String> = if histograms.is_empty() {
        vec![schema.attributes()[0].name().to_owned()]
    } else {
        histograms.to_vec()
    };
    for name in &wanted {
        let attr = schema.attr_by_name(name).map_err(|e| e.to_string())?;
        let hist = Histogram::from_rows(&schema, attr, samples.rows());
        println!("\n{}", hist.render(40));
    }
    Ok(())
}

fn aggregate(
    common: &Common,
    proportions: &[(String, String)],
    avgs: &[String],
) -> Result<(), String> {
    let db = build_site(common)?;
    let schema = db.schema().clone();
    let (samples, _) = run_session(&db, common)?;
    let est = Estimator::new(&samples);
    println!();
    for (attr_name, label) in proportions {
        let attr = schema.attr_by_name(attr_name).map_err(|e| e.to_string())?;
        let value = schema
            .attr_unchecked(attr)
            .parse_label(label)
            .ok_or_else(|| format!("`{label}` is not a value of `{attr_name}`"))?;
        let p = est.proportion(|r| r.values[attr.index()] == value);
        println!(
            "  proportion({attr_name}={label})  = {:.2}% ± {:.2}%",
            p.value * 100.0,
            p.half_width * 100.0
        );
    }
    for m_name in avgs {
        let m = schema.measure_by_name(m_name).map_err(|e| e.to_string())?;
        let a = est.avg(m, |_| true);
        println!(
            "  avg({m_name})             = {:.2} ± {:.2}",
            a.value, a.half_width
        );
    }
    if proportions.is_empty() && avgs.is_empty() {
        println!("  (nothing requested — pass --proportion attr=label or --avg measure)");
    }
    Ok(())
}

fn validate(common: &Common, attr_name: Option<&str>) -> Result<(), String> {
    let db = build_site(common)?;
    let schema = db.schema().clone();
    let (samples, _) = run_session(&db, common)?;
    let attr = match attr_name {
        Some(n) => schema.attr_by_name(n).map_err(|e| e.to_string())?,
        None => schema.attr_ids().next().ok_or("schema has no attributes")?,
    };
    let hist = Histogram::from_rows(&schema, attr, samples.rows());
    let cmp = MarginalComparison::new(
        &schema,
        attr,
        hist.proportions(),
        db.oracle().marginal(attr),
    );
    println!("\n{}", cmp.render(0.01));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Common;

    fn quick_common() -> Common {
        Common {
            n: 400,
            k: 50,
            samples: 20,
            ..Common::default()
        }
    }

    #[test]
    fn build_site_sources() {
        assert!(build_site(&quick_common()).is_ok());
        let full = Common {
            source: "vehicles-full".into(),
            ..quick_common()
        };
        assert!(build_site(&full).is_ok());
        let boolean = Common {
            source: "boolean".into(),
            ..quick_common()
        };
        assert!(build_site(&boolean).is_ok());
        let bad = Common {
            source: "nope".into(),
            ..quick_common()
        };
        assert!(build_site(&bad).is_err());
    }

    #[test]
    fn end_to_end_sample_command() {
        let common = quick_common();
        sample(&common, &["make".into()]).unwrap();
    }

    #[test]
    fn end_to_end_aggregate_command() {
        let common = quick_common();
        aggregate(
            &common,
            &[("make".to_string(), "Toyota".to_string())],
            &["price_usd".to_string()],
        )
        .unwrap();
        // Unknown label is a user error, not a panic.
        assert!(aggregate(&common, &[("make".to_string(), "Tesla".to_string())], &[],).is_err());
    }

    #[test]
    fn end_to_end_validate_command() {
        validate(&quick_common(), Some("make")).unwrap();
        assert!(validate(&quick_common(), Some("bogus")).is_err());
    }

    #[test]
    fn end_to_end_multi_site_command() {
        let common = Common {
            n: 300,
            k: 50,
            samples: 15,
            ..Common::default()
        };
        multi_site(&common, 3, 2, 100, DriverMode::Both).unwrap();
    }

    #[test]
    fn multi_site_applies_and_validates_binds() {
        let common = Common {
            n: 300,
            k: 50,
            samples: 10,
            binds: vec![("condition".to_string(), "used".to_string())],
            ..Common::default()
        };
        multi_site(&common, 2, 1, 100, DriverMode::Concurrent).unwrap();
        let bad = Common {
            binds: vec![("condition".to_string(), "imaginary".to_string())],
            ..common
        };
        assert!(multi_site(&bad, 2, 1, 100, DriverMode::Concurrent).is_err());
    }

    #[test]
    fn multi_site_fleet_sites_have_distinct_data() {
        let common = quick_common();
        let fleet = build_fleet(&common, 2, 50).unwrap();
        let a = fleet[0].iface.transport().inner().backend();
        let b = fleet[1].iface.transport().inner().backend();
        // Different seeds ⇒ (almost surely) different marginals; check a
        // cheap fingerprint rather than whole tables.
        assert_eq!(a.n_tuples(), b.n_tuples());
        let fp = |db: &HiddenDb| {
            let attr = db.schema().attr_ids().next().unwrap();
            db.oracle().marginal(attr)
        };
        assert_ne!(fp(a), fp(b), "sites must simulate distinct databases");
    }

    #[test]
    fn binds_scope_the_session() {
        let common = Common {
            binds: vec![("condition".to_string(), "used".to_string())],
            ..quick_common()
        };
        let db = build_site(&common).unwrap();
        let (samples, _) = run_session(&db, &common).unwrap();
        let cond = db.schema().attr_by_name("condition").unwrap();
        assert!(samples.rows().all(|r| r.values[cond.index()] == 1));
    }
}
