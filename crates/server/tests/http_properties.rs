//! Property tests for the HTTP layer: the server's request handling is
//! observably identical to `WebForm::parse_request_path` (the same
//! 200/400/404 outcomes on the same targets), the parser survives
//! arbitrary split points and garbage bytes, and every size limit holds.

use std::sync::Arc;

use hdsampler_hidden_db::HiddenDb;
use hdsampler_model::{Attribute, SchemaBuilder, Tuple};
use hdsampler_server::http::{parse_request, RequestError, MAX_HEADER_SECTION_BYTES};
use hdsampler_server::SiteBehavior;
use hdsampler_webform::{urlenc, LocalSite, WebForm};
use proptest::prelude::*;

/// A site whose labels exercise percent-encoding: separators, spaces,
/// multi-byte UTF-8, HTML-significant characters.
fn tricky_site() -> LocalSite<HiddenDb> {
    let schema = SchemaBuilder::new()
        .attribute(
            Attribute::categorical("make", ["Toyota", "Town & Country", "A=B?C", "100%"]).unwrap(),
        )
        .attribute(Attribute::categorical("price", ["under $5k", "$5k–$10k"]).unwrap())
        .finish()
        .unwrap()
        .into_shared();
    let mut b = HiddenDb::builder(Arc::clone(&schema)).result_limit(2);
    for (m, p) in [(0u16, 0u16), (1, 0), (2, 1), (3, 1), (0, 1)] {
        b.push(&Tuple::new(&schema, vec![m, p], vec![]).unwrap())
            .unwrap();
    }
    LocalSite::new(b.finish(), schema)
}

/// The status `WebForm::parse_request_path` semantics prescribe for a
/// target on this site (no budget, so execute never fails).
fn expected_status(form: &WebForm, target: &str) -> u16 {
    let route = target.split_once('?').map_or(target, |(p, _)| p);
    if route == "/" {
        return 200; // landing page
    }
    if route != form.action() {
        return 404;
    }
    match form.parse_request_path(target) {
        Ok(_) => 200,
        Err(_) => 400,
    }
}

/// Drive a target through the real request parser + site mounting and
/// return the response status — the full server-side path minus the
/// socket.
fn served_status(site: &LocalSite<HiddenDb>, target: &str) -> u16 {
    let raw = format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n");
    let (req, consumed) = parse_request(raw.as_bytes())
        .expect("well-formed request")
        .expect("complete request");
    assert_eq!(consumed, raw.len());
    assert_eq!(req.target, target, "target must survive the request line");
    site.get(&req.target).status
}

proptest! {
    /// Any query string built from schema labels (valid or not, empty or
    /// not) gets the same 200/400 outcome over HTTP as from
    /// `parse_request_path` directly — and any off-action route 404s.
    #[test]
    fn server_statuses_match_form_parsing(
        pairs in prop::collection::vec((0usize..4, 0usize..8), 0..5),
        route_ix in 0usize..4,
    ) {
        let site = tricky_site();
        let form = site.form();
        // Keys/values drawn from real labels, wrong-attribute labels, and
        // garbage — percent-encoded exactly as a browser would.
        let keys = ["make", "price", "colour", "make"];
        let values = [
            "Toyota", "Town & Country", "A=B?C", "100%", "under $5k", "$5k–$10k", "", "bogus",
        ];
        let routes = ["/search", "/", "/nosuchpage", "/search/extra"];
        let qs = urlenc::build_query(
            &pairs
                .iter()
                .map(|&(k, v)| (keys[k].to_string(), values[v].to_string()))
                .collect::<Vec<_>>(),
        );
        let target = if qs.is_empty() {
            routes[route_ix].to_string()
        } else {
            format!("{}?{qs}", routes[route_ix])
        };
        prop_assert_eq!(
            served_status(&site, &target),
            expected_status(form, &target),
            "target {:?}",
            target
        );
    }

    /// Feeding a valid request to the parser in arbitrary splits yields
    /// `Incomplete` until the last byte, then exactly the one-shot result.
    #[test]
    fn split_reads_reassemble(
        cut_points in prop::collection::vec(0usize..1000, 1..6),
        target_ix in 0usize..3,
    ) {
        let targets = ["/search?make=Toyota", "/", "/search?price=under%20%245k"];
        let raw = format!(
            "GET {} HTTP/1.1\r\nHost: split\r\nUser-Agent: prop\r\n\r\n",
            targets[target_ix]
        );
        let bytes = raw.as_bytes();
        let mut cuts: Vec<usize> = cut_points.iter().map(|&c| c % bytes.len()).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut fed: Vec<u8> = Vec::new();
        let mut prev = 0;
        for &cut in &cuts {
            if cut == 0 { continue; }
            fed.extend_from_slice(&bytes[prev..cut]);
            prev = cut;
            prop_assert!(
                parse_request(&fed).unwrap().is_none(),
                "prefix of {} bytes must be incomplete",
                fed.len()
            );
        }
        fed.extend_from_slice(&bytes[prev..]);
        let (req, consumed) = parse_request(&fed).unwrap().expect("complete");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(req.target.as_str(), targets[target_ix]);
    }

    /// The parser never panics on arbitrary printable garbage, and never
    /// claims to have consumed more bytes than it was given.
    #[test]
    fn garbage_never_panics(line in "\\PC*") {
        let raw = format!("{line}\r\n\r\n");
        if let Ok(Some((_, consumed))) = parse_request(raw.as_bytes()) {
            prop_assert!(consumed <= raw.len());
        }
    }

    /// Oversized header sections are rejected with the limit error, never
    /// accepted and never treated as merely incomplete once over budget.
    #[test]
    fn oversized_headers_rejected(extra in 1usize..2000, with_terminator in any::<bool>()) {
        let mut raw = format!(
            "GET / HTTP/1.1\r\nbig: {}\r\n",
            "x".repeat(MAX_HEADER_SECTION_BYTES + extra)
        );
        if with_terminator {
            raw.push_str("\r\n");
        }
        prop_assert_eq!(
            parse_request(raw.as_bytes()).unwrap_err(),
            RequestError::TooLarge
        );
    }
}

/// Not a property but the matching exhaustive check: every documented
/// malformation class maps to the right status code.
#[test]
fn malformation_statuses() {
    let cases: &[(&[u8], u16)] = &[
        (b"GET /a /b HTTP/1.1\r\n\r\n", 400),
        (b"FR@B / HTTP/1.1\r\n\r\n", 400),
        (b"GET relative HTTP/1.1\r\n\r\n", 400),
        (b"GET / HTTP/9.9\r\n\r\n", 505),
        (b"GET / HTTP/1.1\r\nbroken header\r\n\r\n", 400),
    ];
    for (raw, status) in cases {
        let err = parse_request(raw).unwrap_err();
        assert_eq!(
            err.status().0,
            *status,
            "{:?}",
            String::from_utf8_lossy(raw)
        );
    }
}
